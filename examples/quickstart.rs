//! Quickstart: compress a scientific field with an error bound, verify
//! the bound, inspect quality, and write it through the HDF5-lite tool.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eblcio::prelude::*;
use eblcio_energy::CpuGeneration;
use eblcio_pfs::format::DataObject;
use eblcio_pfs::{tool::write_objects, IoToolKind, PfsSim};

fn main() {
    // 1. A NYX-like cosmology field (deterministic synthetic analog).
    let data = DatasetSpec::new(DatasetKind::Nyx, Scale::Tiny).generate();
    println!(
        "dataset: NYX analog, shape {}, {:.1} MB",
        data.shape(),
        data.nbytes() as f64 / 1e6
    );

    // 2. Compress with SZ3 at a 1e-3 value-range relative bound.
    let codec = CompressorId::Sz3.instance();
    let stream = compress_dataset(codec.as_ref(), &data, ErrorBound::Relative(1e-3))
        .expect("compression");
    println!(
        "compressed: {} bytes, CR = {:.1}x",
        stream.len(),
        compression_ratio(data.nbytes(), stream.len())
    );

    // 3. Decompress and verify the error-bound contract (paper Eq. 1).
    let back = codec.decompress_f32(&stream).expect("decompression");
    let report = QualityReport::evaluate(data.as_f32(), &back, stream.len());
    println!(
        "quality: PSNR {:.1} dB, max rel err {:.2e} (bound 1e-3): within = {}",
        report.psnr_db,
        report.max_rel_error,
        report.within_bound(1e-3)
    );
    assert!(report.within_bound(1e-3));

    // 4. Write both versions through HDF5-lite to the PFS model and
    //    compare the write energy (the paper's Fig. 11 comparison).
    let pfs = PfsSim::testbed();
    let profile = CpuGeneration::SapphireRapids9480.profile();
    let original = DataObject::opaque("nyx_original", data.as_f32().to_le_bytes());
    let compressed =
        DataObject::opaque("nyx_sz3", stream).with_attr("compressor", "SZ3");
    let w_orig = write_objects(IoToolKind::Hdf5Lite, &[original], &pfs, &profile, 1);
    let w_comp = write_objects(IoToolKind::Hdf5Lite, &[compressed], &pfs, &profile, 1);
    println!(
        "write energy: original {:.4} J vs compressed {:.4} J ({:.0}x less)",
        w_orig.io.cpu_energy.value(),
        w_comp.io.cpu_energy.value(),
        w_orig.io.cpu_energy.value() / w_comp.io.cpu_energy.value()
    );
}
