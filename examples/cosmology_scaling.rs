//! Cosmology-at-scale example: the paper's §VI-B/§VI-C combined.
//!
//! 1. Inflate a NYX-like cube ×1…×3 (Fig. 13's protocol) and watch
//!    compression energy scale linearly with size.
//! 2. Run the multi-node workflow (Fig. 6): N nodes × R ranks compress
//!    and concurrently write to a contended Lustre-like PFS, vs the
//!    uncompressed baseline.
//!
//! ```sh
//! cargo run --release --example cosmology_scaling
//! ```

use eblcio::prelude::*;
use eblcio_cluster::{run_compress_and_write, run_write_original, ClusterSpec};
use eblcio_data::inflate::inflate;
use eblcio_energy::{measure_compute, Activity, CpuGeneration};
use eblcio_pfs::{IoToolKind, PfsSim};

fn main() {
    let base = DatasetSpec::new(DatasetKind::Nyx, Scale::Tiny).generate();
    let profile = CpuGeneration::CascadeLake8260M.profile();
    let codec = CompressorId::Sz3.instance();

    println!("-- Part 1: inflation scaling (Fig. 13 protocol) --");
    for k in 1..=3usize {
        let inflated = Dataset::F32(inflate(base.as_f32(), k));
        let (stream, m) = measure_compute(&profile, Activity::serial_compute(), || {
            compress_dataset(codec.as_ref(), &inflated, ErrorBound::Relative(1e-3)).unwrap()
        });
        println!(
            "x{k}: {:>7.1} MB -> {:>8} B compressed, {:.2} J, {:.1} MB/s",
            inflated.nbytes() as f64 / 1e6,
            stream.len(),
            m.total().value(),
            inflated.nbytes() as f64 / 1e6 / m.scaled.value().max(1e-9)
        );
    }

    println!("\n-- Part 2: multi-node compress+write vs Original (Fig. 12 protocol) --");
    // PFS bandwidth sized to the per-rank data so the compute/IO balance
    // matches the paper's 537 MB-per-rank testbed (see the fig12 binary).
    let pfs = PfsSim::new(64, base.nbytes() as f64 * 400.0 / 64.0 / 1e9);
    for cores in [16u32, 128, 512] {
        let ranks_per_node = cores.min(16);
        let spec = ClusterSpec::new(cores / ranks_per_node, ranks_per_node, CpuGeneration::Skylake8160);
        let compressed = run_compress_and_write(
            &spec,
            &base,
            codec.as_ref(),
            ErrorBound::Relative(1e-3),
            IoToolKind::Hdf5Lite,
            &pfs,
        )
        .expect("run");
        let original = run_write_original(&spec, &base, IoToolKind::Hdf5Lite, &pfs);
        println!(
            "{cores:>4} cores: compress {:>9.2} J + write {:>8.2} J = {:>9.2} J | original write {:>9.2} J | compression wins: {}",
            compressed.compression.joules.value(),
            compressed.write.joules.value(),
            compressed.total_joules().value(),
            original.write.joules.value(),
            compressed.beats(&original)
        );
    }
    println!("\nShape to look for: the Original column grows super-linearly with cores\n(PFS contention), while the compressed path's write share stays negligible.");
}
