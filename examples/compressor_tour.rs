//! A tour of all five EBLCs on all four Table II data sets: CR, PSNR,
//! bound verification, and relative speed — a Table III-style report
//! over the full matrix.
//!
//! ```sh
//! cargo run --release --example compressor_tour
//! ```

use eblcio::prelude::*;
use std::time::Instant;

fn main() {
    let eps = 1e-3;
    println!(
        "{:<8} {:<6} {:>10} {:>9} {:>10} {:>12} {:>8}",
        "dataset", "codec", "CR", "PSNR_dB", "maxrelerr", "comp_MB/s", "ok"
    );

    for kind in DatasetKind::TABLE2 {
        let data = DatasetSpec::new(kind, Scale::Tiny).generate();
        for id in CompressorId::ALL {
            let codec = id.instance();
            let t0 = Instant::now();
            let stream = compress_dataset(codec.as_ref(), &data, ErrorBound::Relative(eps))
                .expect("compress");
            let dt = t0.elapsed().as_secs_f64();

            let (psnr_db, max_err, ok) = match &data {
                Dataset::F32(a) => {
                    let b = codec.decompress_f32(&stream).expect("decompress");
                    let r = QualityReport::evaluate(a, &b, stream.len());
                    (r.psnr_db, r.max_rel_error, r.within_bound(eps))
                }
                Dataset::F64(a) => {
                    let b = codec.decompress_f64(&stream).expect("decompress");
                    let r = QualityReport::evaluate(a, &b, stream.len());
                    (r.psnr_db, r.max_rel_error, r.within_bound(eps))
                }
            };
            println!(
                "{:<8} {:<6} {:>10.2} {:>9.2} {:>10.2e} {:>12.1} {:>8}",
                kind.name(),
                id.name(),
                compression_ratio(data.nbytes(), stream.len()),
                psnr_db,
                max_err,
                data.nbytes() as f64 / 1e6 / dt,
                ok
            );
            assert!(ok, "{} violated the bound on {}", id.name(), kind.name());
        }
        println!();
    }
    println!("Every cell verified against the eps = {eps:.0e} value-range relative bound.");
}
