//! Climate-workflow example: a CESM-like atmosphere snapshot must be
//! archived every simulated hour. Should the workflow compress first?
//!
//! This drives the paper's §III framework end to end: sweep compressors
//! × bounds, evaluate the time/energy/quality conditions (Eqs. 3–5)
//! against the site's PFS, and print the advisor's recommendation.
//!
//! ```sh
//! cargo run --release --example climate_io
//! ```

use eblcio::prelude::*;
use eblcio_core::{Advisor, CampaignRunner, Decision};
use eblcio_energy::CpuGeneration;
use eblcio_pfs::{IoToolKind, PfsSim};

fn main() {
    let data = DatasetSpec::new(DatasetKind::Cesm, Scale::Tiny).generate();
    println!(
        "CESM-like snapshot: shape {}, {:.1} MB, value range {:.1}",
        data.shape(),
        data.nbytes() as f64 / 1e6,
        data.as_f32().value_range()
    );

    // The site: a busy Lustre slice — each job sees ~10 MB/s.
    let pfs = PfsSim::new(1, 0.01);
    let advisor = Advisor {
        chains: ChainSpec::presets(),
        epsilons: vec![1e-2, 1e-3, 1e-4],
        psnr_min_db: 60.0, // climate post-processing floor
        writers: 1,
        runner: CampaignRunner::quick(),
    };

    let cells = advisor
        .evaluate_all(&data, IoToolKind::Hdf5Lite, &pfs, CpuGeneration::Skylake8160)
        .expect("sweep");

    println!("\n{:<6} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7}  decision",
        "codec", "eps", "CR", "PSNR_dB", "time", "energy", "quality");
    for c in &cells {
        let v = c.inputs.evaluate();
        println!(
            "{:<6} {:>8.0e} {:>9.1} {:>9.1} {:>7} {:>7} {:>7}  {:?}",
            c.chain.label(),
            c.epsilon,
            c.cr,
            c.psnr_db,
            v.time_ok,
            v.energy_ok,
            v.quality_ok,
            c.decision
        );
    }

    match cells.iter().find(|c| c.decision == Decision::Compress) {
        Some(best) => println!(
            "\n=> Compress with {} at eps {:.0e}: saves {:.2} J per snapshot \
             ({:.1}x CR, {:.1} dB).",
            best.chain.label(),
            best.epsilon,
            best.energy_saving(),
            best.cr,
            best.psnr_db
        ),
        None => println!("\n=> Write the original: no configuration satisfies Eqs. 3-5 here."),
    }
}
