//! Property-based tests for the mutable-store write path: arbitrary
//! interleavings of `update_region` and `compact` against a shadow
//! in-memory model.
//!
//! The shadow model tracks, per generation, the exact decoded array
//! captured right after that generation was published. The properties:
//!
//! * **generation stability** — re-opening any still-reachable
//!   generation after any number of later writes/compactions returns
//!   bit-identical data to its capture,
//! * **ε contract under updates** — every sample stays within
//!   `budget · ε` of the last full-precision value written for it,
//!   where the budget is 1 for freshly written samples and grows by 1
//!   each time an update re-compresses a chunk the sample merely rides
//!   along in (lossy copy-on-write's write amplification, documented in
//!   `eblcio_store::mutable`),
//! * **read coherence** — region reads of the current generation are
//!   bit-identical to slices of its capture,
//! * **durability** — serializing the file bytes and reopening them
//!   reproduces the current generation bit-identically.

use eblcio_codec::{CompressorId, ErrorBound};
use eblcio_data::{NdArray, Shape};
use eblcio_store::{gather, MutableStore, Region};
use proptest::prelude::*;

/// Deterministic xorshift so ops are reproducible from their seed.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn base_field(shape: Shape) -> NdArray<f32> {
    NdArray::from_fn(shape, |i| {
        (i[0] as f32 * 0.23).sin() * 40.0 + (i[1] as f32 * 0.31).cos() * 15.0
    })
}

/// A region derived from a seed that always fits inside `shape`.
fn seeded_region(shape: Shape, seed: &mut u64) -> Region {
    let d0 = shape.dim(0);
    let d1 = shape.dim(1);
    let o0 = (xorshift(seed) as usize) % d0;
    let o1 = (xorshift(seed) as usize) % d1;
    let e0 = 1 + (xorshift(seed) as usize) % (d0 - o0);
    let e1 = 1 + (xorshift(seed) as usize) % (d1 - o1);
    Region::new(&[o0, o1], &[e0, e1])
}

/// One generation's capture: id plus the decoded full array.
struct Capture {
    generation: u64,
    full: Vec<f32>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The workhorse: a random op sequence against the shadow model.
    /// `op_seeds` drives both the op choice (update vs compact) and the
    /// update geometry/values.
    #[test]
    fn random_op_sequences_keep_every_generation_bit_stable(
        dims in (10usize..36, 8usize..28),
        chunk in (3usize..9, 3usize..9),
        op_seeds in proptest::collection::vec(any::<u64>(), 1..7),
        codec_pick in 0usize..2,
    ) {
        let shape = Shape::d2(dims.0, dims.1);
        let data = base_field(shape);
        let codec = [CompressorId::Szx, CompressorId::Sz3][codec_pick].instance();
        let mut store = MutableStore::create(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d2(chunk.0, chunk.1),
            2,
        )
        .unwrap();
        let current = store.current().unwrap();
        let abs = current.abs_bound();
        let grid = *current.grid();
        let n = shape.len();

        // Shadow model.
        let mut intended: Vec<f64> = data.as_slice().iter().map(|&v| v as f64).collect();
        let mut budget: Vec<u32> = vec![1; n];
        let mut captures: Vec<Capture> = vec![Capture {
            generation: 1,
            full: current.read_full::<f32>(1).unwrap().into_vec(),
        }];

        for &op_seed in &op_seeds {
            let mut seed = op_seed | 1;
            if xorshift(&mut seed).is_multiple_of(4) {
                // Compact: content must be untouched, history severed.
                let latest = captures.last().unwrap().full.clone();
                let stats = store.compact().unwrap();
                let cur = store.current().unwrap();
                prop_assert_eq!(cur.generation(), stats.generation);
                let full = cur.read_full::<f32>(1).unwrap().into_vec();
                prop_assert_eq!(&full, &latest, "compaction changed bits");
                captures = vec![Capture { generation: stats.generation, full }];
            } else {
                // Update a seeded region with seeded values in the
                // original value range.
                let region = seeded_region(shape, &mut seed);
                let patch = NdArray::<f32>::from_fn(region.shape(), |_| {
                    ((xorshift(&mut seed) % 1000) as f32 / 1000.0 - 0.5) * 80.0
                });
                // Shadow: freshly written samples reset to budget 1;
                // carried samples of touched chunks pay one more ε.
                for &ci in &grid.chunks_intersecting(&region) {
                    let cr = grid.chunk_region(ci);
                    for a in cr.origin()[0]..cr.origin()[0] + cr.extent()[0] {
                        for b in cr.origin()[1]..cr.origin()[1] + cr.extent()[1] {
                            let off = a * shape.dim(1) + b;
                            let inside = a >= region.origin()[0]
                                && a < region.origin()[0] + region.extent()[0]
                                && b >= region.origin()[1]
                                && b < region.origin()[1] + region.extent()[1];
                            if inside {
                                let local = (a - region.origin()[0]) * region.extent()[1]
                                    + (b - region.origin()[1]);
                                intended[off] = patch.as_slice()[local] as f64;
                                budget[off] = 1;
                            } else {
                                budget[off] += 1;
                            }
                        }
                    }
                }
                let stats = store.update_region(&region, &patch, 2).unwrap();
                prop_assert_eq!(
                    stats.chunks_written,
                    grid.chunks_intersecting(&region).len()
                );
                let cur = store.current().unwrap();
                prop_assert_eq!(cur.generation(), stats.generation);
                captures.push(Capture {
                    generation: stats.generation,
                    full: cur.read_full::<f32>(1).unwrap().into_vec(),
                });
            }

            // ε contract vs the shadow model after every op.
            let cur = store.current().unwrap();
            let full = cur.read_full::<f32>(1).unwrap();
            for (off, &got) in full.as_slice().iter().enumerate() {
                let bound = abs * f64::from(budget[off]) * 1.0000001 + f64::EPSILON;
                prop_assert!(
                    (f64::from(got) - intended[off]).abs() <= bound,
                    "sample {off}: got {got}, intended {}, budget {}",
                    intended[off],
                    budget[off]
                );
            }

            // Read coherence: a seeded region read of the current
            // generation is bit-identical to the capture's slice.
            let mut rseed = op_seed ^ 0x9E37_79B9_7F4A_7C15;
            let probe = seeded_region(shape, &mut rseed);
            let got = cur.read_region::<f32>(&probe).unwrap();
            let capture_arr =
                NdArray::from_vec(shape, captures.last().unwrap().full.clone());
            let want = gather(&capture_arr, &probe);
            prop_assert_eq!(got.as_slice(), want.as_slice());
        }

        // Every still-reachable generation re-opens bit-identically.
        for c in &captures {
            let snap = store.open_at(c.generation).unwrap();
            let full = snap.read_full::<f32>(1).unwrap();
            prop_assert_eq!(full.as_slice(), &c.full[..], "generation {}", c.generation);
        }

        // Durability: the file image round-trips through open().
        let reopened = MutableStore::open(store.as_bytes().to_vec()).unwrap();
        prop_assert_eq!(reopened.generation(), store.generation());
        let full = reopened.current().unwrap().read_full::<f32>(1).unwrap();
        prop_assert_eq!(full.as_slice(), &captures.last().unwrap().full[..]);
    }
}
