//! Fault injection on the mutable-store publish protocol.
//!
//! A publish is two ordered writes: append (objects + manifest) at the
//! old end of file, then a [`SLOT_LEN`]-byte root-slot overwrite. These
//! tests cut and corrupt that sequence at every byte boundary and
//! assert the crash-consistency contract: **a previously published
//! generation is never torn** — the store reopens at the last durable
//! root and reads back bit-identical data, no matter where the publish
//! died. They also cover corrupt generation *chains* (a parent pointer
//! that lies) and dangling parents, extending the corrupt-manifest
//! coverage in `store_roundtrip.rs` to the generational layer.

use eblcio_codec::util::crc32;
use eblcio_codec::{CodecError, CompressorId, ErrorBound};
use eblcio_data::{NdArray, Shape};
use eblcio_store::mutable::{MUTABLE_MAGIC, SLOT_LEN, SUPERBLOCK_LEN};
use eblcio_store::{GenerationMeta, Manifest, MutableStore, PublishOps, Region};

fn field(shape: Shape) -> NdArray<f32> {
    NdArray::from_fn(shape, |i| {
        (i[0] as f32 * 0.23).sin() * 40.0 + (i[1] as f32 * 0.31).cos() * 15.0
    })
}

/// A 6-chunk generation-1 store plus prepared (unapplied) publish ops
/// for a one-chunk update.
fn store_with_pending_publish() -> (MutableStore, PublishOps) {
    let data = field(Shape::d2(20, 12));
    let codec = CompressorId::Szx.instance();
    let store = MutableStore::create(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(1e-3),
        Shape::d2(8, 8),
        2,
    )
    .unwrap();
    let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 3.25);
    let mut w = store.writer().unwrap();
    w.stage_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
        .unwrap();
    let ops = w.prepare().unwrap();
    (store, ops)
}

/// The file image left behind when a publish dies after `k` bytes:
/// the append lands byte by byte first, then the slot overwrite.
fn crashed_at(base: &[u8], ops: &PublishOps, k: usize) -> Vec<u8> {
    let mut file = base.to_vec();
    let appended = k.min(ops.append.len());
    file.extend_from_slice(&ops.append[..appended]);
    let slot_written = k - appended;
    file[ops.slot_offset..ops.slot_offset + slot_written]
        .copy_from_slice(&ops.slot[..slot_written]);
    file
}

#[test]
fn publish_torn_at_every_byte_boundary_preserves_previous_generation() {
    let (store, ops) = store_with_pending_publish();
    let base = store.as_bytes().to_vec();
    let want = store.current().unwrap().read_full::<f32>(1).unwrap();
    let total = ops.append.len() + ops.slot.len();
    assert_eq!(ops.slot.len(), SLOT_LEN);

    for k in 0..total {
        let crashed = crashed_at(&base, &ops, k);
        let reopened = MutableStore::open(crashed)
            .unwrap_or_else(|e| panic!("crash at byte {k}/{total} bricked the store: {e}"));
        // Until the very last slot byte, the previous root wins; a
        // torn slot can at worst still decode as its own old content.
        assert_eq!(reopened.generation(), 1, "crash at byte {k}");
        let full = reopened.current().unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(full.as_slice(), want.as_slice(), "crash at byte {k}");
    }

    // The complete publish lands generation 2.
    let complete = crashed_at(&base, &ops, total);
    let reopened = MutableStore::open(complete).unwrap();
    assert_eq!(reopened.generation(), 2);
    // …and generation 1 is still reachable and bit-identical.
    let old = reopened.open_at(1).unwrap().read_full::<f32>(1).unwrap();
    assert_eq!(old.as_slice(), want.as_slice());
}

#[test]
fn corrupting_any_staged_byte_never_corrupts_previous_generation() {
    let (mut store, ops) = store_with_pending_publish();
    let want = store.current().unwrap().read_full::<f32>(1).unwrap();
    let base_len = ops.base_len;
    let slot_range = ops.slot_offset..ops.slot_offset + SLOT_LEN;
    store.apply(ops).unwrap();
    let published = store.as_bytes().to_vec();
    let want2 = store.current().unwrap().read_full::<f32>(1).unwrap();

    // Flip one bit in every byte the publish wrote: the whole appended
    // region plus the flipped root slot.
    let mut targets: Vec<usize> = (base_len..published.len()).collect();
    targets.extend(slot_range);
    for i in targets {
        let mut bad = published.clone();
        bad[i] ^= 0x10;
        let reopened = MutableStore::open(bad)
            .unwrap_or_else(|e| panic!("flip at byte {i} bricked the store: {e}"));
        match reopened.generation() {
            // Corrupt new manifest or root slot: fell back to gen 1,
            // which must read bit-identical.
            1 => {
                let full = reopened.current().unwrap().read_full::<f32>(1).unwrap();
                assert_eq!(full.as_slice(), want.as_slice(), "flip at byte {i}");
            }
            // Corrupt new *object*: gen 2 opens, the damaged chunk is
            // caught by its CRC (never silently wrong), and gen 1 is
            // untouched.
            2 => {
                let cur = reopened.current().unwrap();
                match cur.read_full::<f32>(1) {
                    Ok(full) => assert_eq!(
                        full.as_slice(),
                        want2.as_slice(),
                        "flip at byte {i} silently changed data"
                    ),
                    Err(e) => assert!(
                        matches!(
                            e,
                            CodecError::ChecksumMismatch
                                | CodecError::Corrupt { .. }
                                | CodecError::TruncatedStream { .. }
                        ),
                        "flip at byte {i}: unexpected error {e:?}"
                    ),
                }
                let old = reopened.open_at(1).unwrap().read_full::<f32>(1).unwrap();
                assert_eq!(old.as_slice(), want.as_slice(), "flip at byte {i}");
            }
            g => panic!("flip at byte {i} invented generation {g}"),
        }
    }
}

#[test]
fn double_publish_keeps_exactly_two_roots_live() {
    // Slots alternate: after two more publishes the gen-1 root is gone,
    // but gen 1 stays reachable through the manifest parent chain.
    let data = field(Shape::d2(16, 16));
    let codec = CompressorId::Szx.instance();
    let mut store = MutableStore::create(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(1e-3),
        Shape::d2(8, 8),
        1,
    )
    .unwrap();
    let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| 1.0);
    for gen in 2..=5u64 {
        store
            .update_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
            .unwrap();
        assert_eq!(store.generation(), gen);
        // Every prior generation is still reachable via parent links.
        for g in 1..=gen {
            assert_eq!(store.open_at(g).unwrap().generation(), g);
        }
    }
}

/// Hand-writes a root slot in the documented wire format (the store
/// crate keeps its encoder private; the format is the contract).
fn encode_slot(generation: u64, offset: u64, len: u64) -> [u8; SLOT_LEN] {
    let mut out = [0u8; SLOT_LEN];
    out[..8].copy_from_slice(&generation.to_le_bytes());
    out[8..16].copy_from_slice(&offset.to_le_bytes());
    out[16..24].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[..24]);
    out[24..].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Builds a three-generation store and returns it with its history
/// summaries (newest first).
fn three_generations() -> MutableStore {
    let data = field(Shape::d2(20, 12));
    let codec = CompressorId::Szx.instance();
    let mut store = MutableStore::create(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(1e-3),
        Shape::d2(8, 8),
        1,
    )
    .unwrap();
    let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| -2.0);
    store
        .update_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
        .unwrap();
    store
        .update_region(&Region::new(&[8, 0], &[4, 4]), &patch, 1)
        .unwrap();
    store
}

/// Republishes `store`'s current manifest with tampered generation
/// links and a fresh root, returning the tampered file image.
fn republish_with_parent(
    store: &MutableStore,
    parent: u64,
    parent_offset: u64,
    parent_len: u64,
) -> Vec<u8> {
    let cur = store.current().unwrap();
    let mut manifest = cur.manifest().clone();
    {
        let meta = manifest.generation.as_mut().unwrap();
        meta.generation += 1;
        meta.parent = parent;
        meta.parent_offset = parent_offset;
        meta.parent_len = parent_len;
    }
    let mut file = store.as_bytes().to_vec();
    let manifest_offset = file.len() as u64;
    let encoded = manifest.encode();
    file.extend_from_slice(&encoded);
    // Overwrite slot 0 (whichever it held, the new generation is
    // higher and wins root selection).
    let slot = encode_slot(
        manifest.generation.as_ref().unwrap().generation,
        manifest_offset,
        encoded.len() as u64,
    );
    file[5..5 + SLOT_LEN].copy_from_slice(&slot);
    file
}

#[test]
fn corrupt_generation_chain_is_typed_error_not_wrong_data() {
    let store = three_generations();
    let h = store.history().unwrap();
    assert_eq!(h.len(), 3);
    // Lie about the parent: claim generation 3 but point at gen 1's
    // manifest. The current generation must still serve; walking the
    // chain must fail loudly.
    let gen1 = &h[2];
    let bad = republish_with_parent(&store, 3, gen1.manifest_offset, gen1.manifest_len);
    let reopened = MutableStore::open(bad).unwrap();
    assert_eq!(reopened.generation(), 4);
    assert!(reopened.current().unwrap().read_full::<f32>(1).is_ok());
    assert!(matches!(
        reopened.history(),
        Err(CodecError::Corrupt { context: "store generation chain" })
    ));
    assert!(matches!(
        reopened.open_at(3),
        Err(CodecError::Corrupt { context: "store generation chain" })
    ));
}

#[test]
fn dangling_parent_is_typed_error_not_wrong_data() {
    let store = three_generations();
    // Parent pointer beyond the file.
    let bad = republish_with_parent(&store, 3, 1 << 40, 64);
    let reopened = MutableStore::open(bad).unwrap();
    assert_eq!(reopened.generation(), 4);
    assert!(reopened.current().unwrap().read_full::<f32>(1).is_ok());
    assert!(reopened.history().is_err());
    assert!(reopened.open_at(3).is_err());

    // Parent pointer into the middle of an object (garbage manifest).
    let bad = republish_with_parent(&store, 3, SUPERBLOCK_LEN as u64 + 3, 64);
    let reopened = MutableStore::open(bad).unwrap();
    assert!(reopened.history().is_err());
    assert!(reopened.open_at(3).is_err());
}

#[test]
fn both_roots_corrupt_is_a_typed_open_error() {
    let store = three_generations();
    let mut bad = store.as_bytes().to_vec();
    for b in &mut bad[5..SUPERBLOCK_LEN] {
        *b ^= 0xFF;
    }
    assert!(matches!(
        MutableStore::open(bad),
        Err(CodecError::Corrupt { context: "mutable store root" })
    ));
}

#[test]
fn truncated_superblock_and_magic_are_typed_errors() {
    let store = three_generations();
    for cut in 0..SUPERBLOCK_LEN {
        assert!(
            MutableStore::open(store.as_bytes()[..cut].to_vec()).is_err(),
            "cut {cut}"
        );
    }
    assert_eq!(&store.as_bytes()[..4], MUTABLE_MAGIC);
}

#[test]
fn v4_manifest_is_rejected_outside_a_mutable_store() {
    // A bare v4 manifest handed to ChunkedStore::open must not be
    // treated as a self-contained stream.
    let m = Manifest {
        dtype: 0,
        shape: Shape::d2(4, 4),
        chunk_shape: Shape::d2(4, 4),
        abs_bound: 1e-3,
        chains: vec![eblcio_codec::ChainSpec::parse("szx").unwrap()],
        chunks: vec![eblcio_store::ChunkEntry { chain: 0, offset: 61, len: 9 }],
        sharding: None,
        generation: Some(GenerationMeta {
            generation: 1,
            parent: 0,
            parent_offset: 0,
            parent_len: 0,
            born_gens: vec![1],
            chunk_crcs: vec![0],
        }),
    };
    assert!(matches!(
        eblcio_store::ChunkedStore::open(&m.encode()),
        Err(CodecError::Corrupt { .. })
    ));
}
