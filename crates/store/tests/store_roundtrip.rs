//! Integration tests for the chunked store: round-trips across every
//! codec and precision, edge chunks, partial reads, corruption
//! rejection, and the ε contract.

use eblcio_codec::{header, ChainSpec, CompressorId, ErrorBound};
use eblcio_data::{max_rel_error, Element, NdArray, Shape};
use eblcio_store::{ChunkedStore, Region};
use proptest::prelude::*;

fn field<T: Element>(shape: Shape) -> NdArray<T> {
    NdArray::from_fn(shape, |i| {
        let v = (i[0] as f64 * 0.23).sin() * 40.0
            + (i.get(1).copied().unwrap_or(0) as f64 * 0.31).cos() * 15.0
            + i.get(2).copied().unwrap_or(0) as f64 * 0.5;
        T::from_f64(v)
    })
}

const EPS: f64 = 1e-3;
// Value-range ε check with the same hair of float slack the codec
// test-suite uses.
const SLACK: f64 = 1.0000001;

#[test]
fn full_roundtrip_all_codecs_f32() {
    let data = field::<f32>(Shape::d3(20, 12, 12));
    for id in CompressorId::ALL {
        let codec = id.instance();
        let stream = ChunkedStore::write(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(EPS),
            Shape::d3(8, 8, 8),
            4,
        )
        .unwrap();
        let store = ChunkedStore::open(&stream).unwrap();
        assert_eq!(store.codec_id(), Some(id));
        assert_eq!(store.shape(), data.shape());
        let back = store.read_full::<f32>(4).unwrap();
        assert_eq!(back.shape(), data.shape());
        assert!(
            max_rel_error(&data, &back) <= EPS * SLACK,
            "{} broke the ε contract",
            id.name()
        );
    }
}

#[test]
fn full_roundtrip_all_codecs_f64() {
    let data = field::<f64>(Shape::d2(30, 25));
    for id in CompressorId::ALL {
        let codec = id.instance();
        let stream = ChunkedStore::write(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(EPS),
            Shape::d2(7, 9),
            2,
        )
        .unwrap();
        let store = ChunkedStore::open(&stream).unwrap();
        let back = store.read_full::<f64>(2).unwrap();
        assert!(
            max_rel_error(&data, &back) <= EPS * SLACK,
            "{} broke the ε contract (f64)",
            id.name()
        );
    }
}

#[test]
fn single_chunk_reads_match_full_read() {
    let data = field::<f32>(Shape::d2(19, 13));
    let codec = CompressorId::Sz3.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        3,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    let full = store.read_full::<f32>(1).unwrap();
    for i in 0..store.n_chunks() {
        let region = store.grid().chunk_region(i);
        let chunk = store.read_chunk::<f32>(i).unwrap();
        assert_eq!(chunk.shape(), region.shape(), "chunk {i}");
        // The chunk must be exactly the corresponding box of read_full.
        for off in 0..chunk.len() {
            let local = chunk.shape().unoffset(off);
            let global = [
                region.origin()[0] + local[0],
                region.origin()[1] + local[1],
            ];
            assert_eq!(chunk.as_slice()[off], full.get(&global), "chunk {i}");
        }
    }
}

#[test]
fn region_read_decodes_only_intersecting_chunks() {
    // 4×4×4 grid of 8³ chunks over a 32³ cube.
    let data = field::<f32>(Shape::d3(32, 32, 32));
    let codec = CompressorId::Szx.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d3(8, 8, 8),
        4,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.n_chunks(), 64);

    // A region inside a single chunk: exactly one decode.
    let (one, stats) = store
        .read_region_with_stats::<f32>(&Region::new(&[9, 10, 11], &[4, 4, 4]))
        .unwrap();
    assert_eq!(stats.chunks_decoded, 1);
    assert_eq!(stats.chunks_total, 64);
    assert_eq!(one.shape(), Shape::d3(4, 4, 4));

    // A 2×2×2 block of chunks: eight decodes.
    let (_, stats) = store
        .read_region_with_stats::<f32>(&Region::new(&[4, 4, 4], &[8, 8, 8]))
        .unwrap();
    assert_eq!(stats.chunks_decoded, 8);
    assert!(stats.compressed_bytes_read < stream.len() as u64 / 4);

    // Values match a direct gather from the original within ε.
    let region = Region::new(&[3, 17, 5], &[13, 9, 20]);
    let got = store.read_region::<f32>(&region).unwrap();
    let want = NdArray::<f32>::from_fn(region.shape(), |i| {
        data.get(&[
            i[0] + region.origin()[0],
            i[1] + region.origin()[1],
            i[2] + region.origin()[2],
        ])
    });
    let range = data.value_range();
    for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
        assert!(((a - b).abs() as f64) <= EPS * SLACK * range);
    }
}

/// A small region over chains with partial-decode support (SZx, ZFP)
/// reconstructs only the intersections — measurably fewer samples than
/// whole-chunk assembly — and stays bit-identical to it. A chain
/// without support (SZ3) takes the whole-chunk path and reports zero
/// partial decodes.
#[test]
fn small_region_uses_partial_decode_and_matches_whole_chunk_path() {
    let data = field::<f64>(Shape::d2(64, 64));
    // 2×2 grid of 32×32 chunks; the region straddles two chunks with
    // intersections of 70 and 30 samples — both ≤ 1/8 of 1024.
    let region = Region::new(&[20, 25], &[10, 10]);
    for (id, expect_partial) in [
        (CompressorId::Szx, true),
        (CompressorId::Zfp, true),
        (CompressorId::Sz3, false),
    ] {
        let codec = id.instance();
        let stream = ChunkedStore::write(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(EPS),
            Shape::d2(32, 32),
            2,
        )
        .unwrap();
        let store = ChunkedStore::open(&stream).unwrap();
        let (got, stats) = store.read_region_with_stats::<f64>(&region).unwrap();
        assert_eq!(stats.chunks_decoded, 2, "{}", id.name());
        assert_eq!(stats.partial_decodes > 0, expect_partial, "{}", id.name());
        let expect_samples = if expect_partial { 100 } else { 2048 };
        assert_eq!(stats.samples_decoded, expect_samples, "{}", id.name());

        // Bit-identical to serial whole-chunk assembly.
        let mut whole = NdArray::<f64>::zeros(region.shape());
        for i in 0..store.n_chunks() {
            let chunk_region = store.grid().chunk_region(i);
            if chunk_region.intersect(&region).is_none() {
                continue;
            }
            let part = store.read_chunk::<f64>(i).unwrap();
            eblcio_store::scatter_chunk(&part, &chunk_region, &region, &mut whole);
        }
        for (a, b) in got.as_slice().iter().zip(whole.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}", id.name());
        }
    }
}

#[test]
fn non_divisible_edge_chunks() {
    // 13 is prime: every chunk boundary is clipped somewhere.
    let data = field::<f32>(Shape::d2(13, 13));
    let codec = CompressorId::Sz2.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(5, 4),
        2,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.grid().counts(), &[3, 4]);
    let last = store.read_chunk::<f32>(store.n_chunks() - 1).unwrap();
    assert_eq!(last.shape(), Shape::d2(3, 1));
    let back = store.read_full::<f32>(2).unwrap();
    assert!(max_rel_error(&data, &back) <= EPS * SLACK);
}

#[test]
fn one_dimensional_store() {
    let data = field::<f32>(Shape::d1(1000));
    let codec = CompressorId::Zfp.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d1(256),
        4,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.n_chunks(), 4);
    let (mid, stats) = store
        .read_region_with_stats::<f32>(&Region::new(&[500], &[10]))
        .unwrap();
    assert_eq!(stats.chunks_decoded, 1);
    assert_eq!(mid.len(), 10);
}

#[test]
fn corrupt_and_truncated_streams_rejected() {
    let data = field::<f32>(Shape::d2(16, 16));
    let codec = CompressorId::Sz3.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .unwrap();
    // Any truncation fails at open() or at the first chunk read.
    for cut in [0, 3, 10, stream.len() / 2, stream.len() - 1] {
        let r = ChunkedStore::open(&stream[..cut]);
        let failed = match r {
            Err(_) => true,
            Ok(s) => (0..s.n_chunks()).any(|i| s.read_chunk::<f32>(i).is_err()),
        };
        assert!(failed, "cut {cut}");
    }
    // Bad magic.
    let mut bad = stream.clone();
    bad[0] ^= 0xFF;
    assert!(ChunkedStore::open(&bad).is_err());
    // A flipped payload bit is caught by the chunk's own checksum.
    let mut bad = stream.clone();
    let last = bad.len() - 5;
    bad[last] ^= 0x01;
    let store = ChunkedStore::open(&bad).unwrap();
    assert!((0..store.n_chunks()).any(|i| store.read_chunk::<f32>(i).is_err()));
    // Dtype mismatch is typed, not garbled.
    let store = ChunkedStore::open(&stream).unwrap();
    assert!(store.read_full::<f64>(1).is_err());
    assert!(store.read_chunk::<f64>(0).is_err());
}

#[test]
fn per_chunk_quality_reports() {
    let data = field::<f32>(Shape::d2(32, 32));
    let codec = CompressorId::Qoz.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(16, 16),
        2,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    let reports = store.chunk_quality(&data).unwrap();
    assert_eq!(reports.len(), store.n_chunks());
    let range = data.value_range();
    for (i, r) in reports.iter().enumerate() {
        // Per-chunk max |D−D̂| honours the global-range ε.
        assert!(r.max_abs_error <= EPS * SLACK * range, "chunk {i}");
        assert!(r.compression_ratio > 1.0, "chunk {i}");
    }
    // The summed compressed bytes are consistent with the ratios.
    let total: u64 = store.chunk_lens().iter().sum();
    assert!(total < data.nbytes() as u64);
}

#[test]
fn mixed_codec_store_roundtrips_within_epsilon() {
    // The acceptance scenario: one store, several distinct chains
    // across chunks (presets and a custom chain), full and region reads
    // within the requested ε.
    let data = field::<f32>(Shape::d3(24, 16, 16));
    let chains = vec![
        ChainSpec::preset(CompressorId::Sz3),
        ChainSpec::preset(CompressorId::Szx),
        ChainSpec::parse("sz2+shuffle4+lz").unwrap(),
    ];
    let grid_chunks = 3 * 2 * 2; // 8³ chunks over 24×16×16
    let picks: Vec<usize> = (0..grid_chunks).map(|i| i % chains.len()).collect();
    let stream = ChunkedStore::write_mixed(
        &chains,
        &picks,
        &data,
        ErrorBound::Relative(EPS),
        Shape::d3(8, 8, 8),
        4,
    )
    .unwrap();

    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.n_chunks(), grid_chunks);
    assert_eq!(store.chains().len(), 3);
    assert_eq!(store.codec_id(), None);
    let distinct: std::collections::HashSet<String> =
        (0..store.n_chunks()).map(|i| store.chunk_chain(i).label()).collect();
    assert!(distinct.len() >= 2, "store must actually mix codecs");
    for (i, &p) in picks.iter().enumerate() {
        assert_eq!(store.chunk_chain(i), &chains[p], "chunk {i}");
    }

    // Full read honours the global-range ε.
    let back = store.read_full::<f32>(4).unwrap();
    assert!(max_rel_error(&data, &back) <= EPS * SLACK);

    // Region reads crossing chain boundaries honour it too.
    let region = Region::new(&[4, 4, 4], &[8, 8, 8]);
    let (got, stats) = store.read_region_with_stats::<f32>(&region).unwrap();
    assert!(stats.chunks_decoded < store.n_chunks());
    let range = data.value_range();
    for off in 0..got.len() {
        let local = got.shape().unoffset(off);
        let global = [
            local[0] + region.origin()[0],
            local[1] + region.origin()[1],
            local[2] + region.origin()[2],
        ];
        let err = (data.get(&global) - got.as_slice()[off]).abs() as f64;
        assert!(err <= EPS * SLACK * range);
    }

    // Per-chunk quality reports work across mixed chains.
    let reports = store.chunk_quality(&data).unwrap();
    assert_eq!(reports.len(), store.n_chunks());
    for r in &reports {
        assert!(r.max_abs_error <= EPS * SLACK * range);
    }
}

#[test]
fn adaptive_write_picks_by_estimated_cr_and_roundtrips() {
    // Two-regime field: smooth rows then hard-to-predict rows. The
    // adaptive writer prices SZ3 vs SZx per chunk; whatever it picks,
    // the result must be a valid (possibly mixed) store within ε.
    let mut x = 0x9E3779B97F4A7C15u64;
    let data = NdArray::<f32>::from_fn(Shape::d2(32, 64), |i| {
        if i[0] < 16 {
            (i[1] as f32 * 0.1).sin() * 50.0 + i[0] as f32
        } else {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32
        }
    });
    let candidates = vec![
        ChainSpec::preset(CompressorId::Sz3),
        ChainSpec::preset(CompressorId::Szx),
    ];
    let stream = ChunkedStore::write_adaptive(
        &candidates,
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 64),
        2,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.n_chunks(), 4);
    // Every selected chain is one of the candidates.
    for i in 0..store.n_chunks() {
        assert!(candidates.contains(store.chunk_chain(i)), "chunk {i}");
    }
    let back = store.read_full::<f32>(2).unwrap();
    assert!(max_rel_error(&data, &back) <= EPS * SLACK);

    // The smooth half should be priced in SZ3's favour (big CR gap on
    // interpolable data).
    assert_eq!(store.chunk_chain(0), &ChainSpec::preset(CompressorId::Sz3));
}

#[test]
fn mixed_write_rejects_bad_picks() {
    let data = field::<f32>(Shape::d2(16, 16));
    let chains = vec![ChainSpec::preset(CompressorId::Szx)];
    // Wrong pick count.
    assert!(ChunkedStore::write_mixed(
        &chains,
        &[0],
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .is_err());
    // Pick out of range.
    assert!(ChunkedStore::write_mixed(
        &chains,
        &[0, 0, 0, 1],
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .is_err());
    // No chains at all.
    assert!(ChunkedStore::write_adaptive(
        &[],
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .is_err());
}

#[test]
fn unused_candidates_are_dropped_from_the_manifest() {
    let data = field::<f32>(Shape::d2(16, 16));
    let chains = vec![
        ChainSpec::preset(CompressorId::Sz3),
        ChainSpec::preset(CompressorId::Szx),
        ChainSpec::preset(CompressorId::Zfp),
    ];
    // Only ever pick chain 2.
    let stream = ChunkedStore::write_mixed(
        &chains,
        &[2, 2, 2, 2],
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert_eq!(store.chains(), &[ChainSpec::preset(CompressorId::Zfp)]);
    assert_eq!(store.codec_id(), Some(CompressorId::Zfp));
}

#[test]
fn sharded_store_roundtrips_bit_identically_with_unsharded() {
    let data = field::<f32>(Shape::d3(20, 12, 12));
    let codec = CompressorId::Sz3.instance();
    let plain = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d3(8, 8, 8),
        4,
    )
    .unwrap();
    let sharded = ChunkedStore::write_sharded(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d3(8, 8, 8),
        4,
        4,
    )
    .unwrap();

    let a = ChunkedStore::open(&plain).unwrap();
    let b = ChunkedStore::open(&sharded).unwrap();
    assert!(!a.is_sharded());
    assert!(b.is_sharded());
    assert_eq!(a.n_chunks(), b.n_chunks());
    assert_eq!(b.sharding().unwrap().n_shards(), a.n_chunks().div_ceil(4));
    // Chunk payloads are byte-identical: sharding only changes packing.
    for i in 0..a.n_chunks() {
        assert_eq!(
            a.chunk_payload(i).unwrap(),
            b.chunk_payload(i).unwrap(),
            "chunk {i}"
        );
    }
    // Every read path decodes the same bits.
    let fa = a.read_full::<f32>(2).unwrap();
    let fb = b.read_full::<f32>(2).unwrap();
    assert_eq!(fa.as_slice(), fb.as_slice());
    let region = Region::new(&[3, 2, 5], &[10, 9, 6]);
    let ra = a.read_region::<f32>(&region).unwrap();
    let rb = b.read_region::<f32>(&region).unwrap();
    assert_eq!(ra.as_slice(), rb.as_slice());
}

#[test]
fn sharded_store_region_stats_match_unsharded() {
    let data = field::<f32>(Shape::d2(32, 32));
    let codec = CompressorId::Szx.instance();
    let sharded = ChunkedStore::write_sharded(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        3,
        2,
    )
    .unwrap();
    let store = ChunkedStore::open(&sharded).unwrap();
    let (_, stats) = store
        .read_region_with_stats::<f32>(&Region::new(&[0, 0], &[8, 8]))
        .unwrap();
    assert_eq!(stats.chunks_decoded, 1);
    assert_eq!(stats.chunks_total, 16);
}

#[test]
fn sharded_corruption_caught_by_slot_crc() {
    let data = field::<f32>(Shape::d2(16, 16));
    let codec = CompressorId::Szx.instance();
    let mut stream = ChunkedStore::write_sharded(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        2,
        1,
    )
    .unwrap();
    // Flip a bit in the very last payload byte (inside the last shard).
    let n = stream.len();
    stream[n - 1] ^= 0x20;
    let store = ChunkedStore::open(&stream).unwrap();
    let last = store.n_chunks() - 1;
    assert!(matches!(
        store.chunk_payload(last),
        Err(eblcio_codec::CodecError::ChecksumMismatch)
    ));
    assert!(store.read_chunk::<f32>(last).is_err());
    // Chunks in intact shards still read fine.
    assert!(store.read_chunk::<f32>(0).is_ok());
}

#[test]
fn out_of_range_chunk_index_is_typed_error() {
    let data = field::<f32>(Shape::d2(16, 16));
    let codec = CompressorId::Szx.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d2(8, 8),
        1,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    assert!(store.chunk_payload(store.n_chunks()).is_err());
    assert!(store.read_chunk::<f32>(usize::MAX).is_err());
}

/// The parallel region read must produce bit-identical output to a
/// serial chunk-by-chunk assembly of the same region.
#[test]
fn parallel_region_read_matches_serial_assembly() {
    let data = field::<f64>(Shape::d3(24, 18, 10));
    let codec = CompressorId::Sz2.instance();
    let stream = ChunkedStore::write(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(EPS),
        Shape::d3(7, 5, 4),
        4,
    )
    .unwrap();
    let store = ChunkedStore::open(&stream).unwrap();
    let region = Region::new(&[2, 3, 1], &[20, 11, 8]);
    let (par, stats) = store.read_region_with_stats::<f64>(&region).unwrap();

    // Serial reference: decode each intersecting chunk alone and
    // scatter it one at a time.
    let mut serial = NdArray::<f64>::zeros(region.shape());
    let mut decoded = 0;
    for i in 0..store.n_chunks() {
        let chunk_region = store.grid().chunk_region(i);
        if chunk_region.intersect(&region).is_none() {
            continue;
        }
        decoded += 1;
        let part = store.read_chunk::<f64>(i).unwrap();
        eblcio_store::scatter_chunk(&part, &chunk_region, &region, &mut serial);
    }
    assert_eq!(stats.chunks_decoded, decoded);
    assert_eq!(par.as_slice(), serial.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The store resolves ε against the *global* value range, exactly
    /// like whole-array serial compression: the manifest bound, every
    /// chunk's own stream header bound, and the serial stream's header
    /// bound must all agree — and the reconstruction must honour it.
    #[test]
    fn per_chunk_epsilon_equals_whole_array_epsilon(
        d0 in 4usize..24,
        d1 in 4usize..24,
        c0 in 2usize..10,
        c1 in 2usize..10,
        eps_exp in 2u32..5,
        codec_pick in 0usize..5,
        seed in any::<u64>(),
    ) {
        let eps = 10f64.powi(-(eps_exp as i32));
        let shape = Shape::d2(d0, d1);
        let mut x = seed | 1;
        let data = NdArray::<f32>::from_fn(shape, |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1_000_001) as f32 / 500.0 - 1000.0
        });
        let id = CompressorId::ALL[codec_pick];
        let codec = id.instance();

        let chunked = ChunkedStore::write(
            codec.as_ref(), &data, ErrorBound::Relative(eps), Shape::d2(c0, c1), 2,
        ).unwrap();
        let serial = codec.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();

        let store = ChunkedStore::open(&chunked).unwrap();
        let (serial_header, _) = header::read_stream(&serial).unwrap();
        // One ε, resolved once, everywhere.
        prop_assert_eq!(store.abs_bound(), serial_header.abs_bound);
        for i in 0..store.n_chunks() {
            let (h, _) = header::read_stream(store.chunk_payload(i).unwrap()).unwrap();
            prop_assert_eq!(h.abs_bound, store.abs_bound(), "chunk {}", i);
        }
        // And the contract holds end to end.
        let back = store.read_full::<f32>(2).unwrap();
        prop_assert!(max_rel_error(&data, &back) <= eps * SLACK);
    }
}
