//! The PR 5 publish fault-injection argument, re-run through the
//! [`Storage`] interface: instead of slicing a raw buffer, every write
//! of a publish is cut by [`FaultyStorage`]'s byte budget — on a real
//! backend — and the store must always reopen at the previous
//! generation. This closes the gap `mutable_faults.rs` leaves: that
//! suite proves the *file format* tolerates torn bytes; this one proves
//! the *write-through path* (`MutableStore::apply` on a backing
//! backend) produces exactly the torn states the format tolerates.

use eblcio_codec::{CodecError, CompressorId, ErrorBound};
use eblcio_data::{NdArray, Shape};
use eblcio_store::mutable::SLOT_LEN;
use eblcio_store::storage::{
    ByteRange, FaultPlan, FaultyStorage, MemoryStorage, Storage,
};
use eblcio_store::{MutableStore, PublishOps, Region};
use std::sync::Arc;

const KEY: &str = "store.ebms";

fn field(shape: Shape) -> NdArray<f32> {
    NdArray::from_fn(shape, |i| {
        (i[0] as f32 * 0.23).sin() * 40.0 + (i[1] as f32 * 0.31).cos() * 15.0
    })
}

/// A generation-1 store image plus prepared (unapplied) publish ops
/// for a one-chunk update.
fn base_image_with_pending_publish() -> (Vec<u8>, PublishOps) {
    let data = field(Shape::d2(20, 12));
    let codec = CompressorId::Szx.instance();
    let store = MutableStore::create(
        codec.as_ref(),
        &data,
        ErrorBound::Relative(1e-3),
        Shape::d2(8, 8),
        2,
    )
    .unwrap();
    let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 3.25);
    let mut w = store.writer().unwrap();
    w.stage_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
        .unwrap();
    let ops = w.prepare().unwrap();
    (store.as_bytes().to_vec(), ops)
}

/// A fresh memory backend seeded with `image`, wrapped in an (unarmed)
/// fault injector.
fn seeded_faulty(image: &[u8]) -> (Arc<MemoryStorage>, Arc<FaultyStorage>) {
    let inner = Arc::new(MemoryStorage::new());
    inner.set(KEY, image).unwrap();
    let faulty = Arc::new(FaultyStorage::new(inner.clone()));
    (inner, faulty)
}

#[test]
fn publish_torn_at_every_write_byte_preserves_previous_generation() {
    let (base, ops) = base_image_with_pending_publish();
    let want = MutableStore::open(base.clone())
        .unwrap()
        .current()
        .unwrap()
        .read_full::<f32>(1)
        .unwrap();
    let total = ops.append.len() + SLOT_LEN;

    for k in 0..total {
        let (inner, faulty) = seeded_faulty(&base);
        let mut store =
            MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).unwrap();
        faulty.set_plan(FaultPlan::torn_after_bytes(k as u64));

        let err = store.apply(ops.clone()).unwrap_err();
        assert!(
            matches!(err, CodecError::StorageIo { .. }),
            "budget {k}: {err:?}"
        );
        // The in-memory handle must not have advanced either.
        assert_eq!(store.generation(), 1, "budget {k}");

        // What actually persisted (read past the injector) must reopen
        // at generation 1, bit-identical — no matter where the write
        // died.
        let persisted = inner.get(KEY).unwrap();
        let reopened = MutableStore::open_arc(persisted)
            .unwrap_or_else(|e| panic!("budget {k}/{total} bricked the store: {e}"));
        assert_eq!(reopened.generation(), 1, "budget {k}");
        let full = reopened.current().unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(full.as_slice(), want.as_slice(), "budget {k}");
    }

    // With the budget covering every byte, the publish lands.
    let (inner, faulty) = seeded_faulty(&base);
    let mut store = MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).unwrap();
    faulty.set_plan(FaultPlan::torn_after_bytes(total as u64));
    store.apply(ops).unwrap();
    assert_eq!(store.generation(), 2);
    let reopened = MutableStore::open_arc(inner.get(KEY).unwrap()).unwrap();
    assert_eq!(reopened.generation(), 2);
    // …and generation 1 is still reachable and bit-identical.
    let old = reopened.open_at(1).unwrap().read_full::<f32>(1).unwrap();
    assert_eq!(old.as_slice(), want.as_slice());
}

#[test]
fn publish_dying_at_every_op_preserves_previous_generation() {
    let (base, ops) = base_image_with_pending_publish();
    // The write-through is three backend calls: size (stale guard),
    // append, write_at. Kill each in turn.
    for allowed in 0..3u64 {
        let (inner, faulty) = seeded_faulty(&base);
        let mut store =
            MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).unwrap();
        faulty.set_plan(FaultPlan::dies_after_ops(allowed));
        assert!(store.apply(ops.clone()).is_err(), "ops budget {allowed}");
        assert_eq!(store.generation(), 1);
        let reopened = MutableStore::open_arc(inner.get(KEY).unwrap()).unwrap();
        assert_eq!(reopened.generation(), 1, "ops budget {allowed}");
    }
}

#[test]
fn interrupted_publish_recovers_and_republishes_through_same_backend() {
    // After a torn publish, a fresh handle on the same (healed) backend
    // must be able to retry the update and land generation 2.
    let (base, _) = base_image_with_pending_publish();
    let (inner, faulty) = seeded_faulty(&base);
    let mut store = MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).unwrap();

    let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 3.25);
    let mut w = store.writer().unwrap();
    w.stage_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
        .unwrap();
    let ops = w.prepare().unwrap();
    faulty.set_plan(FaultPlan::torn_after_bytes(ops.append.len() as u64 / 2));
    assert!(store.apply(ops).is_err());

    // "Reboot": heal the injector, reopen from the torn object.
    faulty.set_plan(FaultPlan::none());
    let mut store = MutableStore::open_on(faulty as Arc<dyn Storage>, KEY).unwrap();
    assert_eq!(store.generation(), 1);
    let stats = store
        .update_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
        .unwrap();
    assert_eq!(stats.generation, 2);
    // The retried publish is durable.
    let reopened = MutableStore::open_arc(inner.get(KEY).unwrap()).unwrap();
    assert_eq!(reopened.generation(), 2);
}

#[test]
fn stale_backend_object_fails_publish_with_typed_error() {
    // If someone else replaced the backend object since this handle
    // opened it, the size guard must refuse the publish outright
    // rather than appending at a wrong offset.
    let (base, ops) = base_image_with_pending_publish();
    let (inner, faulty) = seeded_faulty(&base);
    let mut store = MutableStore::open_on(faulty as Arc<dyn Storage>, KEY).unwrap();
    inner.append(KEY, b"concurrent writer got here first").unwrap();
    assert!(matches!(
        store.apply(ops),
        Err(CodecError::Corrupt { context: "stale store publish" })
    ));
    assert_eq!(store.generation(), 1);
}

#[test]
fn read_faults_surface_as_typed_errors_on_open() {
    let (base, _) = base_image_with_pending_publish();
    let (_inner, faulty) = seeded_faulty(&base);
    faulty.set_plan(FaultPlan::failing_reads());
    assert!(matches!(
        MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY),
        Err(CodecError::StorageIo { .. })
    ));
    faulty.set_plan(FaultPlan::none());
    assert!(MutableStore::open_on(faulty as Arc<dyn Storage>, KEY).is_ok());
}

#[test]
fn short_reads_fail_validation_not_silently() {
    // A backend returning fewer bytes than the object holds must be
    // caught by open's structural validation, never served as data.
    let (base, _) = base_image_with_pending_publish();
    let (_inner, faulty) = seeded_faulty(&base);
    for limit in [0u64, 4, 61, 200, base.len() as u64 - 1] {
        faulty.set_plan(FaultPlan::short_reads(limit));
        assert!(
            MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).is_err(),
            "short read at {limit} bytes was accepted"
        );
    }
    // Sanity: the short-read plan also truncates raw range reads.
    faulty.set_plan(FaultPlan::short_reads(8));
    assert_eq!(
        faulty.get_range(KEY, ByteRange::Full).unwrap().len(),
        8
    );
}

#[test]
fn compact_through_faulty_backend_is_atomic() {
    // compact() writes through as one atomic set; a torn set leaves a
    // garbage object (memory backend applies the prefix), but the
    // in-memory handle must stay on the un-compacted image and a
    // successful retry must fully replace the object.
    let (base, ops) = base_image_with_pending_publish();
    let (inner, faulty) = seeded_faulty(&base);
    let mut store = MutableStore::open_on(faulty.clone() as Arc<dyn Storage>, KEY).unwrap();
    store.apply(ops).unwrap();
    assert_eq!(store.generation(), 2);

    faulty.set_plan(FaultPlan::torn_after_bytes(10));
    assert!(store.compact().is_err());
    assert_eq!(store.generation(), 2, "failed compact moved the handle");

    faulty.set_plan(FaultPlan::none());
    let stats = store.compact().unwrap();
    assert_eq!(stats.generation, 3);
    let reopened = MutableStore::open_arc(inner.get(KEY).unwrap()).unwrap();
    assert_eq!(reopened.generation(), 3);
}
