//! Backend-conformance harness: one generic suite proving every
//! [`Storage`] backend honours the same contract (see the module docs
//! of `eblcio_store::storage`), instantiated per backend via a macro.
//!
//! `EBLCIO_TEST_BACKEND` (fs|memory|object|object-fs) additionally
//! selects a backend for the `env_selected` module, which is how the CI
//! backend matrix re-runs the suite per backend.

use eblcio_codec::CodecError;
use eblcio_store::storage::{
    named_backend, ByteRange, FaultyStorage, FilesystemStorage, MemoryStorage, MeteredStorage,
    ObjectCostModel, SimulatedObjectStorage, Storage,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh backend plus whatever guard keeps it alive (temp dirs).
struct Fixture {
    storage: Arc<dyn Storage>,
    _guard: Option<TempDir>,
}

/// Self-cleaning unique temp directory.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eblcio-conformance-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn memory_fixture() -> Fixture {
    Fixture { storage: Arc::new(MemoryStorage::new()), _guard: None }
}

fn filesystem_fixture() -> Fixture {
    let dir = TempDir::new("fs");
    Fixture {
        storage: Arc::new(FilesystemStorage::create(&dir.0).unwrap()),
        _guard: Some(dir),
    }
}

fn object_fixture() -> Fixture {
    Fixture {
        storage: Arc::new(SimulatedObjectStorage::in_memory(ObjectCostModel::default())),
        _guard: None,
    }
}

/// FaultyStorage with no faults armed must be a pure passthrough —
/// running it through the full suite proves the wrapper itself cannot
/// corrupt anything.
fn faulty_passthrough_fixture() -> Fixture {
    Fixture {
        storage: Arc::new(FaultyStorage::new(Arc::new(MemoryStorage::new()))),
        _guard: None,
    }
}

/// MeteredStorage must be semantically invisible: the full suite over
/// a metered memory backend proves the telemetry wrapper changes no
/// observable behaviour. A private registry keeps the suite's traffic
/// out of the process-global metrics.
fn metered_fixture() -> Fixture {
    Fixture {
        storage: Arc::new(MeteredStorage::with_registry(
            Arc::new(MemoryStorage::new()),
            Arc::new(eblcio_obs::MetricsRegistry::default()),
        )),
        _guard: None,
    }
}

fn env_fixture() -> Fixture {
    let name =
        std::env::var("EBLCIO_TEST_BACKEND").unwrap_or_else(|_| "memory".to_string());
    let dir = TempDir::new("env");
    Fixture {
        storage: named_backend(&name, &dir.0).unwrap(),
        _guard: Some(dir),
    }
}

// ---- the generic suite -------------------------------------------------

fn suite_roundtrip(s: &dyn Storage) {
    assert!(!s.exists("a").unwrap());
    s.set("a", b"hello world").unwrap();
    assert!(s.exists("a").unwrap());
    assert_eq!(&*s.get("a").unwrap(), b"hello world");
    assert_eq!(s.size("a").unwrap(), 11);

    // set replaces wholesale.
    s.set("a", b"shorter").unwrap();
    assert_eq!(&*s.get("a").unwrap(), b"shorter");
    assert_eq!(s.size("a").unwrap(), 7);

    // Empty objects are objects.
    s.set("empty", b"").unwrap();
    assert!(s.exists("empty").unwrap());
    assert_eq!(s.size("empty").unwrap(), 0);
    assert_eq!(&*s.get("empty").unwrap(), b"");
}

fn suite_missing_keys(s: &dyn Storage) {
    let missing = |r: Result<(), CodecError>| {
        assert!(matches!(r, Err(CodecError::NoSuchKey { .. })), "{r:?}");
    };
    missing(s.get("nope").map(drop));
    missing(s.get_range("nope", ByteRange::Full).map(drop));
    missing(s.size("nope").map(drop));
    missing(s.write_at("nope", 0, b"x"));
    assert!(!s.exists("nope").unwrap());
}

fn suite_range_reads(s: &dyn Storage) {
    s.set("r", b"0123456789").unwrap();
    assert_eq!(s.get_range("r", ByteRange::Full).unwrap(), b"0123456789");
    assert_eq!(s.get_range("r", ByteRange::From(6)).unwrap(), b"6789");
    assert_eq!(s.get_range("r", ByteRange::From(10)).unwrap(), b"");
    assert_eq!(
        s.get_range("r", ByteRange::Bounded { offset: 2, len: 3 }).unwrap(),
        b"234"
    );
    assert_eq!(
        s.get_range("r", ByteRange::Bounded { offset: 0, len: 0 }).unwrap(),
        b""
    );
    assert_eq!(s.get_range("r", ByteRange::Suffix(4)).unwrap(), b"6789");
    assert_eq!(s.get_range("r", ByteRange::Suffix(0)).unwrap(), b"");

    // Out-of-range requests are typed errors, never clamped bytes.
    let oob = |range: ByteRange| {
        let got = s.get_range("r", range);
        assert!(
            matches!(got, Err(CodecError::StorageRange { .. })),
            "{range:?} -> {got:?}"
        );
    };
    oob(ByteRange::From(11));
    oob(ByteRange::Bounded { offset: 8, len: 3 });
    oob(ByteRange::Bounded { offset: 10, len: 1 });
    oob(ByteRange::Bounded { offset: u64::MAX, len: 2 });
    oob(ByteRange::Suffix(11));
}

fn suite_append_ordering(s: &dyn Storage) {
    // append creates the key and returns the running size.
    assert_eq!(s.append("log", b"aa").unwrap(), 2);
    assert_eq!(s.append("log", b"bbb").unwrap(), 5);
    assert_eq!(s.append("log", b"").unwrap(), 5);
    assert_eq!(s.append("log", b"c").unwrap(), 6);
    assert_eq!(&*s.get("log").unwrap(), b"aabbbc");

    // Appends land after a set, in order.
    s.set("log", b"reset:").unwrap();
    assert_eq!(s.append("log", b"1").unwrap(), 7);
    assert_eq!(&*s.get("log").unwrap(), b"reset:1");
}

fn suite_write_at(s: &dyn Storage) {
    s.set("w", b"0123456789").unwrap();
    s.write_at("w", 2, b"AB").unwrap();
    assert_eq!(&*s.get("w").unwrap(), b"01AB456789");
    s.write_at("w", 0, b"X").unwrap();
    s.write_at("w", 9, b"Z").unwrap();
    assert_eq!(&*s.get("w").unwrap(), b"X1AB45678Z");
    // Zero-length writes at the end boundary are fine.
    s.write_at("w", 10, b"").unwrap();

    // Growing is append's job: any byte beyond the end is an error,
    // and a failed write_at must not change the object.
    assert!(s.write_at("w", 9, b"YY").is_err());
    assert!(s.write_at("w", 11, b"").is_err());
    assert_eq!(&*s.get("w").unwrap(), b"X1AB45678Z");
}

fn suite_erase(s: &dyn Storage) {
    s.set("e", b"bytes").unwrap();
    assert!(s.exists("e").unwrap());
    s.erase("e").unwrap();
    assert!(!s.exists("e").unwrap());
    assert!(matches!(s.get("e"), Err(CodecError::NoSuchKey { .. })));
    // Idempotent: erasing a missing key is Ok.
    s.erase("e").unwrap();
    s.erase("never-existed").unwrap();
}

fn suite_list(s: &dyn Storage) {
    assert_eq!(s.list().unwrap(), Vec::<String>::new());
    s.set("b", b"2").unwrap();
    s.set("a", b"1").unwrap();
    s.set("nested/deep/c", b"3").unwrap();
    assert_eq!(s.list().unwrap(), vec!["a", "b", "nested/deep/c"]);
    s.erase("b").unwrap();
    assert_eq!(s.list().unwrap(), vec!["a", "nested/deep/c"]);
}

fn suite_key_validation(s: &dyn Storage) {
    for bad in ["", "/a", "a/", "a//b", "..", "a/../b", ".", "a\0"] {
        assert!(s.set(bad, b"x").is_err(), "{bad:?}");
        assert!(s.get(bad).is_err(), "{bad:?}");
    }
    assert_eq!(s.list().unwrap(), Vec::<String>::new());
}

fn suite_concurrent_readers(s: Arc<dyn Storage>) {
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    s.set("shared", &payload).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let s = s.clone();
            let payload = payload.clone();
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    let off = (t * 37 + i * 13) % 4000;
                    let got = s
                        .get_range("shared", ByteRange::Bounded { offset: off, len: 96 })
                        .unwrap();
                    assert_eq!(got, &payload[off as usize..off as usize + 96]);
                }
            })
        })
        .collect();
    // A writer on a *different* key runs concurrently with the readers.
    for i in 0..50u64 {
        s.append("writer-log", &i.to_le_bytes()).unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(s.size("writer-log").unwrap(), 400);
}

/// Readers holding a `get` snapshot must keep their bytes across a
/// `set` replacing the object (snapshot isolation at the whole-object
/// level — what `MutableStore` readers build on).
fn suite_snapshot_stability(s: &dyn Storage) {
    s.set("snap", b"generation-1").unwrap();
    let held = s.get("snap").unwrap();
    s.set("snap", b"generation-2!").unwrap();
    assert_eq!(&*held, b"generation-1");
    assert_eq!(&*s.get("snap").unwrap(), b"generation-2!");
}

macro_rules! conformance {
    ($module:ident, $make:expr) => {
        mod $module {
            use super::*;

            #[test]
            fn roundtrip() {
                let f = $make;
                suite_roundtrip(&*f.storage);
            }

            #[test]
            fn missing_keys() {
                let f = $make;
                suite_missing_keys(&*f.storage);
            }

            #[test]
            fn range_reads() {
                let f = $make;
                suite_range_reads(&*f.storage);
            }

            #[test]
            fn append_ordering() {
                let f = $make;
                suite_append_ordering(&*f.storage);
            }

            #[test]
            fn write_at() {
                let f = $make;
                suite_write_at(&*f.storage);
            }

            #[test]
            fn erase() {
                let f = $make;
                suite_erase(&*f.storage);
            }

            #[test]
            fn list_sorted() {
                let f = $make;
                suite_list(&*f.storage);
            }

            #[test]
            fn key_validation() {
                let f = $make;
                suite_key_validation(&*f.storage);
            }

            #[test]
            fn concurrent_readers() {
                let f = $make;
                suite_concurrent_readers(f.storage.clone());
            }

            #[test]
            fn snapshot_stability() {
                let f = $make;
                suite_snapshot_stability(&*f.storage);
            }
        }
    };
}

conformance!(memory, memory_fixture());
conformance!(filesystem, filesystem_fixture());
conformance!(simulated_object, object_fixture());
conformance!(faulty_passthrough, faulty_passthrough_fixture());
conformance!(metered, metered_fixture());
conformance!(env_selected, env_fixture());

/// The simulated object store must bill the suite's traffic: the
/// conformance operations above all map to requests, so a quick pass
/// here pins the accounting to real numbers.
#[test]
fn object_sim_bills_the_contract() {
    let store = SimulatedObjectStorage::in_memory(ObjectCostModel::default());
    suite_roundtrip(&store);
    let s = store.stats();
    assert!(s.put_requests >= 3, "{s:?}");
    assert!(s.get_requests >= 3, "{s:?}");
    assert!(s.bytes_uploaded >= 18, "{s:?}");
    assert!(s.cost_usd > 0.0);
    assert!(s.simulated_seconds > 0.0);
}
