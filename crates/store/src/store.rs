//! [`ChunkedStore`]: write a field as independently compressed chunks,
//! read back all of it, one chunk, or any axis-aligned region.

use crate::grid::{copy_region, gather, ChunkGrid, Region};
use crate::manifest::{ChunkEntry, Manifest};
use eblcio_codec::header::Header;
use eblcio_codec::parallel::pool_for;
use eblcio_codec::{
    compress_view, decompress, CodecError, Compressor, CompressorId, ErrorBound, Result,
};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::{Element, NdArray, QualityReport, Shape};
use rayon::prelude::*;

/// Statistics of a partial read — how much work a region read actually
/// did, used to verify (and benchmark) that only intersecting chunks
/// pay decompression and I/O cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionReadStats {
    /// Chunks decompressed to satisfy the read.
    pub chunks_decoded: usize,
    /// Chunks in the whole store.
    pub chunks_total: usize,
    /// Compressed bytes touched (the intersecting chunks' payloads).
    pub compressed_bytes_read: u64,
}

/// A zero-copy reader over a chunked compressed array stream, plus the
/// associated `write` entry point that produces such streams.
///
/// The container splits an array into a regular chunk grid, compresses
/// every chunk independently with one codec at one error bound (ε
/// resolved once against the *global* value range, so per-chunk
/// streams honour the same contract as whole-array compression), and
/// prefixes a manifest indexing every chunk. See [`crate::manifest`]
/// for the byte layout.
#[derive(Clone, Debug)]
pub struct ChunkedStore<'a> {
    manifest: Manifest,
    grid: ChunkGrid,
    manifest_len: usize,
    payload: &'a [u8],
}

impl<'a> ChunkedStore<'a> {
    /// Compresses `data` into a chunked stream.
    ///
    /// Chunks are compressed in parallel on the shared rayon pool for
    /// `threads` workers. Chunks that are contiguous dimension-0 slabs
    /// are compressed from zero-copy borrowed views; interior chunks of
    /// multi-axis grids are gathered into a chunk-sized buffer first
    /// (unavoidable for non-contiguous regions of a row-major array).
    pub fn write<T: Element>(
        codec: &dyn Compressor,
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Vec<u8>> {
        assert!(threads >= 1, "thread count must be >= 1");
        let grid = ChunkGrid::new(data.shape(), chunk_shape);
        // Resolve ε once against the global range: chunk-local ranges
        // are narrower, so resolving per chunk would tighten the bound
        // inconsistently across the grid.
        let abs = bound.to_absolute(data.value_range())?;
        let bound = ErrorBound::Absolute(abs);

        let ids: Vec<usize> = (0..grid.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let streams: Vec<Result<Vec<u8>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let region = grid.chunk_region(i);
                    if grid.chunk_is_slab(i) {
                        let view = data.slab(region.origin()[0], region.extent()[0]);
                        compress_view(codec, view, bound)
                    } else {
                        let owned = gather(data, &region);
                        compress_view(codec, owned.view(), bound)
                    }
                })
                .collect()
        });

        // Index first (offsets/lengths are known once the compressions
        // finish), then append each chunk stream straight into the
        // output — no intermediate payload buffer, one copy total.
        let streams: Vec<Vec<u8>> = streams.into_iter().collect::<Result<_>>()?;
        let mut chunks = Vec::with_capacity(streams.len());
        let mut offset = 0u64;
        for s in &streams {
            chunks.push(ChunkEntry {
                offset,
                len: s.len() as u64,
            });
            offset += s.len() as u64;
        }
        let manifest = Manifest {
            codec: codec.id(),
            dtype: Header::dtype_of::<T>(),
            shape: data.shape(),
            chunk_shape: grid.chunk_shape(),
            abs_bound: abs,
            chunks,
        };
        let mut out = manifest.encode();
        out.reserve(offset as usize);
        for s in &streams {
            out.extend_from_slice(s);
        }
        Ok(out)
    }

    /// Opens a stream, parsing and validating the manifest without
    /// touching any chunk payload.
    pub fn open(stream: &'a [u8]) -> Result<Self> {
        let (manifest, payload_start) = Manifest::decode(stream)?;
        let grid = manifest.grid();
        Ok(Self {
            grid,
            manifest_len: payload_start,
            payload: &stream[payload_start..],
            manifest,
        })
    }

    /// The codec every chunk was compressed with.
    pub fn codec_id(&self) -> CompressorId {
        self.manifest.codec
    }

    /// Element type tag (0 = f32, 1 = f64).
    pub fn dtype(&self) -> u8 {
        self.manifest.dtype
    }

    /// Full array shape.
    pub fn shape(&self) -> Shape {
        self.manifest.shape
    }

    /// Interior chunk shape.
    pub fn chunk_shape(&self) -> Shape {
        self.manifest.chunk_shape
    }

    /// The absolute error bound every chunk honours.
    pub fn abs_bound(&self) -> f64 {
        self.manifest.abs_bound
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.manifest.chunks.len()
    }

    /// The chunk grid.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Compressed sizes of every chunk, in raster order (what a striped
    /// writer places across storage targets).
    pub fn chunk_lens(&self) -> Vec<u64> {
        self.manifest.chunks.iter().map(|c| c.len).collect()
    }

    /// Manifest bytes preceding the payload (metadata cost of a write).
    pub fn manifest_len(&self) -> usize {
        self.manifest_len
    }

    /// Borrows the compressed payload of chunk `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_payload(&self, i: usize) -> &'a [u8] {
        let e = self.manifest.chunks[i];
        &self.payload[e.offset as usize..(e.offset + e.len) as usize]
    }

    fn check_dtype<T: Element>(&self) -> Result<()> {
        if self.manifest.dtype == Header::dtype_of::<T>() {
            Ok(())
        } else {
            Err(CodecError::DtypeMismatch {
                expected: if self.manifest.dtype == 0 { "f32" } else { "f64" },
                got: T::NAME,
            })
        }
    }

    /// Decompresses chunk `i` alone.
    pub fn read_chunk<T: Element>(&self, i: usize) -> Result<NdArray<T>> {
        self.check_dtype::<T>()?;
        let codec = self.manifest.codec.instance();
        self.decode_chunk(codec.as_ref(), i)
    }

    fn decode_chunk<T: Element>(&self, codec: &dyn Compressor, i: usize) -> Result<NdArray<T>> {
        let arr = decompress::<T>(codec, self.chunk_payload(i))?;
        if arr.shape() != self.grid.chunk_region(i).shape() {
            return Err(CodecError::Corrupt { context: "store chunk shape" });
        }
        Ok(arr)
    }

    /// Decompresses the whole array, decoding chunks in parallel on the
    /// shared rayon pool for `threads` workers.
    pub fn read_full<T: Element>(&self, threads: usize) -> Result<NdArray<T>> {
        assert!(threads >= 1, "thread count must be >= 1");
        self.check_dtype::<T>()?;
        let codec = self.manifest.codec.instance();
        let ids: Vec<usize> = (0..self.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let parts: Vec<Result<NdArray<T>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| self.decode_chunk(codec.as_ref(), i))
                .collect()
        });
        let mut out = NdArray::<T>::zeros(self.manifest.shape);
        for (i, part) in parts.into_iter().enumerate() {
            let part = part?;
            let region = self.grid.chunk_region(i);
            let rank = region.rank();
            copy_region(
                part.as_slice(),
                part.shape(),
                &[0usize; MAX_RANK][..rank],
                out.as_mut_slice(),
                self.manifest.shape,
                region.origin(),
                region.extent(),
            );
        }
        Ok(out)
    }

    /// Decompresses exactly the chunks intersecting `region` and
    /// assembles the requested box, reporting how much work that took.
    ///
    /// # Panics
    /// Panics if the region does not fit inside the array shape.
    pub fn read_region_with_stats<T: Element>(
        &self,
        region: &Region,
    ) -> Result<(NdArray<T>, RegionReadStats)> {
        self.check_dtype::<T>()?;
        let codec = self.manifest.codec.instance();
        let hits = self.grid.chunks_intersecting(region);
        let mut out = NdArray::<T>::zeros(region.shape());
        let mut bytes = 0u64;
        for &i in &hits {
            let part = self.decode_chunk::<T>(codec.as_ref(), i)?;
            bytes += self.manifest.chunks[i].len;
            let chunk_region = self.grid.chunk_region(i);
            let inter = chunk_region
                .intersect(region)
                .expect("intersecting chunk must overlap the region");
            let rank = inter.rank();
            let mut src_origin = [0usize; MAX_RANK];
            let mut dst_origin = [0usize; MAX_RANK];
            for d in 0..rank {
                src_origin[d] = inter.origin()[d] - chunk_region.origin()[d];
                dst_origin[d] = inter.origin()[d] - region.origin()[d];
            }
            copy_region(
                part.as_slice(),
                part.shape(),
                &src_origin[..rank],
                out.as_mut_slice(),
                region.shape(),
                &dst_origin[..rank],
                inter.extent(),
            );
        }
        Ok((
            out,
            RegionReadStats {
                chunks_decoded: hits.len(),
                chunks_total: self.n_chunks(),
                compressed_bytes_read: bytes,
            },
        ))
    }

    /// Decompresses an axis-aligned region, touching only the chunks
    /// that intersect it.
    pub fn read_region<T: Element>(&self, region: &Region) -> Result<NdArray<T>> {
        self.read_region_with_stats(region).map(|(a, _)| a)
    }

    /// Per-chunk quality summary against the original array: one
    /// [`QualityReport`] per chunk in raster order, each computed over
    /// that chunk's samples and compressed size.
    pub fn chunk_quality<T: Element>(&self, original: &NdArray<T>) -> Result<Vec<QualityReport>> {
        self.check_dtype::<T>()?;
        if original.shape() != self.manifest.shape {
            return Err(CodecError::Corrupt { context: "store quality shape" });
        }
        let codec = self.manifest.codec.instance();
        let mut out = Vec::with_capacity(self.n_chunks());
        for i in 0..self.n_chunks() {
            let recon = self.decode_chunk::<T>(codec.as_ref(), i)?;
            let orig = gather(original, &self.grid.chunk_region(i));
            out.push(QualityReport::evaluate(
                &orig,
                &recon,
                self.manifest.chunks[i].len as usize,
            ));
        }
        Ok(out)
    }
}
