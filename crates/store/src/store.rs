//! [`ChunkedStore`]: write a field as independently compressed chunks —
//! with one codec chain, an explicit chain per chunk, or adaptive
//! per-chunk selection — and read back all of it, one chunk, or any
//! axis-aligned region.

use crate::grid::{copy_region, gather, scatter_chunk, ChunkGrid, Region};
use crate::manifest::{ChunkEntry, ChunkSlot, Manifest, ShardTable, MAX_CHAINS};
use crate::metrics::store_metrics;
use crate::shard::{build_shard, MAX_SLOTS};
use crate::storage::Storage;
use std::sync::Arc;
use eblcio_codec::estimate::estimate_cr;
use eblcio_codec::header::Header;
use eblcio_codec::parallel::pool_for;
use eblcio_codec::util::crc32;
use eblcio_codec::{
    compress, compress_view, decompress, decompress_region, ChainSpec, CodecError, Compressor,
    CompressorId, ErrorBound, Result,
};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::{Element, NdArray, QualityReport, Shape};
use eblcio_obs::{self as obs, Stopwatch};
use rayon::prelude::*;

/// Statistics of a partial read — how much work a region read actually
/// did, used to verify (and benchmark) that only intersecting chunks
/// pay decompression and I/O cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionReadStats {
    /// Chunks decompressed to satisfy the read.
    pub chunks_decoded: usize,
    /// Chunks in the whole store.
    pub chunks_total: usize,
    /// Compressed bytes touched (the intersecting chunks' payloads).
    pub compressed_bytes_read: u64,
    /// Intersecting chunks satisfied by a partial (sub-chunk) decode
    /// instead of a whole-chunk decode.
    pub partial_decodes: usize,
    /// Samples actually reconstructed by the decoders — the sum of
    /// decoded chunk (or sub-region) lengths, so a partial read shows
    /// measurably fewer samples than whole-chunk assembly would.
    pub samples_decoded: u64,
}

/// Rows sampled per chunk when the adaptive writer prices a candidate
/// chain (zPerf-style CR estimation, not a full compression).
const ADAPTIVE_SAMPLE_SLABS: usize = 3;
const ADAPTIVE_SAMPLE_ROWS: usize = 2;

/// A region read attempts a sub-chunk decode only when the
/// chunk∩region intersection is at most `1/PARTIAL_DECODE_DENOM` of
/// the chunk's samples: partial decode still pays block-granular
/// stream parsing, so near-whole-chunk requests decode the whole
/// chunk (one pass, no gather overhead) instead.
const PARTIAL_DECODE_DENOM: usize = 8;

/// A reader over a chunked compressed array stream, plus the
/// associated write entry points that produce such streams.
///
/// The container splits an array into a regular chunk grid, compresses
/// every chunk independently at one error bound (ε resolved once
/// against the *global* value range, so per-chunk streams honour the
/// same contract as whole-array compression), and prefixes a manifest
/// indexing every chunk. Since the chain refactor the manifest carries
/// a chain table and a per-chunk chain column, so one store can hold
/// mixed codecs: [`ChunkedStore::write`] uses one chain everywhere,
/// [`ChunkedStore::write_mixed`] takes an explicit chunk→chain
/// assignment, and [`ChunkedStore::write_adaptive`] picks the best
/// candidate per chunk from sampled CR estimates. See
/// [`crate::manifest`] for the byte layout.
///
/// The store *shares* its underlying bytes behind an `Arc`, so clones
/// and every decoded view are snapshot-isolated: once opened, a store's
/// bytes can never change under it, even while a
/// [`MutableStore`](crate::mutable::MutableStore) publishes newer
/// generations of the same array. [`ChunkedStore::open`] copies the
/// borrowed stream once; [`ChunkedStore::open_arc`] adopts an existing
/// allocation without copying.
#[derive(Clone, Debug)]
pub struct ChunkedStore {
    manifest: Manifest,
    grid: ChunkGrid,
    manifest_len: usize,
    bytes: Arc<[u8]>,
    /// Byte offset inside `bytes` that chunk offsets are relative to:
    /// the manifest's end for v1–v3 streams, 0 for v4 generations
    /// (whose offsets are absolute file offsets).
    payload_start: usize,
}

/// Assembles the finished stream from per-chunk streams + chain picks.
fn assemble<T: Element>(
    chains: Vec<ChainSpec>,
    picks: &[usize],
    streams: Vec<Vec<u8>>,
    shape: Shape,
    chunk_shape: Shape,
    abs: f64,
) -> Vec<u8> {
    // Keep only the chains that chunks actually reference, in first-use
    // order, so adaptive candidates that never win don't bloat the
    // manifest.
    let mut remap = vec![u32::MAX; chains.len()];
    let mut used: Vec<ChainSpec> = Vec::new();
    let mut chunks = Vec::with_capacity(streams.len());
    let mut offset = 0u64;
    for (i, s) in streams.iter().enumerate() {
        let pick = picks[i];
        if remap[pick] == u32::MAX {
            remap[pick] = used.len() as u32;
            used.push(chains[pick].clone());
        }
        chunks.push(ChunkEntry {
            chain: remap[pick],
            offset,
            len: s.len() as u64,
        });
        offset += s.len() as u64;
    }
    let manifest = Manifest {
        dtype: Header::dtype_of::<T>(),
        shape,
        chunk_shape,
        abs_bound: abs,
        chains: used,
        chunks,
        sharding: None,
        generation: None,
    };
    let mut out = manifest.encode();
    out.reserve(offset as usize);
    for s in &streams {
        out.extend_from_slice(s);
    }
    out
}

/// Assembles a *sharded* (v3) stream: consecutive raster-order chunks
/// are packed `chunks_per_shard` at a time into `EBSH` objects, and the
/// manifest maps each chunk to its (shard, slot).
fn assemble_sharded<T: Element>(
    chain: ChainSpec,
    streams: Vec<Vec<u8>>,
    shape: Shape,
    chunk_shape: Shape,
    abs: f64,
    chunks_per_shard: usize,
) -> Vec<u8> {
    let shards: Vec<Vec<u8>> = streams.chunks(chunks_per_shard).map(build_shard).collect();
    let chunks: Vec<ChunkEntry> = streams
        .iter()
        .map(|_| ChunkEntry { chain: 0, offset: 0, len: 0 })
        .collect();
    let chunk_slots: Vec<ChunkSlot> = (0..streams.len())
        .map(|i| ChunkSlot {
            shard: (i / chunks_per_shard) as u32,
            slot: (i % chunks_per_shard) as u32,
        })
        .collect();
    let manifest = Manifest {
        dtype: Header::dtype_of::<T>(),
        shape,
        chunk_shape,
        abs_bound: abs,
        chains: vec![chain],
        chunks,
        sharding: Some(ShardTable {
            shard_lens: shards.iter().map(|s| s.len() as u64).collect(),
            chunk_slots,
            index_lens: Vec::new(),
            chunk_crcs: Vec::new(),
        }),
        generation: None,
    };
    let mut out = manifest.encode();
    out.reserve(shards.iter().map(Vec::len).sum());
    for s in &shards {
        out.extend_from_slice(s);
    }
    out
}

impl ChunkedStore {
    /// Compresses `data` into a chunked stream with one codec chain.
    ///
    /// Chunks are compressed in parallel on the shared rayon pool for
    /// `threads` workers. Chunks that are contiguous dimension-0 slabs
    /// are compressed from zero-copy borrowed views; interior chunks of
    /// multi-axis grids are gathered into a chunk-sized buffer first
    /// (unavoidable for non-contiguous regions of a row-major array).
    pub fn write<T: Element>(
        codec: &dyn Compressor,
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Vec<u8>> {
        assert!(threads >= 1, "thread count must be >= 1");
        let grid = ChunkGrid::new(data.shape(), chunk_shape);
        // Resolve ε once against the global range: chunk-local ranges
        // are narrower, so resolving per chunk would tighten the bound
        // inconsistently across the grid.
        let abs = bound.to_absolute(data.value_range())?;
        let bound = ErrorBound::Absolute(abs);

        let ids: Vec<usize> = (0..grid.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let streams: Vec<Result<Vec<u8>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let region = grid.chunk_region(i);
                    if grid.chunk_is_slab(i) {
                        let view = data.slab(region.origin()[0], region.extent()[0]);
                        compress_view(codec, view, bound)
                    } else {
                        let owned = gather(data, &region);
                        compress_view(codec, owned.view(), bound)
                    }
                })
                .collect()
        });
        let streams: Vec<Vec<u8>> = streams.into_iter().collect::<Result<_>>()?;
        let picks = vec![0usize; streams.len()];
        Ok(assemble::<T>(
            vec![codec.spec()],
            &picks,
            streams,
            data.shape(),
            grid.chunk_shape(),
            abs,
        ))
    }

    /// Compresses `data` into a *sharded* (v3) stream: chunks are
    /// compressed exactly as [`ChunkedStore::write`] does, then packed
    /// `chunks_per_shard` at a time (raster order) into `EBSH` shard
    /// objects, each with an inner offset/length/CRC index.
    ///
    /// Sharding is the layout for chunk counts that would otherwise
    /// drown a parallel file system in objects: placement and manifest
    /// cost scale with the shard count while partial reads still
    /// address individual chunks through the inner indices. All read
    /// paths work identically on sharded and unsharded stores.
    pub fn write_sharded<T: Element>(
        codec: &dyn Compressor,
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        chunks_per_shard: usize,
        threads: usize,
    ) -> Result<Vec<u8>> {
        assert!(threads >= 1, "thread count must be >= 1");
        if chunks_per_shard == 0 || chunks_per_shard > MAX_SLOTS {
            return Err(CodecError::InvalidChain {
                reason: "chunks_per_shard must be between 1 and MAX_SLOTS",
            });
        }
        let grid = ChunkGrid::new(data.shape(), chunk_shape);
        let abs = bound.to_absolute(data.value_range())?;
        let bound = ErrorBound::Absolute(abs);

        let ids: Vec<usize> = (0..grid.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let streams: Vec<Result<Vec<u8>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let region = grid.chunk_region(i);
                    if grid.chunk_is_slab(i) {
                        let view = data.slab(region.origin()[0], region.extent()[0]);
                        compress_view(codec, view, bound)
                    } else {
                        let owned = gather(data, &region);
                        compress_view(codec, owned.view(), bound)
                    }
                })
                .collect()
        });
        let streams: Vec<Vec<u8>> = streams.into_iter().collect::<Result<_>>()?;
        Ok(assemble_sharded::<T>(
            codec.spec(),
            streams,
            data.shape(),
            grid.chunk_shape(),
            abs,
            chunks_per_shard,
        ))
    }

    /// Compresses `data` with an explicit chain per chunk: chunk `i`
    /// (raster order of the chunk grid) uses `chains[picks[i]]`.
    pub fn write_mixed<T: Element>(
        chains: &[ChainSpec],
        picks: &[usize],
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Vec<u8>> {
        assert!(threads >= 1, "thread count must be >= 1");
        let grid = ChunkGrid::new(data.shape(), chunk_shape);
        if chains.is_empty() || chains.len() > MAX_CHAINS {
            return Err(CodecError::InvalidChain {
                reason: "a store needs between 1 and MAX_CHAINS chains",
            });
        }
        if picks.len() != grid.n_chunks() {
            return Err(CodecError::InvalidChain {
                reason: "picks must assign exactly one chain per grid chunk",
            });
        }
        if picks.iter().any(|&p| p >= chains.len()) {
            return Err(CodecError::InvalidChain {
                reason: "pick index beyond the chain list",
            });
        }
        let instances: Vec<Box<dyn Compressor>> = chains
            .iter()
            .map(|s| s.build_boxed())
            .collect::<Result<_>>()?;
        let abs = bound.to_absolute(data.value_range())?;
        let bound = ErrorBound::Absolute(abs);

        let ids: Vec<usize> = (0..grid.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let streams: Vec<Result<Vec<u8>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let codec = instances[picks[i]].as_ref();
                    let region = grid.chunk_region(i);
                    if grid.chunk_is_slab(i) {
                        let view = data.slab(region.origin()[0], region.extent()[0]);
                        compress_view(codec, view, bound)
                    } else {
                        let owned = gather(data, &region);
                        compress_view(codec, owned.view(), bound)
                    }
                })
                .collect()
        });
        let streams: Vec<Vec<u8>> = streams.into_iter().collect::<Result<_>>()?;
        Ok(assemble::<T>(
            chains.to_vec(),
            picks,
            streams,
            data.shape(),
            grid.chunk_shape(),
            abs,
        ))
    }

    /// Adaptive mode: for every chunk, prices each candidate chain with
    /// a sampled CR estimate (a fraction of a full compression) and
    /// compresses the chunk with the winner. One store, mixed codecs,
    /// chosen by the data.
    ///
    /// Returns the stream; open it to see the per-chunk selection
    /// ([`ChunkedStore::chunk_chain`]).
    pub fn write_adaptive<T: Element>(
        candidates: &[ChainSpec],
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Vec<u8>> {
        assert!(threads >= 1, "thread count must be >= 1");
        let grid = ChunkGrid::new(data.shape(), chunk_shape);
        if candidates.is_empty() || candidates.len() > MAX_CHAINS {
            return Err(CodecError::InvalidChain {
                reason: "adaptive selection needs between 1 and MAX_CHAINS candidates",
            });
        }
        let instances: Vec<Box<dyn Compressor>> = candidates
            .iter()
            .map(|s| s.build_boxed())
            .collect::<Result<_>>()?;
        let abs = bound.to_absolute(data.value_range())?;
        let bound = ErrorBound::Absolute(abs);

        let ids: Vec<usize> = (0..grid.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let results: Vec<Result<(usize, Vec<u8>)>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let owned = gather(data, &grid.chunk_region(i));
                    let mut best = 0usize;
                    let mut best_cr = f64::NEG_INFINITY;
                    for (c, inst) in instances.iter().enumerate() {
                        let est = estimate_cr(
                            inst.as_ref(),
                            &owned,
                            bound,
                            ADAPTIVE_SAMPLE_SLABS,
                            ADAPTIVE_SAMPLE_ROWS,
                        )?;
                        if est.cr > best_cr {
                            best_cr = est.cr;
                            best = c;
                        }
                    }
                    let stream = compress(instances[best].as_ref(), &owned, bound)?;
                    Ok((best, stream))
                })
                .collect()
        });
        let mut picks = Vec::with_capacity(results.len());
        let mut streams = Vec::with_capacity(results.len());
        for r in results {
            let (pick, stream) = r?;
            picks.push(pick);
            streams.push(stream);
        }
        Ok(assemble::<T>(
            candidates.to_vec(),
            &picks,
            streams,
            data.shape(),
            grid.chunk_shape(),
            abs,
        ))
    }

    /// Opens a stream, parsing and validating the manifest without
    /// touching any chunk payload. The stream bytes are copied once
    /// into a shared allocation; use [`ChunkedStore::open_arc`] to
    /// adopt an existing `Arc` without copying.
    pub fn open(stream: &[u8]) -> Result<Self> {
        Self::open_arc(Arc::from(stream))
    }

    /// Opens the `EBCS` stream stored under `key` on a [`Storage`]
    /// backend. The whole object is fetched once (one GET on an object
    /// store); the shared allocation is adopted without further copies.
    pub fn open_from(storage: &dyn Storage, key: &str) -> Result<Self> {
        Self::open_arc(storage.get(key)?)
    }

    /// Opens a stream held in a shared allocation without copying.
    ///
    /// Rejects v4 generational manifests: their chunk offsets point
    /// into a surrounding mutable-store file, so they are only
    /// openable through [`MutableStore`](crate::mutable::MutableStore)
    /// (or [`ChunkedStore::open_generation`] with that file).
    pub fn open_arc(bytes: Arc<[u8]>) -> Result<Self> {
        let (manifest, payload_start) = Manifest::decode(&bytes)?;
        if manifest.generation.is_some() {
            return Err(CodecError::Corrupt {
                context: "generational manifest outside a mutable store",
            });
        }
        let grid = manifest.grid();
        Ok(Self {
            grid,
            manifest_len: payload_start,
            payload_start,
            bytes,
            manifest,
        })
    }

    /// Opens one generation of a mutable store: parses the v4 manifest
    /// at `manifest_offset..manifest_offset + manifest_len` of `file`
    /// and validates that every chunk object it references lies inside
    /// the object log *before* the manifest (publishes append objects,
    /// then their manifest, then flip the root — a manifest can only
    /// ever see bytes older than itself).
    ///
    /// `log_start` is where the object log begins (the superblock
    /// length for `EBMS` files); no chunk may reach below it.
    pub fn open_generation(
        file: Arc<[u8]>,
        log_start: usize,
        manifest_offset: usize,
        manifest_len: usize,
    ) -> Result<Self> {
        let end = manifest_offset
            .checked_add(manifest_len)
            .filter(|&e| e <= file.len() && manifest_offset >= log_start)
            .ok_or(CodecError::Corrupt { context: "store manifest reference" })?;
        let (manifest, consumed) = Manifest::decode(&file[manifest_offset..end])?;
        if manifest.generation.is_none() || consumed != manifest_len {
            return Err(CodecError::Corrupt { context: "store manifest reference" });
        }
        for c in &manifest.chunks {
            let lo = c.offset as usize;
            let hi = c.offset.checked_add(c.len).map(|e| e as usize);
            if lo < log_start || hi.is_none_or(|hi| hi > manifest_offset) {
                return Err(CodecError::Corrupt { context: "store chunk reference" });
            }
        }
        let grid = manifest.grid();
        Ok(Self {
            grid,
            manifest_len,
            payload_start: 0,
            bytes: file,
            manifest,
        })
    }

    /// The underlying shared bytes (the whole stream, or the whole
    /// mutable-store file for a v4 generation).
    pub fn bytes(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// This snapshot's generation id: 0 for static (v1–v3) streams,
    /// ≥ 1 for generations of a mutable store.
    pub fn generation(&self) -> u64 {
        self.manifest.generation.as_ref().map_or(0, |g| g.generation)
    }

    /// The generation that wrote chunk `i`'s object (0 for static
    /// stores). Chunks untouched since the store was created carry 1.
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_born_gen(&self, i: usize) -> u64 {
        assert!(i < self.n_chunks(), "chunk {i} out of {}", self.n_chunks());
        self.manifest.generation.as_ref().map_or(0, |g| g.born_gens[i])
    }

    /// Content fingerprint of chunk `i`: the writing generation folded
    /// with the object's payload CRC (0 for static stores, where
    /// content never changes). Within one store lineage,
    /// `(i, fingerprint)` uniquely identifies the chunk's bytes —
    /// within a generation a chunk is written at most once — and the
    /// CRC half makes an accidental match across *unrelated* stores of
    /// the same geometry vanishingly unlikely. Serving caches key on
    /// this pair, which is what makes a stale hit after a refresh
    /// impossible. Compaction copies objects byte-identically, so
    /// fingerprints (and warm caches) survive it.
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_fingerprint(&self, i: usize) -> u64 {
        assert!(i < self.n_chunks(), "chunk {i} out of {}", self.n_chunks());
        self.manifest.generation.as_ref().map_or(0, |g| {
            (g.born_gens[i] << 32) | u64::from(g.chunk_crcs[i])
        })
    }

    /// The single paper codec behind this store, when every chunk uses
    /// one preset chain (`None` for mixed or custom-chain stores).
    pub fn codec_id(&self) -> Option<CompressorId> {
        self.manifest.codec_id()
    }

    /// The manifest's chain table.
    pub fn chains(&self) -> &[ChainSpec] {
        &self.manifest.chains
    }

    /// The parsed manifest (what a writer clones to derive the next
    /// generation of a mutable store).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The chain chunk `i` was compressed with.
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_chain(&self, i: usize) -> &ChainSpec {
        &self.manifest.chains[self.manifest.chunks[i].chain as usize]
    }

    /// Element type tag (0 = f32, 1 = f64).
    pub fn dtype(&self) -> u8 {
        self.manifest.dtype
    }

    /// Full array shape.
    pub fn shape(&self) -> Shape {
        self.manifest.shape
    }

    /// Interior chunk shape.
    pub fn chunk_shape(&self) -> Shape {
        self.manifest.chunk_shape
    }

    /// The absolute error bound every chunk honours.
    pub fn abs_bound(&self) -> f64 {
        self.manifest.abs_bound
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.manifest.chunks.len()
    }

    /// The chunk grid.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Compressed sizes of every chunk, in raster order (what a striped
    /// writer places across storage targets).
    pub fn chunk_lens(&self) -> Vec<u64> {
        self.manifest.chunks.iter().map(|c| c.len).collect()
    }

    /// The shard table, when this is a sharded (v3) store.
    pub fn sharding(&self) -> Option<&ShardTable> {
        self.manifest.sharding.as_ref()
    }

    /// True when the payload is packed into `EBSH` shard objects.
    pub fn is_sharded(&self) -> bool {
        self.manifest.sharding.is_some()
    }

    /// Byte sizes of the objects a striped writer places across storage
    /// targets: the shard objects of a sharded store, the bare chunk
    /// payloads otherwise.
    pub fn object_lens(&self) -> Vec<u64> {
        match &self.manifest.sharding {
            Some(t) => t.shard_lens.clone(),
            None => self.chunk_lens(),
        }
    }

    /// Manifest bytes preceding the payload (metadata cost of a write).
    pub fn manifest_len(&self) -> usize {
        self.manifest_len
    }

    /// Borrows the compressed payload of chunk `i`, validating the
    /// index range instead of slicing blind — a manifest field beyond
    /// the mapped bytes surfaces as a typed error, never a panic. When
    /// the manifest records a payload CRC (sharded v3 slots, v4
    /// generational chunks) it is verified too, catching torn object
    /// bytes before the (far more expensive) chunk decode starts.
    pub fn chunk_payload(&self, i: usize) -> Result<&[u8]> {
        let e = self
            .manifest
            .chunks
            .get(i)
            .ok_or(CodecError::Corrupt { context: "store chunk reference" })?;
        let payload = &self.bytes[self.payload_start..];
        let bytes = e
            .offset
            .checked_add(e.len)
            .and_then(|end| payload.get(e.offset as usize..end as usize))
            .ok_or(CodecError::TruncatedStream { context: "store chunk payload" })?;
        if let Some(want) = self.manifest.chunk_crc(i) {
            if crc32(bytes) != want {
                return Err(CodecError::ChecksumMismatch);
            }
        }
        Ok(bytes)
    }

    fn check_dtype<T: Element>(&self) -> Result<()> {
        if self.manifest.dtype == Header::dtype_of::<T>() {
            Ok(())
        } else {
            Err(CodecError::DtypeMismatch {
                expected: if self.manifest.dtype == 0 { "f32" } else { "f64" },
                got: T::NAME,
            })
        }
    }

    /// Builds one decoder per chain-table entry (shared across chunks);
    /// index with [`ChunkedStore::chunk_chain_index`].
    pub fn decoders(&self) -> Result<Vec<Box<dyn Compressor>>> {
        self.manifest.chains.iter().map(|s| s.build_boxed()).collect()
    }

    /// Index into the chain table ([`ChunkedStore::chains`] /
    /// [`ChunkedStore::decoders`]) for chunk `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_chain_index(&self, i: usize) -> usize {
        self.manifest.chunks[i].chain as usize
    }

    /// Decompresses chunk `i` alone. An out-of-range index is a typed
    /// error, not a panic — serving layers pass client-supplied chunk
    /// ids straight through.
    pub fn read_chunk<T: Element>(&self, i: usize) -> Result<NdArray<T>> {
        self.check_dtype::<T>()?;
        if i >= self.n_chunks() {
            return Err(CodecError::Corrupt { context: "store chunk reference" });
        }
        let codec = self.chunk_chain(i).build_boxed()?;
        self.decode_chunk(codec.as_ref(), i)
    }

    /// Decodes one chunk with an already-built decoder (see
    /// [`ChunkedStore::decoders`]), so callers that decode many chunks —
    /// the read paths here and `eblcio_serve`'s cache-miss path — share
    /// one definition of "decode and shape-check a chunk" without
    /// rebuilding a decoder per chunk.
    pub fn decode_chunk<T: Element>(
        &self,
        codec: &dyn Compressor,
        i: usize,
    ) -> Result<NdArray<T>> {
        let arr = decompress::<T>(codec, self.chunk_payload(i)?)?;
        if arr.shape() != self.grid.chunk_region(i).shape() {
            return Err(CodecError::Corrupt { context: "store chunk shape" });
        }
        Ok(arr)
    }

    /// Attempts a sub-chunk decode of what `region` needs from chunk
    /// `i`: `Some((part, covered))` — the decoded chunk∩`region`
    /// intersection and the array region it covers — when that
    /// intersection is at most `1/8` of the chunk and the chunk's
    /// chain supports partial decode (SZx, ZFP), `None` otherwise
    /// (including when the chunk misses the region entirely). Callers
    /// fall back to [`ChunkedStore::decode_chunk`] on `None`; the
    /// store's own region reads and `eblcio_serve`'s miss path both
    /// route through here so the eligibility rule has one definition.
    pub fn decode_chunk_region<T: Element>(
        &self,
        codec: &dyn Compressor,
        i: usize,
        region: &Region,
    ) -> Result<Option<(NdArray<T>, Region)>> {
        let chunk_region = self.grid.chunk_region(i);
        let Some(inter) = chunk_region.intersect(region) else {
            return Ok(None);
        };
        if inter.len() * PARTIAL_DECODE_DENOM > chunk_region.len() {
            return Ok(None);
        }
        let rank = inter.rank();
        let mut origin = [0usize; MAX_RANK];
        for (d, o) in origin.iter_mut().enumerate().take(rank) {
            *o = inter.origin()[d] - chunk_region.origin()[d];
        }
        let Some(part) = decompress_region::<T>(
            codec,
            self.chunk_payload(i)?,
            &origin[..rank],
            inter.extent(),
        )?
        else {
            return Ok(None);
        };
        if part.shape() != inter.shape() {
            return Err(CodecError::Corrupt { context: "store chunk region shape" });
        }
        Ok(Some((part, inter)))
    }

    /// Decodes the part of chunk `i` that a region read needs: a
    /// sub-chunk decode when [`ChunkedStore::decode_chunk_region`]
    /// applies, otherwise the whole chunk. Returns the decoded part,
    /// the array region it covers, and whether the decode was partial.
    fn decode_chunk_for_region<T: Element>(
        &self,
        codec: &dyn Compressor,
        i: usize,
        region: &Region,
    ) -> Result<(NdArray<T>, Region, bool)> {
        if let Some((part, covered)) = self.decode_chunk_region(codec, i, region)? {
            return Ok((part, covered, true));
        }
        Ok((self.decode_chunk(codec, i)?, self.grid.chunk_region(i), false))
    }

    /// Decompresses the whole array, decoding chunks in parallel on the
    /// shared rayon pool for `threads` workers.
    pub fn read_full<T: Element>(&self, threads: usize) -> Result<NdArray<T>> {
        assert!(threads >= 1, "thread count must be >= 1");
        self.check_dtype::<T>()?;
        let decoders = self.decoders()?;
        let ids: Vec<usize> = (0..self.n_chunks()).collect();
        let pool = pool_for(threads)?;
        let parts: Vec<Result<NdArray<T>>> = pool.install(|| {
            ids.par_iter()
                .map(|&i| {
                    let codec = decoders[self.manifest.chunks[i].chain as usize].as_ref();
                    self.decode_chunk(codec, i)
                })
                .collect()
        });
        let mut out = NdArray::<T>::zeros(self.manifest.shape);
        for (i, part) in parts.into_iter().enumerate() {
            let part = part?;
            let region = self.grid.chunk_region(i);
            let rank = region.rank();
            copy_region(
                part.as_slice(),
                part.shape(),
                &[0usize; MAX_RANK][..rank],
                out.as_mut_slice(),
                self.manifest.shape,
                region.origin(),
                region.extent(),
            );
        }
        Ok(out)
    }

    /// Decompresses exactly the chunks intersecting `region` and
    /// assembles the requested box, reporting how much work that took.
    /// When a chunk's chain supports partial decode (SZx, ZFP) and the
    /// intersection is a small fraction of the chunk, only that
    /// sub-region is reconstructed — see
    /// [`RegionReadStats::partial_decodes`] and
    /// [`RegionReadStats::samples_decoded`].
    ///
    /// Intersecting chunks decode in parallel (like
    /// [`ChunkedStore::read_full`]) across the width installed on the
    /// shared rayon pool — callers wanting a specific width wrap the
    /// call in `pool_for(threads)?.install(..)`; outside any pool the
    /// machine's parallelism applies. The scatter into the output box
    /// stays serial: it is memcpy-bound and a fraction of decode cost.
    ///
    /// # Panics
    /// Panics if the region does not fit inside the array shape.
    pub fn read_region_with_stats<T: Element>(
        &self,
        region: &Region,
    ) -> Result<(NdArray<T>, RegionReadStats)> {
        let m = store_metrics();
        let sw = Stopwatch::start();
        let _span = obs::span_id_from(m.span_read_region, sw);
        self.check_dtype::<T>()?;
        let decoders = self.decoders()?;
        let hits = self.grid.chunks_intersecting(region);
        let parts: Vec<Result<(NdArray<T>, Region, bool)>> = hits
            .par_iter()
            .map(|&i| {
                let codec = decoders[self.manifest.chunks[i].chain as usize].as_ref();
                self.decode_chunk_for_region::<T>(codec, i, region)
            })
            .collect();
        let mut out = NdArray::<T>::zeros(region.shape());
        let mut stats = RegionReadStats {
            chunks_decoded: hits.len(),
            chunks_total: self.n_chunks(),
            ..RegionReadStats::default()
        };
        for (&i, part) in hits.iter().zip(parts) {
            let (part, part_region, partial) = part?;
            stats.compressed_bytes_read += self.manifest.chunks[i].len;
            stats.partial_decodes += usize::from(partial);
            stats.samples_decoded += part.len() as u64;
            scatter_chunk(&part, &part_region, region, &mut out);
        }
        m.read_region_ns.record(sw.elapsed_ns());
        Ok((out, stats))
    }

    /// Decompresses an axis-aligned region, touching only the chunks
    /// that intersect it.
    pub fn read_region<T: Element>(&self, region: &Region) -> Result<NdArray<T>> {
        self.read_region_with_stats(region).map(|(a, _)| a)
    }

    /// Per-chunk quality summary against the original array: one
    /// [`QualityReport`] per chunk in raster order, each computed over
    /// that chunk's samples and compressed size.
    pub fn chunk_quality<T: Element>(&self, original: &NdArray<T>) -> Result<Vec<QualityReport>> {
        self.check_dtype::<T>()?;
        if original.shape() != self.manifest.shape {
            return Err(CodecError::Corrupt { context: "store quality shape" });
        }
        let decoders = self.decoders()?;
        let mut out = Vec::with_capacity(self.n_chunks());
        for i in 0..self.n_chunks() {
            let codec = decoders[self.manifest.chunks[i].chain as usize].as_ref();
            let recon = self.decode_chunk::<T>(codec, i)?;
            let orig = gather(original, &self.grid.chunk_region(i));
            out.push(QualityReport::evaluate(
                &orig,
                &recon,
                self.manifest.chunks[i].len as usize,
            ));
        }
        Ok(out)
    }
}
