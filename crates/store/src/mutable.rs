//! [`MutableStore`]: copy-on-write chunk updates over an append-only
//! object log, published as atomically swapped manifest *generations*.
//!
//! A chunked store as written by [`ChunkedStore::write`] is immutable:
//! the manifest indexes a frozen payload. Production serving needs data
//! that changes — without ever breaking a reader that opened the
//! previous version. This module adds that write path with three
//! mechanisms, modelled on copy-on-write storage engines (LMDB's double
//! root, zarr checkpoints, log-structured stores):
//!
//! 1. **Copy-on-write objects.** A [`StoreWriter`] never overwrites a
//!    live chunk: updated chunks are re-compressed into *new* objects
//!    appended to the end of the file. Untouched chunks keep their old
//!    objects — the new generation's manifest simply points at them.
//! 2. **Generational manifests.** Every publish appends a v4 `EBCS`
//!    manifest (see [`crate::manifest`]) carrying a monotonically
//!    increasing generation id and a link to its parent manifest, so
//!    [`MutableStore::history`] can walk the lineage and
//!    [`MutableStore::open_at`] time-travels to any still-reachable
//!    generation.
//! 3. **Double-root superblock.** The file head holds two CRC-guarded
//!    root slots; a publish writes the new root into the *stale* slot
//!    only after the objects and manifest are fully appended. A crash
//!    or torn write at any byte of the publish leaves the previous
//!    root (and every byte it references) untouched, so the store
//!    reopens at the last durable generation — never a torn state.
//!
//! File layout (`EBMS`):
//!
//! ```text
//! "EBMS" | version=1
//! root slot A: generation u64 | manifest_offset u64 | manifest_len u64 | crc32
//! root slot B: (same layout)
//! object log: chunk objects and v4 manifests, append-only
//! ```
//!
//! The publish protocol is exposed as data ([`PublishOps`]: one append
//! at the old end-of-file, then one 28-byte root-slot overwrite) so a
//! real-file backend can replay it with `write`+`fsync`+`pwrite`, and
//! so fault-injection tests can cut it at every byte boundary.
//!
//! Dead objects (replaced chunks, superseded manifests) accumulate in
//! the log; [`MutableStore::compact`] rewrites the file down to the
//! current generation's live set, reclaiming the space at the cost of
//! severing time-travel history.
//!
//! **Error accumulation.** Updating a region re-compresses every chunk
//! it touches from that chunk's *decoded* samples. Samples inside the
//! updated region are freshly compressed from the caller's exact
//! values, so they honour the store's ε bound directly. Samples merely
//! carried along in a touched chunk were already within ε of their
//! original and drift by at most another ε per re-compression — k
//! updates of a chunk bound its carried samples by (k+1)·ε. Callers
//! that rewrite whole chunks ([`StoreWriter::stage_chunk`]) avoid the
//! drift entirely.

use crate::grid::{copy_region, Region};
use crate::manifest::{GenerationMeta, Manifest};
use crate::metrics::store_metrics;
use crate::storage::Storage;
use crate::store::ChunkedStore;
use eblcio_codec::header::Header;
use eblcio_codec::parallel::pool_for;
use eblcio_codec::util::crc32;
use eblcio_codec::{
    compress_view, decompress, CodecError, Compressor, ErrorBound, Result,
};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::{Element, NdArray, Shape};
use eblcio_obs::{self as obs, Timed};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Mutable store file magic bytes.
pub const MUTABLE_MAGIC: &[u8; 4] = b"EBMS";
/// Current mutable store file version.
pub const MUTABLE_VERSION: u8 = 1;
/// Encoded root slot length: three u64 fields plus their CRC32.
pub const SLOT_LEN: usize = 28;
/// Superblock length: magic, version, two root slots. The object log
/// starts here.
pub const SUPERBLOCK_LEN: usize = 5 + 2 * SLOT_LEN;

/// One decoded root slot: which manifest is the store's current root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RootSlot {
    generation: u64,
    manifest_offset: u64,
    manifest_len: u64,
}

impl RootSlot {
    fn encode(&self) -> [u8; SLOT_LEN] {
        let mut out = [0u8; SLOT_LEN];
        out[..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..16].copy_from_slice(&self.manifest_offset.to_le_bytes());
        out[16..24].copy_from_slice(&self.manifest_len.to_le_bytes());
        let crc = crc32(&out[..24]);
        out[24..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a slot, returning `None` for anything not a fully
    /// written root: CRC mismatch (torn write, never-written zeros) or
    /// the invalid generation 0.
    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != SLOT_LEN {
            return None;
        }
        // The length check above guarantees SLOT_LEN bytes, so indexing
        // is safe and the conversions need no fallible try_into.
        let le8 = |b: &[u8]| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let crc = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
        if crc32(&bytes[..24]) != crc {
            return None;
        }
        let slot = Self {
            generation: le8(&bytes[..8]),
            manifest_offset: le8(&bytes[8..16]),
            manifest_len: le8(&bytes[16..24]),
        };
        (slot.generation > 0).then_some(slot)
    }
}

fn slot_offset(which: usize) -> usize {
    5 + which * SLOT_LEN
}

/// Assembles a complete `EBMS` file image from scratch: superblock,
/// the chunk payloads packed as a contiguous object log (the
/// manifest's offsets, lengths, and CRCs are patched to match), the
/// encoded manifest, and the root written to slot A. `manifest` must
/// already carry the target generation's metadata (id, parent link,
/// born_gens); the shared path of [`MutableStore::import`] and
/// [`MutableStore::compact`].
fn assemble_file(mut manifest: Manifest, payloads: &[&[u8]]) -> Result<MutableStore> {
    let payload_bytes: usize = payloads.iter().map(|p| p.len()).sum();
    let mut file = Vec::with_capacity(SUPERBLOCK_LEN + payload_bytes + 256);
    file.extend_from_slice(MUTABLE_MAGIC);
    file.push(MUTABLE_VERSION);
    file.resize(SUPERBLOCK_LEN, 0);
    let generation;
    {
        let Some(meta) = manifest.generation.as_mut() else {
            return Err(CodecError::Internal { context: "assemble_file without generation metadata" });
        };
        meta.chunk_crcs = payloads.iter().map(|p| crc32(p)).collect();
        generation = meta.generation;
    }
    for (entry, payload) in manifest.chunks.iter_mut().zip(payloads) {
        entry.offset = file.len() as u64;
        entry.len = payload.len() as u64;
        file.extend_from_slice(payload);
    }
    let manifest_offset = file.len() as u64;
    let encoded = manifest.encode();
    file.extend_from_slice(&encoded);
    let root = RootSlot {
        generation,
        manifest_offset,
        manifest_len: encoded.len() as u64,
    };
    file[slot_offset(0)..slot_offset(0) + SLOT_LEN].copy_from_slice(&root.encode());
    MutableStore::open(file)
}

/// The two ordered writes of one publish, as data.
///
/// Applying a publish to a file is (1) append `append` at byte
/// `base_len` (which must be the current end of the file), then
/// (2) overwrite the [`SLOT_LEN`] bytes at `slot_offset` with `slot`.
/// The ordering is the crash-consistency argument: until the very last
/// slot byte lands, every byte the *previous* root references is
/// untouched, so interrupting or corrupting the publish anywhere
/// leaves the store reopenable at the previous generation.
#[derive(Clone, Debug)]
pub struct PublishOps {
    /// File length the append starts at (stale-publish guard).
    pub base_len: usize,
    /// New chunk objects followed by the new v4 manifest.
    pub append: Vec<u8>,
    /// Byte offset of the root slot being flipped.
    pub slot_offset: usize,
    /// The new root slot's [`SLOT_LEN`] bytes.
    pub slot: Vec<u8>,
    /// The generation this publish creates.
    pub generation: u64,
    /// Chunks rewritten by this publish.
    pub chunks_written: usize,
    /// Bytes of new chunk objects.
    pub object_bytes: u64,
    /// Bytes of the new manifest.
    pub manifest_bytes: u64,
    /// Bytes of now-dead objects this publish strands (the replaced
    /// chunks' old objects), reclaimable by [`MutableStore::compact`].
    pub replaced_bytes: u64,
}

/// Outcome of a published update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateStats {
    /// The generation the update created.
    pub generation: u64,
    /// Chunks rewritten (new objects appended).
    pub chunks_written: usize,
    /// Chunks in the store.
    pub chunks_total: usize,
    /// Bytes of new chunk objects appended.
    pub object_bytes: u64,
    /// Bytes of the new manifest appended.
    pub manifest_bytes: u64,
    /// Dead bytes stranded by this update.
    pub replaced_bytes: u64,
    /// File length after the publish.
    pub file_bytes: u64,
}

/// Outcome of a compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactStats {
    /// The generation the compaction created (history before it is
    /// severed).
    pub generation: u64,
    /// File length before.
    pub before_bytes: u64,
    /// File length after.
    pub after_bytes: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// One entry of [`MutableStore::history`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenerationSummary {
    /// Generation id.
    pub generation: u64,
    /// Parent generation id (0 for the lineage root).
    pub parent: u64,
    /// Absolute file offset of this generation's manifest.
    pub manifest_offset: u64,
    /// Byte length of this generation's manifest.
    pub manifest_len: u64,
    /// Chunks whose objects this generation wrote.
    pub chunks_written: usize,
    /// Total bytes of the chunk objects this generation references.
    pub live_bytes: u64,
}

/// A chunked compressed array that accepts copy-on-write updates.
///
/// The store owns an `EBMS` file image (see the module docs for the
/// layout). Reads hand out [`ChunkedStore`] snapshots that share the
/// file bytes behind an `Arc` — a snapshot is bit-stable forever, no
/// matter how many generations are published after it, because every
/// publish swaps in a fresh file image and never mutates a published
/// byte in place.
///
/// ```
/// use eblcio_codec::{CompressorId, ErrorBound};
/// use eblcio_data::{NdArray, Shape};
/// use eblcio_store::{MutableStore, Region};
///
/// let data = NdArray::<f32>::from_fn(Shape::d2(32, 32), |i| {
///     (i[0] as f32 * 0.1).sin() + (i[1] as f32 * 0.1).cos()
/// });
/// let codec = CompressorId::Szx.instance();
/// let mut store = MutableStore::create(
///     codec.as_ref(), &data, ErrorBound::Relative(1e-3), Shape::d2(16, 16), 2,
/// ).unwrap();
/// assert_eq!(store.generation(), 1);
///
/// // A reader opened now is pinned to generation 1…
/// let before = store.current().unwrap();
///
/// // …while an update publishes generation 2 (only the top-left chunk
/// // is rewritten; the other three objects are shared).
/// let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 7.0);
/// let stats = store
///     .update_region(&Region::new(&[0, 0], &[8, 8]), &patch, 2)
///     .unwrap();
/// assert_eq!((stats.generation, stats.chunks_written), (2, 1));
///
/// let after = store.current().unwrap();
/// assert_eq!(before.generation(), 1);
/// assert_eq!(after.generation(), 2);
/// let old = before.read_region::<f32>(&Region::new(&[0, 0], &[8, 8])).unwrap();
/// let new = after.read_region::<f32>(&Region::new(&[0, 0], &[8, 8])).unwrap();
/// assert_ne!(old.as_slice(), new.as_slice());
/// assert!(new.as_slice().iter().all(|&v| (v - 7.0).abs() <= 1e-3 * 80.0));
/// ```
#[derive(Clone, Debug)]
pub struct MutableStore {
    bytes: Arc<[u8]>,
    root: RootSlot,
    active_slot: usize,
    /// Where publishes are written through to, if anywhere.
    backing: Option<Backing>,
}

/// A [`Storage`] object holding the persistent copy of the file image.
#[derive(Clone, Debug)]
struct Backing {
    storage: Arc<dyn Storage>,
    key: String,
}

impl MutableStore {
    /// Creates a mutable store by compressing `data` exactly as
    /// [`ChunkedStore::write`] would, then wrapping the result as
    /// generation 1 of a fresh `EBMS` file.
    pub fn create<T: Element>(
        codec: &dyn Compressor,
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Self> {
        Self::import(&ChunkedStore::write(codec, data, bound, chunk_shape, threads)?)
    }

    /// Wraps an existing immutable `EBCS` stream (v1–v3, sharded or
    /// not) as generation 1 of a mutable store. Chunk payloads are
    /// copied into the object log one object per chunk; shard packing
    /// is flattened (mutable stores address chunks individually so
    /// copy-on-write replaces single chunks, not whole shards).
    pub fn import(stream: &[u8]) -> Result<Self> {
        let src = ChunkedStore::open(stream)?;
        let mut manifest = src.manifest().clone();
        manifest.sharding = None;
        manifest.generation = Some(GenerationMeta {
            generation: 1,
            parent: 0,
            parent_offset: 0,
            parent_len: 0,
            born_gens: vec![1; src.n_chunks()],
            chunk_crcs: Vec::new(), // filled by assemble_file
        });
        let payloads: Vec<&[u8]> = (0..src.n_chunks())
            .map(|i| src.chunk_payload(i))
            .collect::<Result<_>>()?;
        assemble_file(manifest, &payloads)
    }

    /// Opens (and fully validates) a mutable store file image. Picks
    /// the newest root slot whose pointed-to manifest parses cleanly;
    /// a torn root slot or a corrupted current manifest falls back to
    /// the other slot, so a crashed publish reopens at the previous
    /// generation instead of failing.
    pub fn open(bytes: Vec<u8>) -> Result<Self> {
        Self::open_arc(Arc::from(bytes))
    }

    /// [`MutableStore::open`] over an already shared allocation.
    pub fn open_arc(bytes: Arc<[u8]>) -> Result<Self> {
        if bytes.len() < SUPERBLOCK_LEN {
            return Err(CodecError::TruncatedStream { context: "mutable store superblock" });
        }
        if &bytes[..4] != MUTABLE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        if bytes[4] != MUTABLE_VERSION {
            return Err(CodecError::UnsupportedVersion(bytes[4]));
        }
        let mut candidates: Vec<(usize, RootSlot)> = (0..2)
            .filter_map(|w| {
                RootSlot::decode(&bytes[slot_offset(w)..slot_offset(w) + SLOT_LEN])
                    .map(|s| (w, s))
            })
            .collect();
        candidates.sort_by_key(|(_, s)| std::cmp::Reverse(s.generation));
        for (which, slot) in candidates {
            let store = ChunkedStore::open_generation(
                bytes.clone(),
                SUPERBLOCK_LEN,
                slot.manifest_offset as usize,
                slot.manifest_len as usize,
            );
            // The manifest must claim the generation the root promised;
            // anything else is a stale or misdirected pointer.
            if store.is_ok_and(|s| s.generation() == slot.generation) {
                return Ok(Self {
                    bytes,
                    root: slot,
                    active_slot: which,
                    backing: None,
                });
            }
        }
        Err(CodecError::Corrupt { context: "mutable store root" })
    }

    /// Opens the mutable store stored under `key` on `storage` and
    /// keeps the handle: every later publish ([`MutableStore::apply`])
    /// is written through to the backend with the crash-safe ordering
    /// (objects and manifest appended first, root slot flipped last),
    /// and [`MutableStore::compact`] atomically replaces the object.
    pub fn open_on(storage: Arc<dyn Storage>, key: &str) -> Result<Self> {
        let mut store = Self::open_arc(storage.get(key)?)?;
        store.backing = Some(Backing { storage, key: key.to_string() });
        Ok(store)
    }

    /// [`MutableStore::create`], persisted to `storage` under `key`.
    pub fn create_on<T: Element>(
        storage: Arc<dyn Storage>,
        key: &str,
        codec: &dyn Compressor,
        data: &NdArray<T>,
        bound: ErrorBound,
        chunk_shape: Shape,
        threads: usize,
    ) -> Result<Self> {
        Self::create(codec, data, bound, chunk_shape, threads)?.persist_on(storage, key)
    }

    /// [`MutableStore::import`], persisted to `storage` under `key`.
    pub fn import_on(storage: Arc<dyn Storage>, key: &str, stream: &[u8]) -> Result<Self> {
        Self::import(stream)?.persist_on(storage, key)
    }

    /// Writes the current file image to `storage` under `key` and
    /// attaches the backend, so later publishes write through.
    pub fn persist_on(mut self, storage: Arc<dyn Storage>, key: &str) -> Result<Self> {
        storage.set(key, &self.bytes)?;
        self.backing = Some(Backing { storage, key: key.to_string() });
        Ok(self)
    }

    /// The storage key publishes write through to, if any.
    pub fn backing_key(&self) -> Option<&str> {
        self.backing.as_ref().map(|b| b.key.as_str())
    }

    /// The complete file image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A shared handle on the file image (what readers snapshot).
    pub fn snapshot(&self) -> Arc<[u8]> {
        self.bytes.clone()
    }

    /// The current (highest published) generation id.
    pub fn generation(&self) -> u64 {
        self.root.generation
    }

    /// Opens the current generation for reading. The snapshot shares
    /// the file bytes; it stays bit-stable across later publishes.
    pub fn current(&self) -> Result<ChunkedStore> {
        ChunkedStore::open_generation(
            self.bytes.clone(),
            SUPERBLOCK_LEN,
            self.root.manifest_offset as usize,
            self.root.manifest_len as usize,
        )
    }

    /// Time-travel read: opens generation `generation` by walking the
    /// parent chain down from the current root. Generations older than
    /// the last [`MutableStore::compact`] are unreachable (compaction
    /// severs history). The chain is validated hop by hop — a parent
    /// whose manifest does not carry the promised generation id, or
    /// that drifts in shape or dtype, is a typed error.
    pub fn open_at(&self, generation: u64) -> Result<ChunkedStore> {
        if generation == 0 || generation > self.root.generation {
            return Err(CodecError::Corrupt { context: "unknown store generation" });
        }
        let mut store = self.current()?;
        loop {
            let meta = store
                .manifest()
                .generation
                .clone()
                .ok_or(CodecError::Corrupt { context: "store generation metadata" })?;
            if meta.generation == generation {
                return Ok(store);
            }
            if meta.parent == 0 {
                return Err(CodecError::Corrupt { context: "unknown store generation" });
            }
            let parent = ChunkedStore::open_generation(
                self.bytes.clone(),
                SUPERBLOCK_LEN,
                meta.parent_offset as usize,
                meta.parent_len as usize,
            )?;
            if parent.generation() != meta.parent
                || parent.shape() != store.shape()
                || parent.chunk_shape() != store.chunk_shape()
                || parent.dtype() != store.dtype()
            {
                return Err(CodecError::Corrupt { context: "store generation chain" });
            }
            store = parent;
        }
    }

    /// Walks the generation chain newest-first, one summary per
    /// reachable generation. The same hop validation as
    /// [`MutableStore::open_at`] applies, so a corrupted chain surfaces
    /// as an error rather than a truncated history.
    pub fn history(&self) -> Result<Vec<GenerationSummary>> {
        let mut out = Vec::new();
        let mut store = self.current()?;
        let mut offset = self.root.manifest_offset;
        let mut len = self.root.manifest_len;
        loop {
            let meta = store
                .manifest()
                .generation
                .clone()
                .ok_or(CodecError::Corrupt { context: "store generation metadata" })?;
            out.push(GenerationSummary {
                generation: meta.generation,
                parent: meta.parent,
                manifest_offset: offset,
                manifest_len: len,
                chunks_written: meta
                    .born_gens
                    .iter()
                    .filter(|&&b| b == meta.generation)
                    .count(),
                live_bytes: store.manifest().chunks.iter().map(|c| c.len).sum(),
            });
            if meta.parent == 0 {
                return Ok(out);
            }
            let parent = ChunkedStore::open_generation(
                self.bytes.clone(),
                SUPERBLOCK_LEN,
                meta.parent_offset as usize,
                meta.parent_len as usize,
            )?;
            if parent.generation() != meta.parent
                || parent.shape() != store.shape()
                || parent.chunk_shape() != store.chunk_shape()
                || parent.dtype() != store.dtype()
            {
                return Err(CodecError::Corrupt { context: "store generation chain" });
            }
            offset = meta.parent_offset;
            len = meta.parent_len;
            store = parent;
        }
    }

    /// Bytes a [`MutableStore::compact`] would reclaim right now: dead
    /// objects and superseded manifests beyond the current generation's
    /// live set.
    pub fn reclaimable_bytes(&self) -> Result<u64> {
        let cur = self.current()?;
        let live: u64 = cur.manifest().chunks.iter().map(|c| c.len).sum::<u64>()
            + self.root.manifest_len;
        Ok((self.bytes.len() as u64).saturating_sub(SUPERBLOCK_LEN as u64 + live))
    }

    /// Starts a copy-on-write write transaction against the current
    /// generation.
    pub fn writer(&self) -> Result<StoreWriter<'_>> {
        Ok(StoreWriter {
            base: self,
            store: self.current()?,
            staged: BTreeMap::new(),
        })
    }

    /// Applies a prepared publish: appends the staged objects and
    /// manifest, flips the stale root slot, and re-validates the whole
    /// file. Fails (leaving the store untouched) if the ops were
    /// prepared against a different file state than the current one.
    pub fn apply(&mut self, ops: PublishOps) -> Result<UpdateStats> {
        let m = store_metrics();
        let _span = obs::span_id(m.span_publish);
        let _t = Timed::new(&m.publish_ns);
        if ops.base_len != self.bytes.len() || ops.generation != self.root.generation + 1 {
            return Err(CodecError::Corrupt { context: "stale store publish" });
        }
        // PublishOps is replayable data from outside this process; a
        // slot write anywhere but the *stale* superblock slot is a
        // typed error, not a panic. Overwriting the active slot would
        // break the crash argument: a backend replaying this publish
        // that dies mid-pwrite would tear the only valid root.
        if ops.slot.len() != SLOT_LEN || ops.slot_offset != slot_offset(1 - self.active_slot) {
            return Err(CodecError::Corrupt { context: "store publish slot" });
        }
        let mut file = Vec::with_capacity(ops.base_len + ops.append.len());
        file.extend_from_slice(&self.bytes);
        file.extend_from_slice(&ops.append);
        file[ops.slot_offset..ops.slot_offset + SLOT_LEN].copy_from_slice(&ops.slot);
        let next = Self::open(file)?;
        if next.generation() != ops.generation {
            return Err(CodecError::Corrupt { context: "stale store publish" });
        }
        let chunks_total = next.current()?.n_chunks();
        let file_bytes = next.bytes.len() as u64;
        // Write through to the backend with the crash-safe ordering:
        // objects+manifest appended first, root slot flipped last. On
        // any backend error the in-memory store is left unchanged; the
        // backend object may be torn, but nothing it holds under the
        // surviving root changed, so reopening recovers the previous
        // generation (the fault-injection suite cuts this at every
        // byte to prove it).
        if let Some(backing) = &self.backing {
            if backing.storage.size(&backing.key)? != ops.base_len as u64 {
                return Err(CodecError::Corrupt { context: "stale store publish" });
            }
            backing.storage.append(&backing.key, &ops.append)?;
            backing
                .storage
                .write_at(&backing.key, ops.slot_offset as u64, &ops.slot)?;
        }
        let backing = self.backing.take();
        *self = next;
        self.backing = backing;
        Ok(UpdateStats {
            generation: ops.generation,
            chunks_written: ops.chunks_written,
            chunks_total,
            object_bytes: ops.object_bytes,
            manifest_bytes: ops.manifest_bytes,
            replaced_bytes: ops.replaced_bytes,
            file_bytes,
        })
    }

    /// Writes `data` (shaped as `region`) through re-compression with
    /// each touched chunk's codec chain at the store's absolute bound,
    /// and publishes the result as a new generation. Untouched chunks
    /// share their objects with the parent generation.
    pub fn update_region<T: Element>(
        &mut self,
        region: &Region,
        data: &NdArray<T>,
        threads: usize,
    ) -> Result<UpdateStats> {
        let mut w = self.writer()?;
        w.stage_region(region, data, threads)?;
        let ops = w.prepare()?;
        self.apply(ops)
    }

    /// Rewrites the file down to the current generation's live set:
    /// live chunk objects are copied contiguously (byte-identical, so
    /// content fingerprints — and serving caches keyed on them —
    /// survive), dead objects and superseded manifests are dropped, and
    /// a fresh rootless manifest is published as the next generation.
    /// Time-travel history before the compaction is severed.
    pub fn compact(&mut self) -> Result<CompactStats> {
        let m = store_metrics();
        let _span = obs::span_id(m.span_compact);
        let _t = Timed::new(&m.compact_ns);
        let cur = self.current()?;
        let before_bytes = self.bytes.len() as u64;
        let mut manifest = cur.manifest().clone();
        let generation = cur.generation() + 1;
        {
            let Some(meta) = manifest.generation.as_mut() else {
                return Err(CodecError::Corrupt { context: "store generation metadata" });
            };
            meta.generation = generation;
            meta.parent = 0;
            meta.parent_offset = 0;
            meta.parent_len = 0;
            // born_gens carry over (and assemble_file recomputes CRCs
            // from the byte-identical payloads), so every chunk keeps
            // its content fingerprint — warm serving caches survive.
        }
        let payloads: Vec<&[u8]> = (0..cur.n_chunks())
            .map(|i| cur.chunk_payload(i))
            .collect::<Result<_>>()?;
        let next = assemble_file(manifest, &payloads)?;
        let after_bytes = next.bytes.len() as u64;
        // A compaction is a whole-file rewrite, so the write-through is
        // one atomic `set` rather than the append+flip publish path.
        if let Some(backing) = &self.backing {
            backing.storage.set(&backing.key, &next.bytes)?;
        }
        let backing = self.backing.take();
        *self = next;
        self.backing = backing;
        Ok(CompactStats {
            generation,
            before_bytes,
            after_bytes,
            reclaimed_bytes: before_bytes.saturating_sub(after_bytes),
        })
    }
}

/// A copy-on-write write transaction: stage any number of chunk
/// rewrites, then [`StoreWriter::prepare`] the publish. Staging never
/// touches the store — a dropped writer leaves no trace, and the
/// prepared [`PublishOps`] only take effect through
/// [`MutableStore::apply`].
pub struct StoreWriter<'s> {
    base: &'s MutableStore,
    store: ChunkedStore,
    /// Chunk index → freshly compressed `EBLC` stream.
    staged: BTreeMap<usize, Vec<u8>>,
}

impl StoreWriter<'_> {
    /// The generation this transaction is based on.
    pub fn base_generation(&self) -> u64 {
        self.store.generation()
    }

    /// Number of chunks staged so far.
    pub fn staged_chunks(&self) -> usize {
        self.staged.len()
    }

    fn check_dtype<T: Element>(&self) -> Result<()> {
        if self.store.dtype() == Header::dtype_of::<T>() {
            Ok(())
        } else {
            Err(CodecError::DtypeMismatch {
                expected: if self.store.dtype() == 0 { "f32" } else { "f64" },
                got: T::NAME,
            })
        }
    }

    /// Stages a region write: every chunk intersecting `region` is
    /// decoded (from its staged version if this transaction already
    /// rewrote it, so staged writes to one chunk accumulate), overlaid
    /// with the matching box of `data`, and re-compressed with the
    /// chunk's own codec chain at the store's absolute bound, in
    /// parallel on the shared rayon pool. Returns how many chunks were
    /// (re-)staged.
    pub fn stage_region<T: Element>(
        &mut self,
        region: &Region,
        data: &NdArray<T>,
        threads: usize,
    ) -> Result<usize> {
        assert!(threads >= 1, "thread count must be >= 1");
        self.check_dtype::<T>()?;
        if !region.fits_in(self.store.shape()) {
            return Err(CodecError::Corrupt { context: "update region bounds" });
        }
        if data.shape() != region.shape() {
            return Err(CodecError::Corrupt { context: "update region shape" });
        }
        let bound = ErrorBound::Absolute(self.store.abs_bound());
        let decoders = self.store.decoders()?;
        let hits = self.store.grid().chunks_intersecting(region);
        let store = &self.store;
        let staged = &self.staged;
        let pool = pool_for(threads)?;
        let results: Vec<Result<(usize, Vec<u8>)>> = pool.install(|| {
            hits.par_iter()
                .map(|&i| {
                    let codec = decoders[store.chunk_chain_index(i)].as_ref();
                    let chunk_region = store.grid().chunk_region(i);
                    let mut chunk = match staged.get(&i) {
                        Some(stream) => {
                            let arr = decompress::<T>(codec, stream)?;
                            if arr.shape() != chunk_region.shape() {
                                return Err(CodecError::Corrupt { context: "store chunk shape" });
                            }
                            arr
                        }
                        None => store.decode_chunk::<T>(codec, i)?,
                    };
                    // `hits` came from chunks_intersecting(region), so
                    // the intersection exists; a miss is a workspace bug.
                    let Some(inter) = chunk_region.intersect(region) else {
                        return Err(CodecError::Internal { context: "intersecting chunk does not intersect" });
                    };
                    let rank = inter.rank();
                    let mut src_origin = [0usize; MAX_RANK];
                    let mut dst_origin = [0usize; MAX_RANK];
                    for d in 0..rank {
                        src_origin[d] = inter.origin()[d] - region.origin()[d];
                        dst_origin[d] = inter.origin()[d] - chunk_region.origin()[d];
                    }
                    copy_region(
                        data.as_slice(),
                        data.shape(),
                        &src_origin[..rank],
                        chunk.as_mut_slice(),
                        chunk_region.shape(),
                        &dst_origin[..rank],
                        inter.extent(),
                    );
                    let stream = compress_view(codec, chunk.view(), bound)?;
                    Ok((i, stream))
                })
                .collect()
        });
        let mut staged = 0usize;
        for r in results {
            let (i, stream) = r?;
            self.staged.insert(i, stream);
            staged += 1;
        }
        Ok(staged)
    }

    /// Stages a whole-chunk replacement: `data` (shaped exactly as
    /// chunk `i`'s region) is compressed with the chunk's chain at the
    /// store's bound, with no decode of the previous content — the
    /// drift-free way to rewrite full chunks.
    pub fn stage_chunk<T: Element>(&mut self, i: usize, data: &NdArray<T>) -> Result<()> {
        self.check_dtype::<T>()?;
        if i >= self.store.n_chunks() {
            return Err(CodecError::Corrupt { context: "store chunk reference" });
        }
        let chunk_region = self.store.grid().chunk_region(i);
        if data.shape() != chunk_region.shape() {
            return Err(CodecError::Corrupt { context: "update region shape" });
        }
        let codec = self.store.chunk_chain(i).build_boxed()?;
        let bound = ErrorBound::Absolute(self.store.abs_bound());
        let stream = compress_view(codec.as_ref(), data.view(), bound)?;
        self.staged.insert(i, stream);
        Ok(())
    }

    /// Builds the publish for everything staged: new objects and the
    /// next generation's manifest laid out as one append, plus the
    /// root-slot flip. The writer is consumed; nothing is written until
    /// [`MutableStore::apply`].
    pub fn prepare(self) -> Result<PublishOps> {
        let base_len = self.base.bytes.len();
        let mut manifest = self.store.manifest().clone();
        let parent = self.base.root;
        let generation = parent.generation + 1;
        let mut append = Vec::new();
        let mut replaced_bytes = 0u64;
        {
            let Some(meta) = manifest.generation.as_mut() else {
                return Err(CodecError::Corrupt { context: "store generation metadata" });
            };
            meta.parent = parent.generation;
            meta.parent_offset = parent.manifest_offset;
            meta.parent_len = parent.manifest_len;
            meta.generation = generation;
            for (&i, stream) in &self.staged {
                replaced_bytes += manifest.chunks[i].len;
                manifest.chunks[i].offset = (base_len + append.len()) as u64;
                manifest.chunks[i].len = stream.len() as u64;
                meta.born_gens[i] = generation;
                meta.chunk_crcs[i] = crc32(stream);
                append.extend_from_slice(stream);
            }
        }
        let object_bytes = append.len() as u64;
        let manifest_offset = (base_len + append.len()) as u64;
        let encoded = manifest.encode();
        append.extend_from_slice(&encoded);
        let slot = RootSlot {
            generation,
            manifest_offset,
            manifest_len: encoded.len() as u64,
        };
        Ok(PublishOps {
            base_len,
            append,
            slot_offset: slot_offset(1 - self.base.active_slot),
            slot: slot.encode().to_vec(),
            generation,
            chunks_written: self.staged.len(),
            object_bytes,
            manifest_bytes: encoded.len() as u64,
            replaced_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_codec::CompressorId;

    fn field(shape: Shape) -> NdArray<f32> {
        NdArray::from_fn(shape, |i| {
            (i[0] as f32 * 0.2).sin() * 20.0 + i.get(1).copied().unwrap_or(0) as f32 * 0.3
        })
    }

    fn small_store() -> MutableStore {
        let data = field(Shape::d2(20, 12));
        let codec = CompressorId::Szx.instance();
        MutableStore::create(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d2(8, 8),
            2,
        )
        .unwrap()
    }

    #[test]
    fn root_slot_roundtrip_and_torn_rejection() {
        let slot = RootSlot {
            generation: 7,
            manifest_offset: 1234,
            manifest_len: 99,
        };
        let enc = slot.encode();
        assert_eq!(RootSlot::decode(&enc), Some(slot));
        for i in 0..SLOT_LEN {
            let mut bad = enc;
            bad[i] ^= 0x20;
            assert_eq!(RootSlot::decode(&bad), None, "byte {i}");
        }
        assert_eq!(RootSlot::decode(&[0u8; SLOT_LEN]), None, "unwritten slot");
    }

    #[test]
    fn create_open_roundtrip() {
        let store = small_store();
        assert_eq!(store.generation(), 1);
        let reopened = MutableStore::open(store.as_bytes().to_vec()).unwrap();
        assert_eq!(reopened.generation(), 1);
        let a = store.current().unwrap().read_full::<f32>(1).unwrap();
        let b = reopened.current().unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn update_publishes_cow_generation() {
        let mut store = small_store();
        let before = store.current().unwrap();
        let before_full = before.read_full::<f32>(1).unwrap();

        let region = Region::new(&[0, 0], &[8, 8]);
        let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 3.5);
        let stats = store.update_region(&region, &patch, 2).unwrap();
        assert_eq!(stats.generation, 2);
        assert_eq!(stats.chunks_written, 1);
        assert!(stats.replaced_bytes > 0);

        // Old snapshot is bit-stable.
        let still = before.read_full::<f32>(1).unwrap();
        assert_eq!(still.as_slice(), before_full.as_slice());

        // New generation carries the patch within ε, and every
        // untouched chunk is byte-identical (shared object).
        let after = store.current().unwrap();
        assert_eq!(after.generation(), 2);
        let abs = after.abs_bound();
        let got = after.read_region::<f32>(&region).unwrap();
        assert!(got.as_slice().iter().all(|&v| (v - 3.5).abs() as f64 <= abs * 1.0000001));
        for i in 1..after.n_chunks() {
            assert_eq!(
                before.chunk_payload(i).unwrap(),
                after.chunk_payload(i).unwrap(),
                "chunk {i} must be shared"
            );
            assert_eq!(after.chunk_born_gen(i), 1);
            assert_eq!(
                after.chunk_fingerprint(i),
                before.chunk_fingerprint(i),
                "shared chunk {i} keeps its fingerprint"
            );
        }
        assert_eq!(after.chunk_born_gen(0), 2);
        assert_ne!(after.chunk_fingerprint(0), before.chunk_fingerprint(0));
    }

    #[test]
    fn history_and_time_travel() {
        let mut store = small_store();
        let gen1 = store.current().unwrap().read_full::<f32>(1).unwrap();
        let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| -1.0);
        store
            .update_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
            .unwrap();
        let gen2 = store.current().unwrap().read_full::<f32>(1).unwrap();
        store
            .update_region(&Region::new(&[10, 2], &[4, 4]), &patch, 1)
            .unwrap();

        let h = store.history().unwrap();
        assert_eq!(
            h.iter().map(|s| s.generation).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        assert_eq!(h[2].parent, 0);
        assert_eq!(h[0].chunks_written, 1);

        let back1 = store.open_at(1).unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(back1.as_slice(), gen1.as_slice());
        let back2 = store.open_at(2).unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(back2.as_slice(), gen2.as_slice());
        assert!(store.open_at(4).is_err());
        assert!(store.open_at(0).is_err());
    }

    #[test]
    fn compact_reclaims_and_preserves_bits_but_severs_history() {
        let mut store = small_store();
        let patch = NdArray::<f32>::from_fn(Shape::d2(8, 8), |_| 9.0);
        for _ in 0..4 {
            store
                .update_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
                .unwrap();
        }
        let full_before = store.current().unwrap().read_full::<f32>(1).unwrap();
        let fingerprints: Vec<u64> = {
            let c = store.current().unwrap();
            (0..c.n_chunks()).map(|i| c.chunk_fingerprint(i)).collect()
        };
        let reclaimable = store.reclaimable_bytes().unwrap();
        assert!(reclaimable > 0);

        let stats = store.compact().unwrap();
        assert_eq!(stats.generation, 6);
        assert!(stats.reclaimed_bytes > 0);
        assert!(stats.after_bytes < stats.before_bytes);
        assert_eq!(store.reclaimable_bytes().unwrap(), 0);

        let after = store.current().unwrap();
        let full_after = after.read_full::<f32>(1).unwrap();
        assert_eq!(full_after.as_slice(), full_before.as_slice());
        // Content fingerprints survive compaction (bytes are identical).
        for (i, &fp) in fingerprints.iter().enumerate() {
            assert_eq!(after.chunk_fingerprint(i), fp, "chunk {i}");
        }
        // History is severed.
        assert_eq!(store.history().unwrap().len(), 1);
        assert!(store.open_at(5).is_err());
    }

    #[test]
    fn publish_with_bogus_slot_target_is_typed_error() {
        let mut store = small_store();
        let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| 2.0);
        let mut w = store.writer().unwrap();
        w.stage_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
            .unwrap();
        let good = w.prepare().unwrap();
        // A replayed PublishOps with a slot write outside the
        // superblock must be rejected, not panic or scribble the log.
        let mut bad = good.clone();
        bad.slot_offset = store.as_bytes().len() + 1024;
        assert!(matches!(
            store.apply(bad),
            Err(CodecError::Corrupt { context: "store publish slot" })
        ));
        let mut bad = good.clone();
        bad.slot.pop();
        assert!(store.apply(bad).is_err());
        // The untampered ops still apply cleanly afterwards.
        store.apply(good).unwrap();
        assert_eq!(store.generation(), 2);
    }

    #[test]
    fn stale_publish_rejected() {
        let mut store = small_store();
        let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| 2.0);
        let mut w = store.writer().unwrap();
        w.stage_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
            .unwrap();
        let ops = w.prepare().unwrap();
        // A publish lands in between.
        store
            .update_region(&Region::new(&[0, 0], &[4, 4]), &patch, 1)
            .unwrap();
        assert!(matches!(
            store.apply(ops),
            Err(CodecError::Corrupt { context: "stale store publish" })
        ));
    }

    #[test]
    fn writer_argument_errors_are_typed() {
        let store = small_store();
        let mut w = store.writer().unwrap();
        let patch64 = NdArray::<f64>::from_fn(Shape::d2(4, 4), |_| 0.0);
        assert!(matches!(
            w.stage_region(&Region::new(&[0, 0], &[4, 4]), &patch64, 1),
            Err(CodecError::DtypeMismatch { .. })
        ));
        let patch = NdArray::<f32>::from_fn(Shape::d2(4, 4), |_| 0.0);
        assert!(w
            .stage_region(&Region::new(&[18, 10], &[4, 4]), &patch, 1)
            .is_err());
        assert!(w
            .stage_region(&Region::new(&[0, 0], &[8, 8]), &patch, 1)
            .is_err());
        assert!(w.stage_chunk(99, &patch).is_err());
        assert_eq!(w.staged_chunks(), 0);
    }

    #[test]
    fn repeated_staging_of_one_chunk_accumulates() {
        let mut store = small_store();
        let mut w = store.writer().unwrap();
        let a = NdArray::<f32>::from_fn(Shape::d2(2, 2), |_| 5.0);
        let b = NdArray::<f32>::from_fn(Shape::d2(2, 2), |_| -5.0);
        w.stage_region(&Region::new(&[0, 0], &[2, 2]), &a, 1).unwrap();
        w.stage_region(&Region::new(&[4, 4], &[2, 2]), &b, 1).unwrap();
        assert_eq!(w.staged_chunks(), 1);
        let ops = w.prepare().unwrap();
        store.apply(ops).unwrap();
        let cur = store.current().unwrap();
        let abs = cur.abs_bound() * 1.0000001;
        let got_a = cur.read_region::<f32>(&Region::new(&[0, 0], &[2, 2])).unwrap();
        let got_b = cur.read_region::<f32>(&Region::new(&[4, 4], &[2, 2])).unwrap();
        // Both disjoint sub-writes of the same chunk survived. The
        // first patch rode through the second staging's re-compression,
        // so it carries up to one extra ε of drift; the second is fresh
        // and holds ε exactly.
        assert!(got_a.as_slice().iter().all(|&v| (v - 5.0).abs() as f64 <= 2.0 * abs));
        assert!(got_b.as_slice().iter().all(|&v| (v + 5.0).abs() as f64 <= abs));
    }

    #[test]
    fn import_sharded_flattens_but_preserves_data() {
        let data = field(Shape::d2(32, 16));
        let codec = CompressorId::Sz3.instance();
        let stream = ChunkedStore::write_sharded(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d2(8, 8),
            3,
            2,
        )
        .unwrap();
        let src = ChunkedStore::open(&stream).unwrap();
        let want = src.read_full::<f32>(1).unwrap();
        let store = MutableStore::import(&stream).unwrap();
        let got = store.current().unwrap().read_full::<f32>(1).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        assert!(store.current().unwrap().sharding().is_none());
    }

    #[test]
    fn non_ebms_bytes_rejected() {
        assert!(matches!(
            MutableStore::open(b"EBCSnope".to_vec()),
            Err(CodecError::TruncatedStream { .. })
        ));
        let mut bytes = small_store().as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            MutableStore::open(bytes),
            Err(CodecError::BadMagic)
        ));
        let mut bytes = small_store().as_bytes().to_vec();
        bytes[4] = 9;
        assert!(matches!(
            MutableStore::open(bytes),
            Err(CodecError::UnsupportedVersion(9))
        ));
    }
}
