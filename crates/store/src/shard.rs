//! The `EBSH` shard object: many compressed chunks packed into one
//! storage object behind an inner index.
//!
//! A million-chunk store written one-object-per-chunk is a metadata
//! bomb: every chunk pays an object create, a manifest entry, and a
//! placement decision. Sharding (zarrs' `sharding_indexed` codec is the
//! exemplar) packs a fixed number of consecutive raster-order chunks
//! into one object with a small inner index, so the parallel file
//! system sees a few large objects while readers can still address —
//! and CRC-verify — each chunk's byte range individually:
//!
//! ```text
//! "EBSH" | version=1 | n_slots varint
//! slots: n_slots × (offset varint, length varint, payload crc32 u32)
//! index crc32 u32 | slot payloads…
//! ```
//!
//! Slot offsets are relative to the payload start (the byte after the
//! index CRC) and must be contiguous in slot order. The index CRC
//! covers every byte before it, so a flipped index bit is caught before
//! any slot range is trusted; each slot additionally records the CRC of
//! its payload bytes, so a torn or misplaced slot is caught before the
//! (more expensive) chunk decode even starts.

use eblcio_codec::framing;
use eblcio_codec::util::{crc32, put_varint, ByteReader};
use eblcio_codec::{CodecError, Result};

/// Shard object magic bytes.
pub const SHARD_MAGIC: &[u8; 4] = b"EBSH";
/// Current shard layout version.
pub const SHARD_VERSION: u8 = 1;
/// Cap on slots per shard (sanity bound for corrupt indices).
pub const MAX_SLOTS: usize = 1 << 20;

/// One entry of a shard's inner index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotEntry {
    /// Byte offset from the shard's payload start.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 of the slot's payload bytes.
    pub crc: u32,
}

/// A parsed shard: the inner index plus where the payload begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardIndex {
    /// Per-slot offset/length/CRC entries, in slot order.
    pub slots: Vec<SlotEntry>,
    /// Bytes of index (magic through index CRC) before the payload.
    pub index_len: usize,
}

impl ShardIndex {
    /// Total payload bytes behind the index.
    pub fn payload_len(&self) -> u64 {
        self.slots.iter().map(|s| s.len).sum()
    }

    /// Parses and validates the inner index at the head of `shard`,
    /// checking that the slot ranges exactly tile the remaining bytes.
    pub fn parse(shard: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(shard);
        framing::expect_magic(&mut r, SHARD_MAGIC)?;
        let version = r.u8("shard version")?;
        if version != SHARD_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let n_slots = r.varint("shard slot count")? as usize;
        // Each slot needs at least six index bytes ahead of us plus one
        // payload byte; a count beyond that cannot be valid and must
        // not size an allocation.
        if n_slots == 0 || n_slots > MAX_SLOTS || n_slots > r.remaining() / 6 {
            return Err(CodecError::Corrupt { context: "shard slot count" });
        }
        let mut slots = Vec::with_capacity(n_slots);
        let mut next = 0u64;
        for _ in 0..n_slots {
            let offset = r.varint("shard slot offset")?;
            let len = r.varint("shard slot length")?;
            let crc = r.u32("shard slot crc")?;
            if offset != next || len == 0 {
                return Err(CodecError::Corrupt { context: "shard slot index" });
            }
            next = offset
                .checked_add(len)
                .ok_or(CodecError::Corrupt { context: "shard slot index" })?;
            slots.push(SlotEntry { offset, len, crc });
        }
        framing::check_crc_trailer(&mut r, shard)?;
        let index_len = r.position();
        if shard.len() - index_len != next as usize {
            return Err(CodecError::TruncatedStream { context: "shard payload" });
        }
        Ok(Self { slots, index_len })
    }

    /// Borrows slot `i`'s payload bytes out of the shard object this
    /// index was parsed from, verifying the recorded payload CRC.
    pub fn slot<'a>(&self, shard: &'a [u8], i: usize) -> Result<&'a [u8]> {
        let e = self
            .slots
            .get(i)
            .ok_or(CodecError::Corrupt { context: "shard slot reference" })?;
        let start = self.index_len + e.offset as usize;
        let bytes = shard
            .get(start..start + e.len as usize)
            .ok_or(CodecError::TruncatedStream { context: "shard slot" })?;
        if crc32(bytes) != e.crc {
            return Err(CodecError::ChecksumMismatch);
        }
        Ok(bytes)
    }
}

/// Packs slot payloads into one `EBSH` shard object.
pub fn build_shard(slot_payloads: &[Vec<u8>]) -> Vec<u8> {
    assert!(
        !slot_payloads.is_empty() && slot_payloads.len() <= MAX_SLOTS,
        "a shard holds 1..={MAX_SLOTS} slots"
    );
    let payload: usize = slot_payloads.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(16 + slot_payloads.len() * 10 + payload);
    out.extend_from_slice(SHARD_MAGIC);
    out.push(SHARD_VERSION);
    put_varint(&mut out, slot_payloads.len() as u64);
    let mut offset = 0u64;
    for s in slot_payloads {
        put_varint(&mut out, offset);
        put_varint(&mut out, s.len() as u64);
        out.extend_from_slice(&crc32(s).to_le_bytes());
        offset += s.len() as u64;
    }
    framing::put_crc_trailer(&mut out);
    for s in slot_payloads {
        out.extend_from_slice(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads() -> Vec<Vec<u8>> {
        vec![vec![1, 2, 3], vec![4], vec![5, 6, 7, 8, 9], vec![10, 11]]
    }

    #[test]
    fn roundtrip() {
        let p = payloads();
        let shard = build_shard(&p);
        let idx = ShardIndex::parse(&shard).unwrap();
        assert_eq!(idx.slots.len(), p.len());
        assert_eq!(idx.payload_len() as usize, p.iter().map(Vec::len).sum::<usize>());
        for (i, want) in p.iter().enumerate() {
            assert_eq!(idx.slot(&shard, i).unwrap(), want.as_slice());
        }
    }

    #[test]
    fn out_of_range_slot_is_typed_error() {
        let shard = build_shard(&payloads());
        let idx = ShardIndex::parse(&shard).unwrap();
        assert!(matches!(
            idx.slot(&shard, 99),
            Err(CodecError::Corrupt { context: "shard slot reference" })
        ));
    }

    #[test]
    fn flipped_payload_bit_caught_by_slot_crc() {
        let mut shard = build_shard(&payloads());
        let idx = ShardIndex::parse(&shard).unwrap();
        let n = shard.len();
        shard[n - 1] ^= 0x40; // last byte of the last slot
        assert_eq!(idx.slot(&shard, 3), Err(CodecError::ChecksumMismatch));
        // Earlier slots are untouched and still verify.
        assert!(idx.slot(&shard, 0).is_ok());
    }

    #[test]
    fn flipped_index_bit_caught_by_index_crc() {
        let shard = build_shard(&payloads());
        let idx = ShardIndex::parse(&shard).unwrap();
        for i in 5..idx.index_len {
            let mut bad = shard.clone();
            bad[i] ^= 0x01;
            assert!(ShardIndex::parse(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let shard = build_shard(&payloads());
        for cut in 0..shard.len() {
            assert!(ShardIndex::parse(&shard[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn huge_fake_slot_count_returns_err_without_allocating() {
        let mut s = Vec::new();
        s.extend_from_slice(SHARD_MAGIC);
        s.push(SHARD_VERSION);
        put_varint(&mut s, 1u64 << 40);
        framing::put_crc_trailer(&mut s);
        assert!(matches!(
            ShardIndex::parse(&s),
            Err(CodecError::Corrupt { context: "shard slot count" })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut shard = build_shard(&payloads());
        shard[4] = 9;
        assert!(matches!(
            ShardIndex::parse(&shard),
            Err(CodecError::UnsupportedVersion(9))
        ));
    }
}
