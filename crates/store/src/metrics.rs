//! Process-global telemetry handles for the store layer.
//!
//! Stores are value types opened and dropped freely (a reader may hold
//! dozens of generation snapshots at once), so unlike the serve layer —
//! where one long-lived `ArrayReader` owns a private registry — store
//! timings aggregate into the process registry ([`eblcio_obs::global`])
//! under the `eblcio_store_*` names. Handles are resolved once and
//! cached in a `OnceLock`, so the per-call cost on the read path is one
//! relaxed atomic add into a histogram bucket.

use eblcio_obs::{self as obs, Histogram, NameId};
use std::sync::{Arc, OnceLock};

pub(crate) struct StoreMetrics {
    /// Wall time of [`crate::ChunkedStore::read_region_with_stats`]
    /// (decode fan-out + scatter), per call.
    pub read_region_ns: Arc<Histogram>,
    /// Wall time of [`crate::MutableStore::apply`] — a generation
    /// publish: append, root flip, re-validate, backend write-through.
    pub publish_ns: Arc<Histogram>,
    /// Wall time of [`crate::MutableStore::compact`] — the whole-file
    /// rewrite down to the live set.
    pub compact_ns: Arc<Histogram>,
    pub span_read_region: NameId,
    pub span_publish: NameId,
    pub span_compact: NameId,
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = obs::global();
        StoreMetrics {
            read_region_ns: g.histogram("eblcio_store_read_region_ns"),
            publish_ns: g.histogram("eblcio_store_publish_ns"),
            compact_ns: g.histogram("eblcio_store_compact_ns"),
            span_read_region: obs::intern("store.read_region"),
            span_publish: obs::intern("store.publish"),
            span_compact: obs::intern("store.compact"),
        }
    })
}
