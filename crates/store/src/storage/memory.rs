//! [`MemoryStorage`]: the in-process reference backend.

use super::{validate_key, ByteRange, Storage};
use eblcio_codec::{CodecError, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Objects in a mutex-guarded map. Every object is an `Arc<[u8]>`, so
/// `get` is a reference-count bump and a `set` replacing an object a
/// reader still holds never invalidates the reader's bytes — the same
/// snapshot-isolation property the mutable store builds on.
#[derive(Debug, Default)]
pub struct MemoryStorage {
    objects: Mutex<BTreeMap<String, Arc<[u8]>>>,
}

impl MemoryStorage {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all stored objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.lock().values().map(|o| o.len() as u64).sum()
    }

    fn object(&self, key: &str) -> Result<Arc<[u8]>> {
        validate_key(key)?;
        self.objects
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| CodecError::NoSuchKey { key: key.to_string() })
    }
}

impl Storage for MemoryStorage {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        self.object(key)
    }

    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>> {
        let obj = self.object(key)?;
        let r = range.resolve(obj.len() as u64)?;
        Ok(obj[r].to_vec())
    }

    fn set(&self, key: &str, bytes: &[u8]) -> Result<()> {
        validate_key(key)?;
        self.objects.lock().insert(key.to_string(), Arc::from(bytes));
        Ok(())
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        validate_key(key)?;
        let mut map = self.objects.lock();
        let mut obj: Vec<u8> = map.get(key).map(|o| o.to_vec()).unwrap_or_default();
        obj.extend_from_slice(bytes);
        let len = obj.len() as u64;
        map.insert(key.to_string(), Arc::from(obj));
        Ok(len)
    }

    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        validate_key(key)?;
        let mut map = self.objects.lock();
        let obj = map
            .get(key)
            .ok_or_else(|| CodecError::NoSuchKey { key: key.to_string() })?;
        let r = ByteRange::Bounded { offset, len: bytes.len() as u64 }
            .resolve(obj.len() as u64)?;
        let mut patched = obj.to_vec();
        patched[r].copy_from_slice(bytes);
        map.insert(key.to_string(), Arc::from(patched));
        Ok(())
    }

    fn size(&self, key: &str) -> Result<u64> {
        Ok(self.object(key)?.len() as u64)
    }

    fn erase(&self, key: &str) -> Result<()> {
        validate_key(key)?;
        self.objects.lock().remove(key);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.objects.lock().keys().cloned().collect())
    }
}
