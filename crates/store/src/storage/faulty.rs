//! [`FaultyStorage`]: deterministic fault injection for any backend.
//!
//! The mutable store's crash-consistency argument (PR 5) was proved by
//! slicing a publish byte-for-byte against a raw buffer. With I/O now
//! routed through [`Storage`], the same argument must hold against the
//! *backend* interface: a write that dies after `k` bytes — on any
//! backend — must leave the previous generation openable. This wrapper
//! makes that failure reproducible: it forwards every operation to an
//! inner backend until a configured budget runs out, then applies the
//! surviving prefix (a torn write) and returns a typed error.

use super::{ByteRange, Storage};
use eblcio_codec::{CodecError, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// What to inject, and when. The default plan injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Total bytes writes may persist before failing. A `set`, `append`
    /// or `write_at` that would exceed the remainder persists only the
    /// prefix that fits (a torn write) and returns an error; once the
    /// budget is exhausted every write fails without persisting.
    pub write_byte_budget: Option<u64>,
    /// Total operations (reads and writes alike) allowed before every
    /// call fails outright.
    pub op_budget: Option<u64>,
    /// Fail all reads (`get`, `get_range`, `size`, `exists`, `list`).
    pub fail_reads: bool,
    /// Truncate `get`/`get_range` results to at most this many bytes
    /// (a short read); `None` disables truncation.
    pub short_read_limit: Option<u64>,
}

impl FaultPlan {
    /// Injects nothing — the passthrough plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Writes persist at most `bytes` further bytes, then fail.
    pub fn torn_after_bytes(bytes: u64) -> Self {
        Self { write_byte_budget: Some(bytes), ..Self::default() }
    }

    /// All operations fail after `ops` more calls.
    pub fn dies_after_ops(ops: u64) -> Self {
        Self { op_budget: Some(ops), ..Self::default() }
    }

    /// All reads fail immediately.
    pub fn failing_reads() -> Self {
        Self { fail_reads: true, ..Self::default() }
    }

    /// Reads return at most `limit` bytes.
    pub fn short_reads(limit: u64) -> Self {
        Self { short_read_limit: Some(limit), ..Self::default() }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    ops_done: u64,
    write_bytes_done: u64,
}

/// The error every injected fault surfaces as.
fn injected(op: &'static str) -> CodecError {
    CodecError::StorageIo { op, detail: "injected fault".to_string() }
}

/// A decorator that forwards to an inner backend while injecting
/// failures according to a [`FaultPlan`]. The plan can be swapped at
/// any time with [`FaultyStorage::set_plan`]; with the default plan the
/// wrapper is a pure passthrough (and is run through the conformance
/// suite as such).
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    state: Mutex<FaultState>,
}

impl FaultyStorage {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: Arc<dyn Storage>) -> Self {
        Self { inner, state: Mutex::new(FaultState::default()) }
    }

    /// Arms `plan` and resets the operation and byte counters.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.state.lock() = FaultState { plan, ..FaultState::default() }
    }

    /// Operations attempted since the plan was last armed.
    pub fn ops_done(&self) -> u64 {
        self.state.lock().ops_done
    }

    /// The backend being wrapped — read through this to observe what
    /// actually persisted, bypassing read faults.
    pub fn inner(&self) -> &Arc<dyn Storage> {
        &self.inner
    }

    /// Charges one operation; `Err` when the op budget is exhausted.
    fn charge_op(&self, op: &'static str) -> Result<()> {
        let mut s = self.state.lock();
        s.ops_done += 1;
        match s.plan.op_budget {
            Some(budget) if s.ops_done > budget => Err(injected(op)),
            _ => Ok(()),
        }
    }

    /// Charges a read; `Err` when reads are failing.
    fn charge_read(&self, op: &'static str) -> Result<()> {
        self.charge_op(op)?;
        if self.state.lock().plan.fail_reads {
            Err(injected(op))
        } else {
            Ok(())
        }
    }

    /// Charges a write of `len` bytes, returning how many of them may
    /// persist. `Ok(len)` means the write goes through whole; `Err`
    /// carries the number of prefix bytes to tear in.
    fn charge_write(&self, op: &'static str, len: u64) -> std::result::Result<u64, (u64, CodecError)> {
        if let Err(e) = self.charge_op(op) {
            return Err((0, e));
        }
        let mut s = self.state.lock();
        match s.plan.write_byte_budget {
            Some(budget) => {
                let remaining = budget.saturating_sub(s.write_bytes_done);
                if len <= remaining {
                    s.write_bytes_done += len;
                    Ok(len)
                } else {
                    s.write_bytes_done = budget;
                    Err((remaining, injected(op)))
                }
            }
            None => Ok(len),
        }
    }

    /// Applies the short-read limit to a buffer.
    fn shorten(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        if let Some(limit) = self.state.lock().plan.short_read_limit {
            bytes.truncate(limit as usize);
        }
        bytes
    }
}

impl Storage for FaultyStorage {
    fn kind(&self) -> &'static str {
        "faulty"
    }

    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        self.charge_read("get")?;
        let obj = self.inner.get(key)?;
        let limited = self.state.lock().plan.short_read_limit;
        match limited {
            Some(limit) if (limit as usize) < obj.len() => {
                Ok(Arc::from(&obj[..limit as usize]))
            }
            _ => Ok(obj),
        }
    }

    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>> {
        self.charge_read("get_range")?;
        Ok(self.shorten(self.inner.get_range(key, range)?))
    }

    fn set(&self, key: &str, bytes: &[u8]) -> Result<()> {
        match self.charge_write("set", bytes.len() as u64) {
            Ok(_) => self.inner.set(key, bytes),
            Err((torn, e)) => {
                // A torn whole-object replace: only the prefix lands.
                self.inner.set(key, &bytes[..torn as usize]).ok();
                Err(e)
            }
        }
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        match self.charge_write("append", bytes.len() as u64) {
            Ok(_) => self.inner.append(key, bytes),
            Err((torn, e)) => {
                if torn > 0 {
                    self.inner.append(key, &bytes[..torn as usize]).ok();
                }
                Err(e)
            }
        }
    }

    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        match self.charge_write("write_at", bytes.len() as u64) {
            Ok(_) => self.inner.write_at(key, offset, bytes),
            Err((torn, e)) => {
                if torn > 0 {
                    self.inner.write_at(key, offset, &bytes[..torn as usize]).ok();
                }
                Err(e)
            }
        }
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.charge_read("exists")?;
        self.inner.exists(key)
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.charge_read("size")?;
        self.inner.size(key)
    }

    fn erase(&self, key: &str) -> Result<()> {
        self.charge_op("erase")?;
        self.inner.erase(key)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.charge_read("list")?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemoryStorage;
    use super::*;

    fn wrapped() -> FaultyStorage {
        FaultyStorage::new(Arc::new(MemoryStorage::new()))
    }

    #[test]
    fn passthrough_without_plan() {
        let s = wrapped();
        s.set("a", b"hello").unwrap();
        assert_eq!(&*s.get("a").unwrap(), b"hello");
        assert_eq!(s.ops_done(), 2);
    }

    #[test]
    fn torn_write_persists_prefix() {
        let s = wrapped();
        s.set("a", b"0123456789").unwrap();
        s.set_plan(FaultPlan::torn_after_bytes(4));
        let err = s.append("a", b"abcdef").unwrap_err();
        assert!(matches!(err, CodecError::StorageIo { .. }));
        // Only 4 of the 6 appended bytes landed.
        assert_eq!(&*s.inner().get("a").unwrap(), b"0123456789abcd");
        // Budget exhausted: further writes tear at zero bytes.
        assert!(s.append("a", b"x").is_err());
        assert_eq!(&*s.inner().get("a").unwrap(), b"0123456789abcd");
    }

    #[test]
    fn op_budget_kills_everything() {
        let s = wrapped();
        s.set("a", b"x").unwrap();
        s.set_plan(FaultPlan::dies_after_ops(2));
        assert!(s.get("a").is_ok());
        assert!(s.size("a").is_ok());
        assert!(s.get("a").is_err());
        assert!(s.set("b", b"y").is_err());
    }

    #[test]
    fn read_faults_and_short_reads() {
        let s = wrapped();
        s.set("a", b"0123456789").unwrap();
        s.set_plan(FaultPlan::failing_reads());
        assert!(s.get("a").is_err());
        assert!(s.list().is_err());
        // Writes still work under a read-only fault.
        assert!(s.set("b", b"ok").is_ok());

        s.set_plan(FaultPlan::short_reads(3));
        assert_eq!(&*s.get("a").unwrap(), b"012");
        assert_eq!(s.get_range("a", ByteRange::Full).unwrap(), b"012");
        // size() is not shortened — it reports the true length, which
        // is exactly what lets callers detect the short read.
        assert_eq!(s.size("a").unwrap(), 10);
    }
}
