//! Pluggable [`Storage`] backends: the byte-range object layer every
//! container in this crate reads from and writes to.
//!
//! Historically each container was hardwired to its transport — a file
//! path or an in-memory buffer. This module inverts that: a store is
//! *keys and byte ranges* on an abstract [`Storage`], and the transport
//! is chosen at open time (the `zarrs_storage` crate split is the
//! direct inspiration). Three backends ship here:
//!
//! * [`MemoryStorage`] — objects in a mutex-guarded map; the zero-cost
//!   backend for tests, staging, and hot tiers,
//! * [`FilesystemStorage`] — one file per key under a root directory,
//!   with atomic whole-object replacement (temp file + rename),
//! * [`SimulatedObjectStorage`] — a decorator that charges every
//!   operation to an object-store cost model (request latency, ranged
//!   GETs, read-modify-write PUTs, per-request and per-byte prices)
//!   derived from the [`PfsSim`](eblcio_pfs::PfsSim) network model,
//!
//! plus two more decorators: [`FaultyStorage`], a fault-injection
//! wrapper that cuts writes at configurable byte budgets and fails
//! reads on demand, so the crash-consistency suites can prove the
//! mutable-store publish protocol holds on *any* backend; and
//! [`MeteredStorage`], which times every operation into per-op latency
//! and byte histograms (`eblcio_storage_*`) in an
//! [`eblcio_obs::MetricsRegistry`].
//!
//! ## The contract
//!
//! Every backend must honour the same semantics — the conformance
//! harness (`tests/storage_conformance.rs`) instantiates one generic
//! suite against all of them:
//!
//! * **`set` is atomic.** After a successful `set` the object is
//!   exactly the given bytes; a failed `set` may leave a torn object
//!   only when the backend documents it (injected faults).
//! * **`append` is ordered.** Appends to one key from one thread land
//!   in call order; `append` creates missing keys and returns the new
//!   object size.
//! * **`write_at` patches in place** and must lie entirely within the
//!   current object — growing an object is `append`'s job. This is the
//!   ninth operation beyond the classic object-store eight; the
//!   mutable-store root-slot flip needs a positional overwrite.
//! * **Range reads are strict.** [`ByteRange::resolve`] rejects any
//!   range reaching outside the object with a typed
//!   [`CodecError::StorageRange`] — callers never receive silently
//!   clamped bytes.
//! * **`erase` is idempotent** (erasing a missing key is `Ok`), `list`
//!   returns keys in sorted order, and missing keys surface as
//!   [`CodecError::NoSuchKey`] from `get`/`get_range`/`size`/`write_at`.
//! * **Reads are concurrent.** Any number of threads may call read
//!   operations while another thread writes *different* keys.

mod faulty;
mod filesystem;
mod memory;
mod metered;
mod object_sim;

pub use faulty::{FaultPlan, FaultyStorage};
pub use filesystem::FilesystemStorage;
pub use memory::MemoryStorage;
pub use metered::MeteredStorage;
pub use object_sim::{ObjectCostModel, ObjectStoreStats, SimulatedObjectStorage};

use eblcio_codec::{CodecError, Result};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// A byte range of one stored object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteRange {
    /// The whole object.
    Full,
    /// Everything from `offset` (inclusive) to the end.
    From(u64),
    /// Exactly `len` bytes starting at `offset`.
    Bounded {
        /// First byte of the range.
        offset: u64,
        /// Number of bytes.
        len: u64,
    },
    /// The last `len` bytes of the object.
    Suffix(u64),
}

impl ByteRange {
    /// Resolves the range against an object of `size` bytes, rejecting
    /// anything that reaches outside it.
    pub fn resolve(self, size: u64) -> Result<Range<usize>> {
        let (start, end) = match self {
            ByteRange::Full => (0, size),
            ByteRange::From(offset) => {
                if offset > size {
                    return Err(CodecError::StorageRange { context: "range start" });
                }
                (offset, size)
            }
            ByteRange::Bounded { offset, len } => {
                let end = offset
                    .checked_add(len)
                    .ok_or(CodecError::StorageRange { context: "range length" })?;
                if end > size {
                    return Err(CodecError::StorageRange { context: "range end" });
                }
                (offset, end)
            }
            ByteRange::Suffix(len) => {
                if len > size {
                    return Err(CodecError::StorageRange { context: "range suffix" });
                }
                (size - len, size)
            }
        };
        Ok(start as usize..end as usize)
    }

    /// Number of bytes the range selects from an object of `size`
    /// bytes (without validating — see [`ByteRange::resolve`]).
    pub fn len_within(self, size: u64) -> u64 {
        match self {
            ByteRange::Full => size,
            ByteRange::From(offset) => size.saturating_sub(offset),
            ByteRange::Bounded { len, .. } => len,
            ByteRange::Suffix(len) => len.min(size),
        }
    }
}

/// A readable, writable, listable key→bytes object store.
///
/// Implementations use interior mutability (`&self` everywhere) so one
/// `Arc<dyn Storage>` can be shared across reader and writer threads;
/// see the [module docs](self) for the semantic contract each method
/// must honour.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// A short human-readable backend name (`"memory"`, `"fs"`, …) for
    /// reports and error messages.
    fn kind(&self) -> &'static str;

    /// Reads the whole object under `key` into a shared allocation.
    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        Ok(Arc::from(self.get_range(key, ByteRange::Full)?))
    }

    /// Reads one byte range of the object under `key`.
    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>>;

    /// Atomically replaces (or creates) the object under `key`.
    fn set(&self, key: &str, bytes: &[u8]) -> Result<()>;

    /// Appends `bytes` to the object under `key` (creating it when
    /// missing) and returns the object's new size.
    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64>;

    /// Overwrites `bytes.len()` bytes at `offset` of the existing
    /// object under `key`. The write must lie entirely within the
    /// object's current size.
    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()>;

    /// Whether an object exists under `key`.
    fn exists(&self, key: &str) -> Result<bool> {
        match self.size(key) {
            Ok(_) => Ok(true),
            Err(CodecError::NoSuchKey { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Size in bytes of the object under `key`.
    fn size(&self, key: &str) -> Result<u64>;

    /// Removes the object under `key`; removing a missing key is `Ok`.
    fn erase(&self, key: &str) -> Result<()>;

    /// All keys currently stored, in sorted order.
    fn list(&self) -> Result<Vec<String>>;
}

/// Validates a storage key: non-empty, `/`-separated components with no
/// empty, `.`, or `..` parts (so filesystem backends can never be
/// walked out of their root), no NUL bytes.
pub fn validate_key(key: &str) -> Result<()> {
    let ok = !key.is_empty()
        && !key.contains('\0')
        && key
            .split('/')
            .all(|part| !part.is_empty() && part != "." && part != "..");
    if ok {
        Ok(())
    } else {
        Err(CodecError::StorageIo {
            op: "key",
            detail: format!("invalid storage key '{key}'"),
        })
    }
}

/// Builds a backend by name — the shared vocabulary of the CLI
/// `--backend` flag, the bench knobs, and the CI backend matrix:
///
/// * `"fs"` — [`FilesystemStorage`] rooted at `root`,
/// * `"memory"` (or `"mem"`) — a fresh [`MemoryStorage`],
/// * `"object"` — [`SimulatedObjectStorage`] with the default
///   PfsSim-derived cost model over a fresh memory backend,
/// * `"object-fs"` — the same cost model over a filesystem backend at
///   `root` (real files, simulated bill).
pub fn named_backend(name: &str, root: &Path) -> Result<Arc<dyn Storage>> {
    match name {
        "fs" => Ok(Arc::new(FilesystemStorage::create(root)?)),
        "memory" | "mem" => Ok(Arc::new(MemoryStorage::new())),
        "object" => Ok(Arc::new(SimulatedObjectStorage::in_memory(
            ObjectCostModel::default(),
        ))),
        "object-fs" => Ok(Arc::new(SimulatedObjectStorage::over(
            Arc::new(FilesystemStorage::create(root)?),
            ObjectCostModel::default(),
        ))),
        other => Err(CodecError::StorageIo {
            op: "backend",
            detail: format!("unknown backend '{other}' (expected fs|memory|object|object-fs)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_resolution() {
        assert_eq!(ByteRange::Full.resolve(10).unwrap(), 0..10);
        assert_eq!(ByteRange::From(4).resolve(10).unwrap(), 4..10);
        assert_eq!(ByteRange::From(10).resolve(10).unwrap(), 10..10);
        assert_eq!(
            ByteRange::Bounded { offset: 2, len: 5 }.resolve(10).unwrap(),
            2..7
        );
        assert_eq!(ByteRange::Suffix(3).resolve(10).unwrap(), 7..10);
        assert_eq!(ByteRange::Suffix(0).resolve(0).unwrap(), 0..0);
        assert!(ByteRange::From(11).resolve(10).is_err());
        assert!(ByteRange::Bounded { offset: 6, len: 5 }.resolve(10).is_err());
        assert!(ByteRange::Bounded { offset: u64::MAX, len: 2 }.resolve(10).is_err());
        assert!(ByteRange::Suffix(11).resolve(10).is_err());
    }

    #[test]
    fn key_validation() {
        for good in ["a", "a/b", "store.ebms", "deep/nested/key.bin"] {
            assert!(validate_key(good).is_ok(), "{good}");
        }
        for bad in ["", "/a", "a/", "a//b", "..", "a/../b", ".", "a\0b"] {
            assert!(validate_key(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn named_backend_resolution() {
        let dir = std::env::temp_dir().join(format!("eblcio-nb-{}", std::process::id()));
        assert_eq!(named_backend("memory", &dir).unwrap().kind(), "memory");
        assert_eq!(named_backend("mem", &dir).unwrap().kind(), "memory");
        assert_eq!(named_backend("object", &dir).unwrap().kind(), "object-sim");
        assert_eq!(named_backend("fs", &dir).unwrap().kind(), "fs");
        assert_eq!(named_backend("object-fs", &dir).unwrap().kind(), "object-sim");
        assert!(named_backend("tape", &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
