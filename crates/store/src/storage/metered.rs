//! [`MeteredStorage`]: per-operation latency and byte telemetry over
//! any inner backend.
//!
//! Where [`SimulatedObjectStorage`](super::SimulatedObjectStorage)
//! charges a *model* (what the operation would cost on a cloud store),
//! this decorator measures *reality*: every [`Storage`] call is timed
//! with a [`Stopwatch`] into a per-op latency histogram, moved bytes
//! land in read/write size histograms, and each call opens a
//! `storage.<op>` span so backend time shows up in the flight recorder
//! attributed to the request that caused it. Metric names follow the
//! workspace scheme: `eblcio_storage_<op>_ns` for latencies,
//! `eblcio_storage_{read,write}_bytes` for sizes.

use super::{ByteRange, Storage};
use eblcio_codec::Result;
use eblcio_obs::{self as obs, Histogram, MetricsRegistry, NameId, Stopwatch};
use std::sync::Arc;

/// One latency histogram + span name per [`Storage`] operation.
#[derive(Debug)]
struct Op {
    latency_ns: Arc<Histogram>,
    span: NameId,
}

impl Op {
    fn new(registry: &MetricsRegistry, metric: &str, span: &str) -> Self {
        Self {
            latency_ns: registry.histogram(metric),
            span: obs::intern(span),
        }
    }
}

/// The decorator. Wraps an inner backend and records per-op latency
/// and byte-size histograms into a [`MetricsRegistry`] — the process
/// global one by default ([`MeteredStorage::over`]), or any registry
/// the caller supplies ([`MeteredStorage::with_registry`]).
///
/// The telemetry cost per call is one `Instant` read pair plus one
/// relaxed atomic add per histogram touched; spans are only captured
/// when [`eblcio_obs::enabled`] says so.
#[derive(Debug)]
pub struct MeteredStorage {
    inner: Arc<dyn Storage>,
    registry: Arc<MetricsRegistry>,
    get: Op,
    get_range: Op,
    set: Op,
    append: Op,
    write_at: Op,
    exists: Op,
    size: Op,
    erase: Op,
    list: Op,
    read_bytes: Arc<Histogram>,
    write_bytes: Arc<Histogram>,
}

impl MeteredStorage {
    /// Wraps `inner`, recording into the process-global registry.
    pub fn over(inner: Arc<dyn Storage>) -> Self {
        Self::with_registry(inner, obs::global().clone())
    }

    /// Wraps `inner`, recording into `registry`.
    pub fn with_registry(inner: Arc<dyn Storage>, registry: Arc<MetricsRegistry>) -> Self {
        let r = registry.as_ref();
        Self {
            get: Op::new(r, "eblcio_storage_get_ns", "storage.get"),
            get_range: Op::new(r, "eblcio_storage_get_range_ns", "storage.get_range"),
            set: Op::new(r, "eblcio_storage_set_ns", "storage.set"),
            append: Op::new(r, "eblcio_storage_append_ns", "storage.append"),
            write_at: Op::new(r, "eblcio_storage_write_at_ns", "storage.write_at"),
            exists: Op::new(r, "eblcio_storage_exists_ns", "storage.exists"),
            size: Op::new(r, "eblcio_storage_size_ns", "storage.size"),
            erase: Op::new(r, "eblcio_storage_erase_ns", "storage.erase"),
            list: Op::new(r, "eblcio_storage_list_ns", "storage.list"),
            read_bytes: r.histogram("eblcio_storage_read_bytes"),
            write_bytes: r.histogram("eblcio_storage_write_bytes"),
            inner,
            registry,
        }
    }

    /// The backend actually serving the operations.
    pub fn inner(&self) -> &Arc<dyn Storage> {
        &self.inner
    }

    /// The registry the histograms live in.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Storage for MeteredStorage {
    fn kind(&self) -> &'static str {
        "metered"
    }

    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        let _span = obs::span_id(self.get.span);
        let sw = Stopwatch::start();
        let out = self.inner.get(key);
        self.get.latency_ns.record(sw.elapsed_ns());
        if let Ok(obj) = &out {
            self.read_bytes.record(obj.len() as u64);
        }
        out
    }

    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>> {
        let _span = obs::span_id(self.get_range.span);
        let sw = Stopwatch::start();
        let out = self.inner.get_range(key, range);
        self.get_range.latency_ns.record(sw.elapsed_ns());
        if let Ok(bytes) = &out {
            self.read_bytes.record(bytes.len() as u64);
        }
        out
    }

    fn set(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let _span = obs::span_id(self.set.span);
        let sw = Stopwatch::start();
        let out = self.inner.set(key, bytes);
        self.set.latency_ns.record(sw.elapsed_ns());
        if out.is_ok() {
            self.write_bytes.record(bytes.len() as u64);
        }
        out
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        let _span = obs::span_id(self.append.span);
        let sw = Stopwatch::start();
        let out = self.inner.append(key, bytes);
        self.append.latency_ns.record(sw.elapsed_ns());
        if out.is_ok() {
            self.write_bytes.record(bytes.len() as u64);
        }
        out
    }

    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        let _span = obs::span_id(self.write_at.span);
        let sw = Stopwatch::start();
        let out = self.inner.write_at(key, offset, bytes);
        self.write_at.latency_ns.record(sw.elapsed_ns());
        if out.is_ok() {
            self.write_bytes.record(bytes.len() as u64);
        }
        out
    }

    fn exists(&self, key: &str) -> Result<bool> {
        let _span = obs::span_id(self.exists.span);
        let sw = Stopwatch::start();
        let out = self.inner.exists(key);
        self.exists.latency_ns.record(sw.elapsed_ns());
        out
    }

    fn size(&self, key: &str) -> Result<u64> {
        let _span = obs::span_id(self.size.span);
        let sw = Stopwatch::start();
        let out = self.inner.size(key);
        self.size.latency_ns.record(sw.elapsed_ns());
        out
    }

    fn erase(&self, key: &str) -> Result<()> {
        let _span = obs::span_id(self.erase.span);
        let sw = Stopwatch::start();
        let out = self.inner.erase(key);
        self.erase.latency_ns.record(sw.elapsed_ns());
        out
    }

    fn list(&self) -> Result<Vec<String>> {
        let _span = obs::span_id(self.list.span);
        let sw = Stopwatch::start();
        let out = self.inner.list();
        self.list.latency_ns.record(sw.elapsed_ns());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemoryStorage;
    use super::*;

    fn metered() -> MeteredStorage {
        MeteredStorage::with_registry(
            Arc::new(MemoryStorage::new()),
            Arc::new(MetricsRegistry::default()),
        )
    }

    #[test]
    fn records_latency_and_bytes_per_op() {
        let store = metered();
        store.set("k", &[7u8; 128]).unwrap();
        let obj = store.get("k").unwrap();
        assert_eq!(obj.len(), 128);
        store
            .get_range("k", ByteRange::Bounded { offset: 0, len: 32 })
            .unwrap();
        assert_eq!(store.append("k", &[1u8; 16]).unwrap(), 144);

        let r = store.registry();
        assert_eq!(r.histogram("eblcio_storage_set_ns").count(), 1);
        assert_eq!(r.histogram("eblcio_storage_get_ns").count(), 1);
        assert_eq!(r.histogram("eblcio_storage_get_range_ns").count(), 1);
        assert_eq!(r.histogram("eblcio_storage_append_ns").count(), 1);
        // read = 128 (get) + 32 (ranged), write = 128 (set) + 16 (append).
        let reads = r.histogram("eblcio_storage_read_bytes").snapshot();
        assert_eq!((reads.count, reads.sum), (2, 160));
        let writes = r.histogram("eblcio_storage_write_bytes").snapshot();
        assert_eq!((writes.count, writes.sum), (2, 144));
    }

    #[test]
    fn failed_reads_are_timed_but_not_sized() {
        let store = metered();
        assert!(store.get("missing").is_err());
        let r = store.registry();
        assert_eq!(r.histogram("eblcio_storage_get_ns").count(), 1);
        assert_eq!(r.histogram("eblcio_storage_read_bytes").count(), 0);
    }

    #[test]
    fn delegates_semantics_unchanged() {
        let store = metered();
        store.set("a/b", &[1, 2, 3]).unwrap();
        assert!(store.exists("a/b").unwrap());
        assert_eq!(store.size("a/b").unwrap(), 3);
        assert_eq!(store.list().unwrap(), vec!["a/b".to_string()]);
        store.erase("a/b").unwrap();
        assert!(!store.exists("a/b").unwrap());
        assert_eq!(store.kind(), "metered");
        assert_eq!(store.inner().kind(), "memory");
    }
}
