//! [`SimulatedObjectStorage`]: an object-store cost model over any
//! inner backend.
//!
//! Cloud object stores differ from a parallel file system in three ways
//! that matter to a compressed-store layout: every operation is a
//! *request* with a fixed round-trip latency, ranged GETs are the only
//! partial read (there are no partial writes at all — mutating one byte
//! means re-uploading the whole object), and the bill counts requests
//! and bytes, not seconds. This decorator charges each [`Storage`]
//! operation to exactly that model while delegating the actual bytes to
//! an inner backend, so the same store layout can be costed against
//! "S3-like" pricing without any network.

use super::{ByteRange, MemoryStorage, Storage};
use eblcio_codec::Result;
use eblcio_obs::{Counter, Gauge, MetricsRegistry};
use eblcio_pfs::PfsSim;
use parking_lot::Mutex;
use std::sync::Arc;

/// Gibibyte, the unit object-store prices are quoted in.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Price and latency model of a simulated object store.
#[derive(Clone, Copy, Debug)]
pub struct ObjectCostModel {
    /// Fixed round-trip latency charged per request (seconds). Object
    /// stores sit behind an HTTP front end, so this is orders of
    /// magnitude above a PFS OST's block latency.
    pub request_latency_s: f64,
    /// Sustained single-stream transfer bandwidth (bytes/second).
    pub bandwidth_bps: f64,
    /// Price per request (GET/PUT/HEAD/DELETE/LIST alike), USD.
    pub cost_per_request_usd: f64,
    /// Price per GiB transferred (either direction), USD.
    pub cost_per_gib_usd: f64,
}

impl ObjectCostModel {
    /// Derives a model from a [`PfsSim`]: single-writer effective
    /// bandwidth as the transfer rate, and mean OST latency scaled by
    /// [`Self::HTTP_LATENCY_FACTOR`] as the per-request round trip.
    pub fn from_pfs(pfs: &PfsSim) -> Self {
        let n = pfs.osts.len().max(1) as f64;
        let mean_latency = pfs.osts.iter().map(|o| o.latency_s).sum::<f64>() / n;
        Self {
            request_latency_s: mean_latency * Self::HTTP_LATENCY_FACTOR,
            bandwidth_bps: pfs.effective_bandwidth(1).max(1.0),
            ..Self::default()
        }
    }

    /// Ratio of an object-store HTTP round trip to a PFS OST block
    /// round trip (~0.5 ms block latency becomes ~20 ms per request).
    pub const HTTP_LATENCY_FACTOR: f64 = 40.0;

    /// Simulated wall-clock seconds for one request moving `bytes`.
    pub fn request_seconds(&self, bytes: u64) -> f64 {
        self.request_latency_s + bytes as f64 / self.bandwidth_bps.max(1.0)
    }

    /// Simulated dollars for one request moving `bytes`.
    pub fn request_cost(&self, bytes: u64) -> f64 {
        self.cost_per_request_usd + bytes as f64 / GIB * self.cost_per_gib_usd
    }
}

impl Default for ObjectCostModel {
    /// The testbed network ([`PfsSim::testbed`]) with S3-standard-like
    /// prices: $0.4/M requests, $0.09/GiB egress.
    fn default() -> Self {
        let pfs = PfsSim::testbed();
        let n = pfs.osts.len().max(1) as f64;
        let mean_latency = pfs.osts.iter().map(|o| o.latency_s).sum::<f64>() / n;
        Self {
            request_latency_s: mean_latency * Self::HTTP_LATENCY_FACTOR,
            bandwidth_bps: pfs.effective_bandwidth(1).max(1.0),
            cost_per_request_usd: 0.4e-6,
            cost_per_gib_usd: 0.09,
        }
    }
}

/// Running totals of everything the simulated store was asked to do.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObjectStoreStats {
    /// GET/ranged-GET/HEAD requests (reads and existence probes).
    pub get_requests: u64,
    /// PUT requests (every write — `set`, and the read-modify-write
    /// halves of `append`/`write_at`).
    pub put_requests: u64,
    /// DELETE requests.
    pub delete_requests: u64,
    /// LIST requests.
    pub list_requests: u64,
    /// Bytes moved store → client.
    pub bytes_downloaded: u64,
    /// Bytes moved client → store.
    pub bytes_uploaded: u64,
    /// Simulated wall-clock spent in requests (seconds, serialized).
    pub simulated_seconds: f64,
    /// Simulated bill (USD).
    pub cost_usd: f64,
}

impl ObjectStoreStats {
    /// Total requests of any kind.
    pub fn requests(&self) -> u64 {
        self.get_requests + self.put_requests + self.delete_requests + self.list_requests
    }
}

/// The registry-backed accumulators behind [`ObjectStoreStats`]. Each
/// field is a handle registered in the instance's
/// [`MetricsRegistry`], so exporters scrape the same numbers
/// [`SimulatedObjectStorage::stats`] reports.
#[derive(Debug)]
struct ObjSimMetrics {
    get_requests: Arc<Counter>,
    put_requests: Arc<Counter>,
    delete_requests: Arc<Counter>,
    list_requests: Arc<Counter>,
    bytes_downloaded: Arc<Counter>,
    bytes_uploaded: Arc<Counter>,
    simulated_seconds: Arc<Gauge>,
    cost_usd: Arc<Gauge>,
}

impl ObjSimMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            get_requests: registry.counter("eblcio_objsim_get_requests_total"),
            put_requests: registry.counter("eblcio_objsim_put_requests_total"),
            delete_requests: registry.counter("eblcio_objsim_delete_requests_total"),
            list_requests: registry.counter("eblcio_objsim_list_requests_total"),
            bytes_downloaded: registry.counter("eblcio_objsim_bytes_downloaded_total"),
            bytes_uploaded: registry.counter("eblcio_objsim_bytes_uploaded_total"),
            simulated_seconds: registry.gauge("eblcio_objsim_simulated_seconds"),
            cost_usd: registry.gauge("eblcio_objsim_cost_usd"),
        }
    }
}

/// A decorator that makes any inner backend behave — and bill — like a
/// cloud object store. Reads map to (ranged) GETs; `set` is one PUT;
/// `append` and `write_at` are read-modify-write (one GET of the whole
/// existing object, one PUT of the whole new object) because object
/// stores have no partial writes; `exists`/`size` are HEADs.
///
/// Totals accumulate in a per-instance [`MetricsRegistry`] (under the
/// `eblcio_objsim_*` names, scrapeable through
/// [`SimulatedObjectStorage::metrics`]); [`ObjectStoreStats`] is a
/// snapshot view over those handles, readable at any time through
/// [`SimulatedObjectStorage::stats`].
#[derive(Debug)]
pub struct SimulatedObjectStorage {
    inner: Arc<dyn Storage>,
    model: ObjectCostModel,
    registry: Arc<MetricsRegistry>,
    metrics: ObjSimMetrics,
    /// Serializes multi-handle charges against [`Self::stats`] /
    /// [`Self::reset_stats`], so a snapshot can never observe a
    /// half-applied charge and a reset can never interleave with one.
    op_lock: Mutex<()>,
}

impl SimulatedObjectStorage {
    /// Wraps `inner`, charging every operation to `model`.
    pub fn over(inner: Arc<dyn Storage>, model: ObjectCostModel) -> Self {
        let registry = Arc::new(MetricsRegistry::default());
        let metrics = ObjSimMetrics::new(&registry);
        Self { inner, model, registry, metrics, op_lock: Mutex::new(()) }
    }

    /// A simulated object store over a fresh [`MemoryStorage`].
    pub fn in_memory(model: ObjectCostModel) -> Self {
        Self::over(Arc::new(MemoryStorage::new()), model)
    }

    /// The cost model in force.
    pub fn model(&self) -> ObjectCostModel {
        self.model
    }

    /// The backend actually holding the bytes.
    pub fn inner(&self) -> &Arc<dyn Storage> {
        &self.inner
    }

    /// The instance registry holding the `eblcio_objsim_*` metrics that
    /// [`Self::stats`] snapshots.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Snapshot of the accumulated request/byte/cost totals. Taken
    /// under the charge lock, so the fields are mutually consistent —
    /// never a request counted whose bytes aren't, even while other
    /// threads keep charging.
    pub fn stats(&self) -> ObjectStoreStats {
        let _g = self.op_lock.lock();
        ObjectStoreStats {
            get_requests: self.metrics.get_requests.get(),
            put_requests: self.metrics.put_requests.get(),
            delete_requests: self.metrics.delete_requests.get(),
            list_requests: self.metrics.list_requests.get(),
            bytes_downloaded: self.metrics.bytes_downloaded.get(),
            bytes_uploaded: self.metrics.bytes_uploaded.get(),
            simulated_seconds: self.metrics.simulated_seconds.get(),
            cost_usd: self.metrics.cost_usd.get(),
        }
    }

    /// Resets the accumulated totals to zero, atomically with respect
    /// to concurrent charges and snapshots.
    pub fn reset_stats(&self) {
        let _g = self.op_lock.lock();
        self.registry.reset_all();
    }

    fn charge(&self, kind: RequestKind, down: u64, up: u64) {
        let _g = self.op_lock.lock();
        match kind {
            RequestKind::Get => self.metrics.get_requests.inc(),
            RequestKind::Put => self.metrics.put_requests.inc(),
            RequestKind::Delete => self.metrics.delete_requests.inc(),
            RequestKind::List => self.metrics.list_requests.inc(),
        }
        self.metrics.bytes_downloaded.add(down);
        self.metrics.bytes_uploaded.add(up);
        self.metrics.simulated_seconds.add(self.model.request_seconds(down + up));
        self.metrics.cost_usd.add(self.model.request_cost(down + up));
    }
}

#[derive(Clone, Copy)]
enum RequestKind {
    Get,
    Put,
    Delete,
    List,
}

impl Storage for SimulatedObjectStorage {
    fn kind(&self) -> &'static str {
        "object-sim"
    }

    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        let obj = self.inner.get(key)?;
        self.charge(RequestKind::Get, obj.len() as u64, 0);
        Ok(obj)
    }

    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>> {
        let out = self.inner.get_range(key, range)?;
        self.charge(RequestKind::Get, out.len() as u64, 0);
        Ok(out)
    }

    fn set(&self, key: &str, bytes: &[u8]) -> Result<()> {
        self.inner.set(key, bytes)?;
        self.charge(RequestKind::Put, 0, bytes.len() as u64);
        Ok(())
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        // Read-modify-write: GET the existing object (if any), PUT the
        // whole grown object back.
        let old = match self.inner.size(key) {
            Ok(n) => {
                self.charge(RequestKind::Get, n, 0);
                n
            }
            Err(_) => 0,
        };
        let new_len = self.inner.append(key, bytes)?;
        self.charge(RequestKind::Put, 0, old + bytes.len() as u64);
        Ok(new_len)
    }

    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        // Read-modify-write of the whole object, as above.
        let size = self.inner.size(key)?;
        self.inner.write_at(key, offset, bytes)?;
        self.charge(RequestKind::Get, size, 0);
        self.charge(RequestKind::Put, 0, size);
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        let found = self.inner.exists(key)?;
        self.charge(RequestKind::Get, 0, 0); // HEAD
        Ok(found)
    }

    fn size(&self, key: &str) -> Result<u64> {
        let n = self.inner.size(key)?;
        self.charge(RequestKind::Get, 0, 0); // HEAD
        Ok(n)
    }

    fn erase(&self, key: &str) -> Result<()> {
        self.inner.erase(key)?;
        self.charge(RequestKind::Delete, 0, 0);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        let keys = self.inner.list()?;
        self.charge(RequestKind::List, 0, 0);
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_requests_and_bytes() {
        let store = SimulatedObjectStorage::in_memory(ObjectCostModel::default());
        store.set("a", &[1u8; 100]).unwrap();
        let s = store.stats();
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.bytes_uploaded, 100);

        store.get("a").unwrap();
        store
            .get_range("a", ByteRange::Bounded { offset: 10, len: 5 })
            .unwrap();
        let s = store.stats();
        assert_eq!(s.get_requests, 2);
        assert_eq!(s.bytes_downloaded, 105);
        assert!(s.simulated_seconds > 0.0);
        assert!(s.cost_usd > 0.0);
    }

    #[test]
    fn append_is_read_modify_write() {
        let store = SimulatedObjectStorage::in_memory(ObjectCostModel::default());
        store.set("log", &[0u8; 40]).unwrap();
        store.reset_stats();
        assert_eq!(store.append("log", &[1u8; 10]).unwrap(), 50);
        let s = store.stats();
        // One GET of the 40 existing bytes, one PUT of all 50.
        assert_eq!(s.get_requests, 1);
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.bytes_downloaded, 40);
        assert_eq!(s.bytes_uploaded, 50);
    }

    #[test]
    fn append_to_missing_key_is_single_put() {
        let store = SimulatedObjectStorage::in_memory(ObjectCostModel::default());
        assert_eq!(store.append("fresh", &[7u8; 8]).unwrap(), 8);
        let s = store.stats();
        assert_eq!(s.get_requests, 0);
        assert_eq!(s.put_requests, 1);
        assert_eq!(s.bytes_uploaded, 8);
    }

    /// The stats struct is a view over the instance registry: both
    /// report identical totals, and a reset clears both together.
    #[test]
    fn registry_mirrors_stats() {
        let store = SimulatedObjectStorage::in_memory(ObjectCostModel::default());
        store.set("a", &[0u8; 10]).unwrap();
        store.get("a").unwrap();
        let s = store.stats();
        assert_eq!((s.put_requests, s.get_requests), (1, 1));
        let text = eblcio_obs::prometheus(store.metrics());
        assert!(text.contains("eblcio_objsim_put_requests_total 1"), "{text}");
        assert!(text.contains("eblcio_objsim_get_requests_total 1"), "{text}");
        assert!(text.contains("eblcio_objsim_bytes_downloaded_total 10"), "{text}");
        store.reset_stats();
        assert_eq!(store.stats(), ObjectStoreStats::default());
    }

    #[test]
    fn model_from_pfs_scales_latency() {
        let pfs = PfsSim::testbed();
        let model = ObjectCostModel::from_pfs(&pfs);
        assert!(model.request_latency_s > 1e-3, "{}", model.request_latency_s);
        assert!(model.bandwidth_bps > 0.0);
        // A 1 MiB GET takes latency + transfer time.
        let t = model.request_seconds(1 << 20);
        assert!(t > model.request_latency_s);
    }
}
