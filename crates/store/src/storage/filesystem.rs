//! [`FilesystemStorage`]: one file per key under a root directory.

use super::{validate_key, ByteRange, Storage};
use eblcio_codec::{CodecError, Result};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counter making concurrent temp-file names unique within a process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Prefix of the sibling files [`FilesystemStorage::set`] stages before
/// renaming over the target; [`FilesystemStorage::list`] hides them so
/// a crash mid-`set` can never invent a key.
const TMP_PREFIX: &str = ".tmp-";

/// Filesystem-backed storage rooted at one directory. Keys map to
/// relative paths (`a/b` becomes `<root>/a/b`); [`validate_key`]
/// guarantees no key can escape the root. `set` is atomic — the bytes
/// are staged in a sibling temp file and renamed over the target, so a
/// crash mid-write never leaves a torn object under a live key.
#[derive(Debug)]
pub struct FilesystemStorage {
    root: PathBuf,
}

/// Maps an I/O error on `key` to the typed storage error vocabulary.
fn io_err(op: &'static str, key: &str, e: &std::io::Error) -> CodecError {
    if e.kind() == std::io::ErrorKind::NotFound {
        CodecError::NoSuchKey { key: key.to_string() }
    } else {
        CodecError::StorageIo { op, detail: format!("{key}: {e}") }
    }
}

impl FilesystemStorage {
    /// Opens (creating if needed) a backend rooted at `root`.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| CodecError::StorageIo {
            op: "create root",
            detail: format!("{}: {e}", root.display()),
        })?;
        Ok(Self { root })
    }

    /// The root directory keys resolve under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        validate_key(key)?;
        Ok(self.root.join(key))
    }

    /// Opens the file under `key`, mapping "not found" to
    /// [`CodecError::NoSuchKey`].
    fn open_file(&self, op: &'static str, key: &str, opts: &OpenOptions) -> Result<File> {
        let path = self.path_of(key)?;
        opts.open(&path).map_err(|e| io_err(op, key, &e))
    }

    fn walk(&self, dir: &Path, prefix: &str, out: &mut Vec<String>) -> std::io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let key = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}/{name}")
            };
            let ty = entry.file_type()?;
            if ty.is_dir() {
                self.walk(&entry.path(), &key, out)?;
            } else if ty.is_file() && !name.starts_with(TMP_PREFIX) {
                out.push(key);
            }
        }
        Ok(())
    }
}

impl Storage for FilesystemStorage {
    fn kind(&self) -> &'static str {
        "fs"
    }

    fn get(&self, key: &str) -> Result<Arc<[u8]>> {
        let path = self.path_of(key)?;
        fs::read(&path)
            .map(Arc::from)
            .map_err(|e| io_err("get", key, &e))
    }

    fn get_range(&self, key: &str, range: ByteRange) -> Result<Vec<u8>> {
        let mut f = self.open_file("get_range", key, OpenOptions::new().read(true))?;
        let size = f
            .metadata()
            .map_err(|e| io_err("get_range", key, &e))?
            .len();
        let r = range.resolve(size)?;
        f.seek(SeekFrom::Start(r.start as u64))
            .map_err(|e| io_err("get_range", key, &e))?;
        let mut out = vec![0u8; r.len()];
        f.read_exact(&mut out)
            .map_err(|e| io_err("get_range", key, &e))?;
        Ok(out)
    }

    fn set(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| io_err("set", key, &e))?;
        }
        // Atomic replace: stage a uniquely named sibling, then rename
        // over the target. The temp name starts with a dot so `list`
        // never surfaces a half-written object.
        let tmp = path.with_file_name(format!(
            "{TMP_PREFIX}{}-{}-{}",
            path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, bytes).map_err(|e| io_err("set", key, &e))?;
        fs::rename(&tmp, &path).map_err(|e| {
            fs::remove_file(&tmp).ok();
            io_err("set", key, &e)
        })
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| io_err("append", key, &e))?;
        }
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io_err("append", key, &e))?;
        f.write_all(bytes).map_err(|e| io_err("append", key, &e))?;
        f.metadata()
            .map(|m| m.len())
            .map_err(|e| io_err("append", key, &e))
    }

    fn write_at(&self, key: &str, offset: u64, bytes: &[u8]) -> Result<()> {
        let mut f = self.open_file("write_at", key, OpenOptions::new().read(true).write(true))?;
        let size = f.metadata().map_err(|e| io_err("write_at", key, &e))?.len();
        ByteRange::Bounded { offset, len: bytes.len() as u64 }.resolve(size)?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err("write_at", key, &e))?;
        f.write_all(bytes).map_err(|e| io_err("write_at", key, &e))
    }

    fn size(&self, key: &str) -> Result<u64> {
        let path = self.path_of(key)?;
        let meta = fs::metadata(&path).map_err(|e| io_err("size", key, &e))?;
        if meta.is_file() {
            Ok(meta.len())
        } else {
            Err(CodecError::NoSuchKey { key: key.to_string() })
        }
    }

    fn erase(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("erase", key, &e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        self.walk(&self.root, "", &mut out)
            .map_err(|e| CodecError::StorageIo {
                op: "list",
                detail: format!("{}: {e}", self.root.display()),
            })?;
        out.sort();
        Ok(out)
    }
}
