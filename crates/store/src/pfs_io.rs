//! Routing store streams through the PFS model.
//!
//! A chunked stream maps naturally onto object placement: the manifest
//! lands on the first OST, every *object* is round-robined across the
//! targets (see [`PfsSim::write_chunks`]). For an unsharded store the
//! objects are the chunks themselves; a sharded (v3) store places whole
//! `EBSH` shards instead — far fewer, larger objects, which is the
//! point of sharding at scale. Partial reads then pay I/O only for the
//! byte ranges a region actually touches: bare chunk payloads when
//! unsharded, touched slots plus each touched shard's inner index when
//! sharded.

use crate::grid::Region;
use crate::store::ChunkedStore;
use eblcio_energy::CpuProfile;
use eblcio_pfs::{IoMeasurement, PfsSim};
use std::collections::BTreeMap;

/// Simulates writing a chunked stream with its placement objects
/// (chunks, or shards when sharded) striped across the file system's
/// OSTs (manifest charged as metadata).
pub fn write_store(
    pfs: &PfsSim,
    store: &ChunkedStore,
    efficiency: f64,
    writers: u32,
    profile: &CpuProfile,
) -> IoMeasurement {
    pfs.write_chunks(
        &store.object_lens(),
        store.manifest_len() as u64,
        efficiency,
        writers,
        profile,
    )
}

/// Simulates publishing the *latest generation* of a mutable store:
/// the chunks that generation rewrote are new objects (placed at their
/// chunk index, like the original write), each replaced object costs an
/// unlink RPC on the OST that held it, and the new manifest is
/// metadata. Untouched chunks cost nothing — the copy-on-write point.
///
/// `store` must be a generation of a
/// [`MutableStore`](crate::mutable::MutableStore) (a static store has
/// no "latest update" to cost; it returns the manifest-only rewrite).
pub fn update_io(
    pfs: &PfsSim,
    store: &ChunkedStore,
    efficiency: f64,
    writers: u32,
    profile: &CpuProfile,
) -> IoMeasurement {
    let generation = store.generation();
    let lens = store.chunk_lens();
    let written: Vec<(usize, u64)> = (0..store.n_chunks())
        .filter(|&i| generation > 0 && store.chunk_born_gen(i) == generation)
        .map(|i| (i, lens[i]))
        .collect();
    // A parentless generation (initial import, or a compaction) wrote
    // fresh objects without replacing anything — no unlinks to charge.
    let parentless = store
        .manifest()
        .generation
        .as_ref()
        .is_none_or(|g| g.parent == 0);
    let replaced: Vec<usize> = if parentless {
        Vec::new()
    } else {
        written.iter().map(|&(i, _)| i).collect()
    };
    pfs.rewrite_chunks(
        &written,
        &replaced,
        store.manifest_len() as u64,
        efficiency,
        writers,
        profile,
    )
}

/// Simulates reading back exactly the bytes a region read touches
/// (manifest re-read included — a reader must parse the index first).
/// Each touched object keeps its write-time placement index, so the
/// read lands on the OSTs the round-robin actually placed it on. For a
/// sharded store a touched shard is charged its inner index once plus
/// the touched slots' payloads — ranged reads within one object, not
/// the whole shard.
pub fn read_region_io(
    pfs: &PfsSim,
    store: &ChunkedStore,
    region: &Region,
    efficiency: f64,
    readers: u32,
    profile: &CpuProfile,
) -> IoMeasurement {
    let lens = store.chunk_lens();
    let hits = store.grid().chunks_intersecting(region);
    let touched: Vec<(usize, u64)> = match store.sharding() {
        None => hits.into_iter().map(|i| (i, lens[i])).collect(),
        Some(table) => {
            // Aggregate per touched shard: slots' bytes + index once.
            let mut per_shard: BTreeMap<usize, u64> = BTreeMap::new();
            for i in hits {
                let s = table.chunk_slots[i].shard as usize;
                *per_shard.entry(s).or_insert(table.index_lens[s]) += lens[i];
            }
            per_shard.into_iter().collect()
        }
    };
    pfs.read_chunks(
        &touched,
        store.manifest_len() as u64,
        efficiency,
        readers,
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_codec::{CompressorId, ErrorBound};
    use eblcio_data::{NdArray, Shape};
    use eblcio_energy::CpuGeneration;

    fn store_stream() -> Vec<u8> {
        let data = NdArray::<f32>::from_fn(Shape::d3(32, 16, 16), |i| {
            ((i[0] + i[1]) as f32 * 0.1).sin() * 10.0 + i[2] as f32
        });
        let codec = CompressorId::Szx.instance();
        ChunkedStore::write(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d3(8, 16, 16),
            2,
        )
        .unwrap()
    }

    #[test]
    fn sharded_region_read_pays_slots_and_index_not_whole_shards() {
        let data = NdArray::<f32>::from_fn(Shape::d3(32, 16, 16), |i| {
            ((i[0] + i[1]) as f32 * 0.1).sin() * 10.0 + i[2] as f32
        });
        let codec = CompressorId::Szx.instance();
        let stream = ChunkedStore::write_sharded(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d3(8, 16, 16),
            2,
            2,
        )
        .unwrap();
        let store = ChunkedStore::open(&stream).unwrap();
        let pfs = PfsSim::testbed();
        let profile = CpuGeneration::Skylake8160.profile();
        // Writing places shard objects (2 shards), not 4 chunk objects.
        assert_eq!(store.object_lens().len(), 2);
        let w = write_store(&pfs, &store, 0.9, 1, &profile);
        // Reading one slab touches one chunk = one slot of one shard:
        // cheaper than the full write, and cheaper than reading both
        // slots of that shard would be.
        let one_slab = Region::new(&[0, 0, 0], &[8, 16, 16]);
        let r = read_region_io(&pfs, &store, &one_slab, 0.9, 1, &profile);
        assert!(r.storage_energy.value() < w.storage_energy.value());
        let two_slabs = Region::new(&[0, 0, 0], &[16, 16, 16]);
        let r2 = read_region_io(&pfs, &store, &two_slabs, 0.9, 1, &profile);
        assert!(r.storage_energy.value() < r2.storage_energy.value());
    }

    #[test]
    fn small_update_io_is_cheaper_than_full_rewrite() {
        use crate::mutable::MutableStore;
        let data = NdArray::<f32>::from_fn(Shape::d3(32, 16, 16), |i| {
            ((i[0] + i[1]) as f32 * 0.1).sin() * 10.0 + i[2] as f32
        });
        let codec = CompressorId::Szx.instance();
        let mut store = MutableStore::create(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d3(8, 16, 16),
            2,
        )
        .unwrap();
        let pfs = PfsSim::testbed();
        let profile = CpuGeneration::Skylake8160.profile();
        let full = write_store(&pfs, &store.current().unwrap(), 0.9, 1, &profile);
        // Rewrite one of the four slabs, then cost the publish.
        let patch = NdArray::<f32>::from_fn(Shape::d3(8, 16, 16), |_| 1.0);
        store
            .update_region(&crate::grid::Region::new(&[8, 0, 0], &[8, 16, 16]), &patch, 2)
            .unwrap();
        let cur = store.current().unwrap();
        let upd = update_io(&pfs, &cur, 0.9, 1, &profile);
        assert!(upd.storage_energy.value() < full.storage_energy.value() / 2.0);
        assert!(upd.seconds.value() < full.seconds.value());
    }

    #[test]
    fn region_read_io_is_cheaper_than_full_write() {
        let stream = store_stream();
        let store = ChunkedStore::open(&stream).unwrap();
        let pfs = PfsSim::testbed();
        let profile = CpuGeneration::Skylake8160.profile();
        let w = write_store(&pfs, &store, 0.9, 1, &profile);
        let one_slab = Region::new(&[0, 0, 0], &[8, 16, 16]);
        let r = read_region_io(&pfs, &store, &one_slab, 0.9, 1, &profile);
        assert!(r.storage_energy.value() < w.storage_energy.value());
        assert!(r.seconds.value() < w.seconds.value());
    }
}
