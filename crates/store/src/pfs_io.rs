//! Routing store streams through the PFS model.
//!
//! A chunked stream maps naturally onto object placement: the manifest
//! lands on the first OST, every chunk is a whole object round-robined
//! across the targets (see [`PfsSim::write_chunks`]). Partial reads
//! then pay I/O only for the chunks a region actually touches.

use crate::grid::Region;
use crate::store::ChunkedStore;
use eblcio_energy::CpuProfile;
use eblcio_pfs::{IoMeasurement, PfsSim};

/// Simulates writing a chunked stream with its chunks striped across
/// the file system's OSTs (manifest charged as metadata).
pub fn write_store(
    pfs: &PfsSim,
    store: &ChunkedStore<'_>,
    efficiency: f64,
    writers: u32,
    profile: &CpuProfile,
) -> IoMeasurement {
    pfs.write_chunks(
        &store.chunk_lens(),
        store.manifest_len() as u64,
        efficiency,
        writers,
        profile,
    )
}

/// Simulates reading back exactly the chunks a region read touches
/// (manifest re-read included — a reader must parse the index first).
/// Each touched chunk keeps its raster index, so the read lands on the
/// OSTs the write-time round-robin actually placed it on.
pub fn read_region_io(
    pfs: &PfsSim,
    store: &ChunkedStore<'_>,
    region: &Region,
    efficiency: f64,
    readers: u32,
    profile: &CpuProfile,
) -> IoMeasurement {
    let lens = store.chunk_lens();
    let touched: Vec<(usize, u64)> = store
        .grid()
        .chunks_intersecting(region)
        .into_iter()
        .map(|i| (i, lens[i]))
        .collect();
    pfs.read_chunks(
        &touched,
        store.manifest_len() as u64,
        efficiency,
        readers,
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_codec::{CompressorId, ErrorBound};
    use eblcio_data::{NdArray, Shape};
    use eblcio_energy::CpuGeneration;

    fn store_stream() -> Vec<u8> {
        let data = NdArray::<f32>::from_fn(Shape::d3(32, 16, 16), |i| {
            ((i[0] + i[1]) as f32 * 0.1).sin() * 10.0 + i[2] as f32
        });
        let codec = CompressorId::Szx.instance();
        ChunkedStore::write(
            codec.as_ref(),
            &data,
            ErrorBound::Relative(1e-3),
            Shape::d3(8, 16, 16),
            2,
        )
        .unwrap()
    }

    #[test]
    fn region_read_io_is_cheaper_than_full_write() {
        let stream = store_stream();
        let store = ChunkedStore::open(&stream).unwrap();
        let pfs = PfsSim::testbed();
        let profile = CpuGeneration::Skylake8160.profile();
        let w = write_store(&pfs, &store, 0.9, 1, &profile);
        let one_slab = Region::new(&[0, 0, 0], &[8, 16, 16]);
        let r = read_region_io(&pfs, &store, &one_slab, 0.9, 1, &profile);
        assert!(r.storage_energy.value() < w.storage_energy.value());
        assert!(r.seconds.value() < w.seconds.value());
    }
}
