//! The regular chunk grid and axis-aligned regions.
//!
//! A store splits an array into a grid of equally shaped chunks
//! (clipped at the upper edges, like zarr's regular grid). Chunks are
//! numbered in raster order of the grid, so chunk 0 holds the array
//! origin and the last chunk holds the far corner.

use eblcio_data::shape::MAX_RANK;
use eblcio_data::{Element, NdArray, Shape};

/// An axis-aligned box inside an array: `origin[d] .. origin[d] + extent[d]`
/// per dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    origin: [usize; MAX_RANK],
    extent: [usize; MAX_RANK],
    rank: usize,
}

impl Region {
    /// Creates a region from per-dimension origins and extents.
    ///
    /// # Panics
    /// Panics if the slices disagree in length, the rank is not 1–4, or
    /// any extent is zero.
    pub fn new(origin: &[usize], extent: &[usize]) -> Self {
        assert_eq!(origin.len(), extent.len(), "origin/extent rank mismatch");
        assert!(
            !origin.is_empty() && origin.len() <= MAX_RANK,
            "region rank must be 1..={MAX_RANK}"
        );
        assert!(extent.iter().all(|&e| e > 0), "zero extent in region");
        let mut o = [0usize; MAX_RANK];
        let mut e = [1usize; MAX_RANK];
        o[..origin.len()].copy_from_slice(origin);
        e[..extent.len()].copy_from_slice(extent);
        Self {
            origin: o,
            extent: e,
            rank: origin.len(),
        }
    }

    /// The region covering all of `shape`.
    pub fn full(shape: Shape) -> Self {
        Self::new(&vec![0; shape.rank()], shape.dims())
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Per-dimension starting indices.
    #[inline]
    pub fn origin(&self) -> &[usize] {
        &self.origin[..self.rank]
    }

    /// Per-dimension lengths.
    #[inline]
    pub fn extent(&self) -> &[usize] {
        &self.extent[..self.rank]
    }

    /// The region's extents as a [`Shape`].
    pub fn shape(&self) -> Shape {
        Shape::new(self.extent())
    }

    /// Number of samples inside the region.
    pub fn len(&self) -> usize {
        self.extent().iter().product()
    }

    /// Regions are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the region lies entirely inside `shape`.
    pub fn fits_in(&self, shape: Shape) -> bool {
        self.rank == shape.rank()
            && (0..self.rank).all(|d| self.origin[d] + self.extent[d] <= shape.dim(d))
    }

    /// The overlap of two same-rank regions, if any.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.rank, other.rank, "region rank mismatch");
        let mut origin = [0usize; MAX_RANK];
        let mut extent = [1usize; MAX_RANK];
        for d in 0..self.rank {
            let lo = self.origin[d].max(other.origin[d]);
            let hi = (self.origin[d] + self.extent[d]).min(other.origin[d] + other.extent[d]);
            if lo >= hi {
                return None;
            }
            origin[d] = lo;
            extent[d] = hi - lo;
        }
        Some(Region {
            origin,
            extent,
            rank: self.rank,
        })
    }
}

/// A regular chunk grid over an array shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkGrid {
    array: Shape,
    chunk: Shape,
    counts: [usize; MAX_RANK],
    rank: usize,
}

impl ChunkGrid {
    /// Builds the grid for `array` with the given interior chunk shape.
    /// Chunk dimensions are clamped to the array dimensions, so an
    /// oversized chunk shape degenerates to one chunk along that axis.
    ///
    /// # Panics
    /// Panics if the ranks differ.
    pub fn new(array: Shape, chunk_shape: Shape) -> Self {
        assert_eq!(
            array.rank(),
            chunk_shape.rank(),
            "array and chunk rank mismatch"
        );
        let rank = array.rank();
        let mut chunk = [1usize; MAX_RANK];
        let mut counts = [1usize; MAX_RANK];
        for d in 0..rank {
            chunk[d] = chunk_shape.dim(d).min(array.dim(d));
            counts[d] = array.dim(d).div_ceil(chunk[d]);
        }
        Self {
            array,
            chunk: Shape::new(&chunk[..rank]),
            counts,
            rank,
        }
    }

    /// The stored array's shape.
    #[inline]
    pub fn array_shape(&self) -> Shape {
        self.array
    }

    /// The (interior) chunk shape; edge chunks are clipped.
    #[inline]
    pub fn chunk_shape(&self) -> Shape {
        self.chunk
    }

    /// Chunks along each dimension.
    #[inline]
    pub fn counts(&self) -> &[usize] {
        &self.counts[..self.rank]
    }

    /// Total number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.counts().iter().product()
    }

    /// Grid coordinates of chunk `i` (raster order).
    ///
    /// # Panics
    /// Panics if `i >= n_chunks()`.
    pub fn chunk_coords(&self, i: usize) -> [usize; MAX_RANK] {
        assert!(i < self.n_chunks(), "chunk {i} out of {}", self.n_chunks());
        let mut rem = i;
        let mut coords = [0usize; MAX_RANK];
        for d in (0..self.rank).rev() {
            coords[d] = rem % self.counts[d];
            rem /= self.counts[d];
        }
        coords
    }

    /// Raster-order index of the chunk at grid coordinates `coords`.
    pub fn chunk_index(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.rank, "coordinate rank mismatch");
        let mut i = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.counts[d], "grid coordinate out of range");
            i = i * self.counts[d] + c;
        }
        i
    }

    /// The array region chunk `i` covers (clipped at the upper edges).
    pub fn chunk_region(&self, i: usize) -> Region {
        let coords = self.chunk_coords(i);
        let mut origin = [0usize; MAX_RANK];
        let mut extent = [1usize; MAX_RANK];
        for d in 0..self.rank {
            origin[d] = coords[d] * self.chunk.dim(d);
            extent[d] = self.chunk.dim(d).min(self.array.dim(d) - origin[d]);
        }
        Region::new(&origin[..self.rank], &extent[..self.rank])
    }

    /// True when chunk `i` is a contiguous dimension-0 slab of the
    /// row-major array (chunking splits only dimension 0), which lets
    /// the writer compress it from a zero-copy borrowed view.
    pub fn chunk_is_slab(&self, i: usize) -> bool {
        let r = self.chunk_region(i);
        (1..self.rank).all(|d| r.origin()[d] == 0 && r.extent()[d] == self.array.dim(d))
    }

    /// Raster-order indices of every chunk overlapping `region`.
    ///
    /// # Panics
    /// Panics if the region does not fit inside the array shape.
    pub fn chunks_intersecting(&self, region: &Region) -> Vec<usize> {
        let mut out = Vec::new();
        self.chunks_intersecting_into(region, &mut out);
        out
    }

    /// [`ChunkGrid::chunks_intersecting`] into a caller-owned buffer —
    /// `out` is cleared, then filled. Reusing one buffer across
    /// requests keeps a hot serving loop free of per-request heap
    /// allocation (see `eblcio_serve`'s warm read path).
    ///
    /// # Panics
    /// Panics if the region does not fit inside the array shape.
    pub fn chunks_intersecting_into(&self, region: &Region, out: &mut Vec<usize>) {
        assert!(
            region.fits_in(self.array),
            "region out of array bounds {}",
            self.array
        );
        out.clear();
        let mut lo = [0usize; MAX_RANK];
        let mut hi = [0usize; MAX_RANK];
        for d in 0..self.rank {
            lo[d] = region.origin()[d] / self.chunk.dim(d);
            hi[d] = (region.origin()[d] + region.extent()[d] - 1) / self.chunk.dim(d);
        }
        let mut coords = lo;
        loop {
            out.push(self.chunk_index(&coords[..self.rank]));
            // Raster-order advance through the [lo, hi] box.
            let mut d = self.rank;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] <= hi[d] {
                    break;
                }
                coords[d] = lo[d];
            }
        }
    }
}

/// Copies the axis-aligned box `extent` from `src` (starting at
/// `src_origin`) into `dst` (starting at `dst_origin`). The innermost
/// dimension is copied as contiguous runs. Public because every layer
/// that assembles regions from decoded chunks — the store's read paths
/// and `eblcio_serve`'s parallel region engine — scatters through this
/// one routine.
pub fn copy_region<T: Element>(
    src: &[T],
    src_shape: Shape,
    src_origin: &[usize],
    dst: &mut [T],
    dst_shape: Shape,
    dst_origin: &[usize],
    extent: &[usize],
) {
    let rank = src_shape.rank();
    debug_assert_eq!(dst_shape.rank(), rank);
    let src_strides = src_shape.strides();
    let dst_strides = dst_shape.strides();
    let run = extent[rank - 1];
    let outer: usize = extent[..rank - 1].iter().product();
    let mut local = [0usize; MAX_RANK];
    for _ in 0..outer.max(1) {
        let mut s_off = 0usize;
        let mut d_off = 0usize;
        for d in 0..rank - 1 {
            s_off += (src_origin[d] + local[d]) * src_strides[d];
            d_off += (dst_origin[d] + local[d]) * dst_strides[d];
        }
        s_off += src_origin[rank - 1] * src_strides[rank - 1];
        d_off += dst_origin[rank - 1] * dst_strides[rank - 1];
        dst[d_off..d_off + run].copy_from_slice(&src[s_off..s_off + run]);
        for d in (0..rank.saturating_sub(1)).rev() {
            local[d] += 1;
            if local[d] < extent[d] {
                break;
            }
            local[d] = 0;
        }
    }
}

/// Scatters the slice of a decoded chunk that overlaps `region` into
/// `out` (shaped as `region`): the one definition of the
/// chunk-to-region offset arithmetic, shared by every region assembler
/// (the store's read paths and `eblcio_serve`'s region engine). A
/// chunk that does not intersect the region is a no-op.
pub fn scatter_chunk<T: Element>(
    part: &NdArray<T>,
    chunk_region: &Region,
    region: &Region,
    out: &mut NdArray<T>,
) {
    let Some(inter) = chunk_region.intersect(region) else {
        return;
    };
    let rank = inter.rank();
    let mut src_origin = [0usize; MAX_RANK];
    let mut dst_origin = [0usize; MAX_RANK];
    for d in 0..rank {
        src_origin[d] = inter.origin()[d] - chunk_region.origin()[d];
        dst_origin[d] = inter.origin()[d] - region.origin()[d];
    }
    copy_region(
        part.as_slice(),
        part.shape(),
        &src_origin[..rank],
        out.as_mut_slice(),
        region.shape(),
        &dst_origin[..rank],
        inter.extent(),
    );
}

/// Extracts `region` of `src` into a new owned array.
pub fn gather<T: Element>(src: &NdArray<T>, region: &Region) -> NdArray<T> {
    let shape = region.shape();
    let mut out = NdArray::zeros(shape);
    copy_region(
        src.as_slice(),
        src.shape(),
        region.origin(),
        out.as_mut_slice(),
        shape,
        &[0usize; MAX_RANK][..shape.rank()],
        region.extent(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts_and_edges() {
        let g = ChunkGrid::new(Shape::d2(10, 7), Shape::d2(4, 4));
        assert_eq!(g.counts(), &[3, 2]);
        assert_eq!(g.n_chunks(), 6);
        // Last chunk is clipped in both dimensions.
        let r = g.chunk_region(5);
        assert_eq!(r.origin(), &[8, 4]);
        assert_eq!(r.extent(), &[2, 3]);
    }

    #[test]
    fn coords_index_roundtrip() {
        let g = ChunkGrid::new(Shape::d3(9, 5, 6), Shape::d3(4, 2, 5));
        for i in 0..g.n_chunks() {
            let c = g.chunk_coords(i);
            assert_eq!(g.chunk_index(&c[..3]), i);
        }
    }

    #[test]
    fn regions_tile_the_array() {
        let g = ChunkGrid::new(Shape::d3(9, 5, 6), Shape::d3(4, 2, 5));
        let mut seen = vec![0u32; g.array_shape().len()];
        for i in 0..g.n_chunks() {
            let r = g.chunk_region(i);
            let shape = g.array_shape();
            let mut idx = [0usize; MAX_RANK];
            let total = r.len();
            for _ in 0..total {
                let mut off = 0;
                for (d, &i) in idx[..shape.rank()].iter().enumerate() {
                    off += (r.origin()[d] + i) * shape.strides()[d];
                }
                seen[off] += 1;
                for d in (0..shape.rank()).rev() {
                    idx[d] += 1;
                    if idx[d] < r.extent()[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "chunks must tile exactly once");
    }

    #[test]
    fn oversized_chunk_clamps_to_one() {
        let g = ChunkGrid::new(Shape::d2(5, 3), Shape::d2(100, 100));
        assert_eq!(g.n_chunks(), 1);
        assert_eq!(g.chunk_shape(), Shape::d2(5, 3));
        assert!(g.chunk_is_slab(0));
    }

    #[test]
    fn slab_detection() {
        let g = ChunkGrid::new(Shape::d2(10, 6), Shape::d2(4, 6));
        assert!((0..g.n_chunks()).all(|i| g.chunk_is_slab(i)));
        let g2 = ChunkGrid::new(Shape::d2(10, 6), Shape::d2(4, 3));
        assert!(!(0..g2.n_chunks()).all(|i| g2.chunk_is_slab(i)));
    }

    #[test]
    fn intersecting_chunks_of_interior_region() {
        let g = ChunkGrid::new(Shape::d2(8, 8), Shape::d2(4, 4));
        // The region [2..6, 2..6] straddles all four chunks.
        let all = g.chunks_intersecting(&Region::new(&[2, 2], &[4, 4]));
        assert_eq!(all, vec![0, 1, 2, 3]);
        // A region inside one chunk touches only it.
        let one = g.chunks_intersecting(&Region::new(&[5, 1], &[2, 2]));
        assert_eq!(one, vec![2]);
    }

    #[test]
    fn region_intersection() {
        let a = Region::new(&[0, 0], &[4, 4]);
        let b = Region::new(&[2, 3], &[5, 5]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.origin(), &[2, 3]);
        assert_eq!(i.extent(), &[2, 1]);
        let c = Region::new(&[4, 0], &[1, 1]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn gather_copies_the_right_box() {
        let a = NdArray::<f32>::from_fn(Shape::d2(6, 5), |i| (i[0] * 10 + i[1]) as f32);
        let r = Region::new(&[2, 1], &[3, 2]);
        let g = gather(&a, &r);
        assert_eq!(g.shape(), Shape::d2(3, 2));
        assert_eq!(g.as_slice(), &[21.0, 22.0, 31.0, 32.0, 41.0, 42.0]);
    }

    #[test]
    fn copy_region_roundtrips_through_scatter() {
        let a = NdArray::<f64>::from_fn(Shape::d3(4, 3, 5), |i| {
            (i[0] * 100 + i[1] * 10 + i[2]) as f64
        });
        let r = Region::new(&[1, 0, 2], &[2, 3, 2]);
        let piece = gather(&a, &r);
        let mut back = NdArray::<f64>::zeros(a.shape());
        copy_region(
            piece.as_slice(),
            piece.shape(),
            &[0, 0, 0],
            back.as_mut_slice(),
            a.shape(),
            r.origin(),
            r.extent(),
        );
        // Everything inside the region matches, everything outside is 0.
        for off in 0..a.len() {
            let idx = a.shape().unoffset(off);
            let inside = (0..3).all(|d| {
                idx[d] >= r.origin()[d] && idx[d] < r.origin()[d] + r.extent()[d]
            });
            let expect = if inside { a.as_slice()[off] } else { 0.0 };
            assert_eq!(back.as_slice()[off], expect, "offset {off}");
        }
    }

    #[test]
    #[should_panic]
    fn region_outside_array_rejected() {
        let g = ChunkGrid::new(Shape::d1(8), Shape::d1(4));
        let _ = g.chunks_intersecting(&Region::new(&[6], &[4]));
    }
}
