//! # eblcio-store
//!
//! A zarr-inspired chunked container over the EBLC codecs: an
//! [`NdArray`](eblcio_data::NdArray) is split into a regular chunk
//! grid, every chunk is compressed independently (in parallel, with ε
//! resolved once against the global value range so the whole-array
//! error contract holds), and a self-describing manifest indexes the
//! chunk payloads.
//!
//! What chunking buys over the paper's monolithic streams:
//!
//! * **partial reads** — [`ChunkedStore::read_region`] decompresses
//!   only the chunks an axis-aligned region intersects,
//! * **parallel scaling** — writes and full reads fan chunks out over
//!   the shared rayon pool,
//! * **placement** — chunks map onto PFS object placement
//!   ([`pfs_io::write_store`] stripes them round-robin across OSTs), so
//!   only the touched chunks pay I/O energy on read-back,
//! * **per-chunk accounting** — [`ChunkedStore::chunk_quality`] reports
//!   one [`QualityReport`](eblcio_data::QualityReport) per chunk,
//! * **mutability** — [`MutableStore`] wraps a store in an `EBMS` file
//!   with copy-on-write chunk updates published as crash-consistent
//!   manifest generations: readers opened on generation N are
//!   bit-stable while N+1 is written, [`MutableStore::open_at`]
//!   time-travels, and [`MutableStore::compact`] reclaims dead bytes
//!   (see [`mutable`]).
//!
//! ```
//! use eblcio_codec::{CompressorId, ErrorBound};
//! use eblcio_data::{NdArray, Shape};
//! use eblcio_store::{ChunkedStore, Region};
//!
//! let data = NdArray::<f32>::from_fn(Shape::d2(64, 64), |i| {
//!     (i[0] as f32 * 0.1).sin() + (i[1] as f32 * 0.1).cos()
//! });
//! let codec = CompressorId::Sz3.instance();
//! let stream = ChunkedStore::write(
//!     codec.as_ref(), &data, ErrorBound::Relative(1e-3), Shape::d2(16, 16), 4,
//! ).unwrap();
//!
//! let store = ChunkedStore::open(&stream).unwrap();
//! assert_eq!(store.n_chunks(), 16);
//! // Read one 8×8 corner: only a single 16×16 chunk is decompressed.
//! let (corner, stats) = store
//!     .read_region_with_stats::<f32>(&Region::new(&[0, 0], &[8, 8]))
//!     .unwrap();
//! assert_eq!(corner.shape(), Shape::d2(8, 8));
//! assert_eq!(stats.chunks_decoded, 1);
//! ```

#![forbid(unsafe_code)]

pub mod grid;
pub mod manifest;
mod metrics;
pub mod mutable;
pub mod pfs_io;
pub mod shard;
pub mod storage;
pub mod store;

pub use grid::{copy_region, gather, scatter_chunk, ChunkGrid, Region};
pub use manifest::{ChunkEntry, ChunkSlot, GenerationMeta, Manifest, ShardTable};
pub use mutable::{
    CompactStats, GenerationSummary, MutableStore, PublishOps, StoreWriter, UpdateStats,
};
pub use pfs_io::{read_region_io, update_io, write_store};
pub use shard::{build_shard, ShardIndex, SlotEntry};
pub use storage::{
    named_backend, ByteRange, FaultPlan, FaultyStorage, FilesystemStorage, MemoryStorage,
    MeteredStorage, ObjectCostModel, ObjectStoreStats, SimulatedObjectStorage, Storage,
};
pub use store::{ChunkedStore, RegionReadStats};
