//! The self-describing chunked-store container format.
//!
//! ```text
//! "EBCS" | version u8 | codec u8 | dtype u8 | rank u8
//! dims (rank × varint) | chunk dims (rank × varint)
//! abs_bound f64 | n_chunks varint
//! index: n_chunks × (offset varint, length varint)
//! manifest crc32 u32 | chunk payloads…
//! ```
//!
//! Offsets are relative to the payload start and must be contiguous in
//! write order; the CRC covers every manifest byte before it, so a
//! flipped bit in the index is caught before any chunk is decoded. Each
//! chunk payload is itself a complete `EBLC` stream with its own
//! header and payload checksum.

use crate::grid::ChunkGrid;
use eblcio_codec::util::{crc32, put_varint, ByteReader};
use eblcio_codec::{CodecError, CompressorId, Result};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::Shape;

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"EBCS";
/// Current container version.
pub const VERSION: u8 = 1;

/// Location of one compressed chunk inside the payload section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset from the payload start.
    pub offset: u64,
    /// Compressed length in bytes.
    pub len: u64,
}

/// Parsed store manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Codec that produced every chunk.
    pub codec: CompressorId,
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Full array shape.
    pub shape: Shape,
    /// Interior chunk shape (edge chunks are clipped).
    pub chunk_shape: Shape,
    /// Absolute error bound resolved against the global value range.
    pub abs_bound: f64,
    /// Per-chunk offset/length index in raster order of the chunk grid.
    pub chunks: Vec<ChunkEntry>,
}

impl Manifest {
    /// The chunk grid this manifest describes.
    pub fn grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.shape, self.chunk_shape)
    }

    /// Total payload bytes across all chunks.
    pub fn payload_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// Serializes the manifest (everything before the payload bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.chunks.len() * 6);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.codec as u8);
        out.push(self.dtype);
        out.push(self.shape.rank() as u8);
        for &d in self.shape.dims() {
            put_varint(&mut out, d as u64);
        }
        for &d in self.chunk_shape.dims() {
            put_varint(&mut out, d as u64);
        }
        out.extend_from_slice(&self.abs_bound.to_bits().to_le_bytes());
        put_varint(&mut out, self.chunks.len() as u64);
        for c in &self.chunks {
            put_varint(&mut out, c.offset);
            put_varint(&mut out, c.len);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a manifest from the head of `stream`,
    /// returning it together with the payload start offset.
    pub fn decode(stream: &[u8]) -> Result<(Self, usize)> {
        let mut r = ByteReader::new(stream);
        if r.take(4, "store magic")? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u8("store version")?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let codec = CompressorId::from_u8(r.u8("store codec")?)?;
        let dtype = r.u8("store dtype")?;
        if dtype > 1 {
            return Err(CodecError::Corrupt { context: "store dtype" });
        }
        let rank = r.u8("store rank")? as usize;
        if rank == 0 || rank > MAX_RANK {
            return Err(CodecError::Corrupt { context: "store rank" });
        }
        let mut dims = [0usize; MAX_RANK];
        for d in dims.iter_mut().take(rank) {
            *d = r.varint("store dimension")? as usize;
            if *d == 0 {
                return Err(CodecError::Corrupt { context: "store dimension" });
            }
        }
        let shape = Shape::new(&dims[..rank]);
        let mut cdims = [0usize; MAX_RANK];
        for (d, &dim) in cdims.iter_mut().zip(&dims).take(rank) {
            *d = r.varint("store chunk dimension")? as usize;
            if *d == 0 || *d > dim {
                return Err(CodecError::Corrupt { context: "store chunk dimension" });
            }
        }
        let chunk_shape = Shape::new(&cdims[..rank]);
        let abs_bound = r.f64("store abs bound")?;
        if !(abs_bound.is_finite() && abs_bound > 0.0) {
            return Err(CodecError::Corrupt { context: "store abs bound" });
        }
        let n_chunks = r.varint("store chunk count")? as usize;
        // Every chunk needs at least two index bytes ahead of us plus
        // one payload byte, so a count beyond the remaining stream
        // cannot be valid. Checked *before* the count sizes any
        // allocation or feeds a grid product: both are driven by
        // untrusted header fields, and a corrupt stream must produce
        // `Err`, never an abort.
        if n_chunks == 0 || n_chunks > r.remaining() / 2 {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let expected = (0..rank).fold(1u128, |acc, d| {
            acc.saturating_mul(dims[d].div_ceil(cdims[d]) as u128)
        });
        if n_chunks as u128 != expected {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut next = 0u64;
        for _ in 0..n_chunks {
            let offset = r.varint("store chunk offset")?;
            let len = r.varint("store chunk length")?;
            if offset != next || len == 0 {
                return Err(CodecError::Corrupt { context: "store chunk index" });
            }
            next = offset
                .checked_add(len)
                .ok_or(CodecError::Corrupt { context: "store chunk index" })?;
            chunks.push(ChunkEntry { offset, len });
        }
        let manifest_len = r.position();
        let crc_stored = r.u32("store manifest crc")?;
        if crc_stored != crc32(&stream[..manifest_len]) {
            return Err(CodecError::ChecksumMismatch);
        }
        let payload_start = r.position();
        if stream.len() - payload_start != next as usize {
            return Err(CodecError::TruncatedStream { context: "store payload" });
        }
        Ok((
            Self {
                codec,
                dtype,
                shape,
                chunk_shape,
                abs_bound,
                chunks,
            },
            payload_start,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            codec: CompressorId::Sz3,
            dtype: 0,
            shape: Shape::d2(10, 7),
            chunk_shape: Shape::d2(4, 4),
            abs_bound: 1e-3,
            chunks: vec![
                ChunkEntry { offset: 0, len: 9 },
                ChunkEntry { offset: 9, len: 4 },
                ChunkEntry { offset: 13, len: 11 },
                ChunkEntry { offset: 24, len: 2 },
                ChunkEntry { offset: 26, len: 7 },
                ChunkEntry { offset: 33, len: 5 },
            ],
        }
    }

    fn stream_of(m: &Manifest) -> Vec<u8> {
        let mut s = m.encode();
        s.extend(std::iter::repeat_n(0xAB, m.payload_len() as usize));
        s
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let s = stream_of(&m);
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(s.len() - payload_start, m.payload_len() as usize);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let s = stream_of(&sample());
        for cut in 0..s.len() {
            assert!(Manifest::decode(&s[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn flipped_manifest_bit_caught_by_crc() {
        let s = stream_of(&sample());
        // Flip one bit in every manifest byte after the magic/version
        // (those two have dedicated errors) and expect rejection.
        let manifest_end = s.len() - sample().payload_len() as usize;
        for i in 5..manifest_end {
            let mut bad = s.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn non_contiguous_index_rejected() {
        let mut m = sample();
        m.chunks[3].offset += 1;
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn wrong_chunk_count_rejected() {
        let mut m = sample();
        m.chunks.pop();
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn bad_abs_bound_rejected() {
        for bad in [f64::NAN, 0.0, -2.0, f64::INFINITY] {
            let mut m = sample();
            m.abs_bound = bad;
            assert!(Manifest::decode(&stream_of(&m)).is_err(), "bound {bad}");
        }
    }

    #[test]
    fn huge_fake_chunk_count_returns_err_without_allocating() {
        // A tiny stream claiming an astronomically chunked array must be
        // rejected (not abort on a capacity overflow). Hand-build the
        // header so the grid product would be ~2^40.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.push(VERSION);
        s.push(CompressorId::Szx as u8);
        s.push(0); // dtype f32
        s.push(1); // rank 1
        put_varint(&mut s, 1u64 << 40); // dim
        put_varint(&mut s, 1); // chunk dim -> 2^40 chunks
        s.extend_from_slice(&1e-3f64.to_bits().to_le_bytes());
        put_varint(&mut s, 1u64 << 40); // claimed chunk count
        let crc = crc32(&s);
        s.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Manifest::decode(&s),
            Err(CodecError::Corrupt { context: "store chunk count" })
        ));
    }

    #[test]
    fn oversized_chunk_dim_rejected() {
        // chunk dim > array dim cannot have been written (write clamps).
        let mut m = sample();
        m.chunk_shape = Shape::d2(11, 4);
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }
}
