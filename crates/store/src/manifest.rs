//! The self-describing chunked-store container format.
//!
//! Version 2 carries a chain table so one store can mix codecs across
//! chunks:
//!
//! ```text
//! "EBCS" | version=2 | dtype u8 | rank u8
//! dims (rank × varint) | chunk dims (rank × varint) | abs_bound f64
//! n_chains varint | chain specs…
//! n_chunks varint
//! index: n_chunks × (chain varint, offset varint, length varint)
//! manifest crc32 u32 | chunk payloads…
//! ```
//!
//! Version 3 is the *sharded* layout: instead of one contiguous payload
//! region indexed chunk-by-chunk, the payload is a sequence of `EBSH`
//! shard objects (see [`crate::shard`]), each packing many chunks
//! behind its own inner offset/length/CRC index. The manifest then maps
//! every chunk onto a (shard, slot) pair:
//!
//! ```text
//! "EBCS" | version=3 | dtype u8 | rank u8
//! dims (rank × varint) | chunk dims (rank × varint) | abs_bound f64
//! n_chains varint | chain specs…
//! n_shards varint | shard byte lengths (n_shards × varint)
//! n_chunks varint
//! index: n_chunks × (chain varint, shard varint, slot varint)
//! manifest crc32 u32 | shard objects…
//! ```
//!
//! The two-level index is what keeps million-chunk stores servable: the
//! manifest stays proportional to the *shard* count for placement
//! purposes while chunk-level addressing moves into the shards
//! themselves, exactly the trade zarrs' `sharding_indexed` codec makes.
//! [`Manifest::decode`] resolves the indirection eagerly (shard inner
//! indices are a few bytes per chunk), so every read path sees plain
//! offset/length [`ChunkEntry`]s regardless of version.
//!
//! Version 4 is the *generational* manifest used inside mutable `EBMS`
//! store files (see [`crate::mutable`]): chunk offsets are absolute
//! file offsets into an append-only object log (no contiguity
//! requirement — a chunk object may be shared with the parent
//! generation, copy-on-write), and the manifest carries the generation
//! chain plus per-chunk provenance:
//!
//! ```text
//! "EBCS" | version=4 | dtype u8 | rank u8
//! dims (rank × varint) | chunk dims (rank × varint) | abs_bound f64
//! generation varint | parent varint | parent_offset varint | parent_len varint
//! n_chains varint | chain specs…
//! n_chunks varint
//! index: n_chunks × (chain varint, offset varint, length varint,
//!                    born_gen varint, payload crc32 u32)
//! manifest crc32 u32
//! ```
//!
//! A v4 manifest is self-contained (no payload follows it — it ends at
//! its CRC trailer) and is only meaningful inside the mutable-store
//! file whose object log its offsets point into. `born_gen` records
//! the generation that wrote each chunk object; within one store
//! lineage a generation writes any chunk at most once, so
//! `(chunk index, born_gen)` uniquely identifies a chunk's *content* —
//! the fingerprint serving caches key on. The per-chunk CRC catches a
//! manifest pointing at torn or stale object bytes before the decode
//! starts.
//!
//! Version 1 manifests (a single codec id byte before the dtype, no
//! chain table or per-chunk chain column) remain readable: the codec
//! byte maps onto a one-entry chain table of its preset.
//!
//! For v1–v3, offsets are relative to the payload start and must be
//! contiguous in write order; the CRC covers every manifest byte before
//! it, so a flipped bit in the index is caught before any chunk is
//! decoded. Each chunk payload is itself a complete `EBLC` stream with
//! its own header and payload checksum.

use crate::grid::ChunkGrid;
use crate::shard::ShardIndex;
use eblcio_codec::framing;
use eblcio_codec::util::{put_varint, ByteReader};
use eblcio_codec::{ChainSpec, CodecError, CompressorId, Result};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::Shape;

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"EBCS";
/// Current unsharded container version (carries a chain table).
pub const VERSION: u8 = 2;
/// Legacy container version (single codec id byte).
pub const VERSION_V1: u8 = 1;
/// Sharded container version (chain table + shard table).
pub const VERSION_V3: u8 = 3;
/// Generational container version (mutable `EBMS` stores; absolute
/// offsets, generation chain, per-chunk provenance).
pub const VERSION_V4: u8 = 4;

/// Cap on distinct chains per store (sanity bound for corrupt headers).
pub const MAX_CHAINS: usize = 64;

/// Location of one compressed chunk inside the payload section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Index into the manifest's chain table.
    pub chain: u32,
    /// Byte offset from the payload start.
    pub offset: u64,
    /// Compressed length in bytes.
    pub len: u64,
}

/// A chunk's position in the two-level sharded index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSlot {
    /// Which shard object holds the chunk.
    pub shard: u32,
    /// Which slot of that shard's inner index.
    pub slot: u32,
}

/// Shard-table half of a v3 manifest: how the payload region is carved
/// into `EBSH` objects and how chunks map onto their slots.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ShardTable {
    /// Encoded byte length of each shard object, in payload order.
    pub shard_lens: Vec<u64>,
    /// Per-chunk (shard, slot) assignment in raster order.
    pub chunk_slots: Vec<ChunkSlot>,
    /// Inner-index bytes at the head of each shard (metadata overhead a
    /// partial reader pays per touched shard). Resolved at decode, not
    /// encoded.
    pub index_lens: Vec<u64>,
    /// Per-chunk payload CRC32 lifted out of the shards' inner indices
    /// at decode time, so readers can verify a chunk's bytes without
    /// re-walking the shard. Resolved at decode, not encoded.
    pub chunk_crcs: Vec<u32>,
}

impl ShardTable {
    /// Number of shard objects.
    pub fn n_shards(&self) -> usize {
        self.shard_lens.len()
    }
}

/// Generation half of a v4 manifest: where this snapshot sits in the
/// mutable store's history and which generation wrote each chunk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GenerationMeta {
    /// This snapshot's generation id (monotonically increasing, ≥ 1).
    pub generation: u64,
    /// Parent generation id (0 = no parent: the first generation, or a
    /// compaction that severed history).
    pub parent: u64,
    /// Absolute file offset of the parent's manifest (0 when no parent).
    pub parent_offset: u64,
    /// Byte length of the parent's manifest (0 when no parent).
    pub parent_len: u64,
    /// Per-chunk: the generation that wrote this chunk's object. A
    /// chunk untouched since the store was created carries 1; an
    /// updated chunk carries the generation of the update that last
    /// rewrote it. Folded with the payload CRC it forms the content
    /// fingerprint serving caches key on
    /// (`ChunkedStore::chunk_fingerprint`).
    pub born_gens: Vec<u64>,
    /// Per-chunk CRC32 of the object bytes, verified before decode.
    pub chunk_crcs: Vec<u32>,
}

/// Parsed store manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Full array shape.
    pub shape: Shape,
    /// Interior chunk shape (edge chunks are clipped).
    pub chunk_shape: Shape,
    /// Absolute error bound resolved against the global value range
    /// (every chain honours it).
    pub abs_bound: f64,
    /// The codec chains chunks reference by index.
    pub chains: Vec<ChainSpec>,
    /// Per-chunk chain/offset/length index in raster order of the
    /// chunk grid. For sharded (v3) manifests these entries are
    /// *resolved* through the shards' inner indices at decode time, so
    /// read paths never care about the indirection.
    pub chunks: Vec<ChunkEntry>,
    /// The shard table, when this is a v3 sharded store.
    pub sharding: Option<ShardTable>,
    /// Generation metadata, when this is a v4 manifest inside a
    /// mutable store. Mutually exclusive with `sharding`.
    pub generation: Option<GenerationMeta>,
}

impl Manifest {
    /// The chunk grid this manifest describes.
    pub fn grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.shape, self.chunk_shape)
    }

    /// Total bytes of the payload region after the manifest: the shard
    /// objects (chunk bytes *plus* their inner indices) when sharded,
    /// the bare chunk payloads otherwise. In both cases this equals
    /// `stream.len() - payload_start` for a stream this manifest
    /// describes.
    pub fn payload_len(&self) -> u64 {
        match &self.sharding {
            Some(t) => t.shard_lens.iter().sum(),
            None => self.chunks.iter().map(|c| c.len).sum(),
        }
    }

    /// The single paper codec behind this store, when every chunk uses
    /// one preset chain (`None` for mixed or custom-chain stores).
    pub fn codec_id(&self) -> Option<CompressorId> {
        match self.chains.as_slice() {
            [only] => only.preset_id(),
            _ => None,
        }
    }

    /// The recorded CRC32 of chunk `i`'s payload bytes, when this
    /// manifest carries one (v3 lifts them out of the shard indices, v4
    /// records them in the chunk index; v1/v2 have none and rely on the
    /// `EBLC` payload checksum alone).
    pub fn chunk_crc(&self, i: usize) -> Option<u32> {
        match (&self.sharding, &self.generation) {
            (Some(t), _) => t.chunk_crcs.get(i).copied(),
            (_, Some(g)) => g.chunk_crcs.get(i).copied(),
            _ => None,
        }
    }

    /// Serializes the manifest (for v1–v3, everything before the
    /// payload bytes; a v4 manifest is the complete encoding). Emits
    /// the v4 wire layout when generation metadata is present, v3 when
    /// a shard table is present, v2 otherwise.
    ///
    /// # Panics
    /// Panics if a shard table is present but its `chunk_slots` does
    /// not assign exactly one slot per entry of `chunks`, if generation
    /// metadata is present whose per-chunk columns do not cover every
    /// chunk, or if both a shard table and generation metadata are set.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.sharding.is_none() || self.generation.is_none(),
            "a manifest is sharded (v3) or generational (v4), never both"
        );
        let mut out = Vec::with_capacity(64 + self.chains.len() * 6 + self.chunks.len() * 12);
        out.extend_from_slice(MAGIC);
        out.push(match (&self.sharding, &self.generation) {
            (Some(_), _) => VERSION_V3,
            (_, Some(_)) => VERSION_V4,
            _ => VERSION,
        });
        out.push(self.dtype);
        framing::put_shape(&mut out, self.shape);
        for &d in self.chunk_shape.dims() {
            put_varint(&mut out, d as u64);
        }
        framing::put_abs_bound(&mut out, self.abs_bound);
        if let Some(g) = &self.generation {
            assert!(
                g.born_gens.len() == self.chunks.len() && g.chunk_crcs.len() == self.chunks.len(),
                "generational manifest must carry born_gen and crc for every chunk"
            );
            put_varint(&mut out, g.generation);
            put_varint(&mut out, g.parent);
            put_varint(&mut out, g.parent_offset);
            put_varint(&mut out, g.parent_len);
        }
        put_varint(&mut out, self.chains.len() as u64);
        for c in &self.chains {
            c.encode_into(&mut out);
        }
        if let Some(g) = &self.generation {
            put_varint(&mut out, self.chunks.len() as u64);
            for (i, c) in self.chunks.iter().enumerate() {
                put_varint(&mut out, u64::from(c.chain));
                put_varint(&mut out, c.offset);
                put_varint(&mut out, c.len);
                put_varint(&mut out, g.born_gens[i]);
                out.extend_from_slice(&g.chunk_crcs[i].to_le_bytes());
            }
            framing::put_crc_trailer(&mut out);
            return out;
        }
        match &self.sharding {
            Some(table) => {
                // Zipping below would otherwise silently truncate a
                // malformed manifest into a corrupt stream; surface the
                // writer bug at the source.
                assert_eq!(
                    table.chunk_slots.len(),
                    self.chunks.len(),
                    "sharded manifest must assign exactly one slot per chunk"
                );
                put_varint(&mut out, table.shard_lens.len() as u64);
                for &len in &table.shard_lens {
                    put_varint(&mut out, len);
                }
                put_varint(&mut out, self.chunks.len() as u64);
                for (c, s) in self.chunks.iter().zip(&table.chunk_slots) {
                    put_varint(&mut out, u64::from(c.chain));
                    put_varint(&mut out, u64::from(s.shard));
                    put_varint(&mut out, u64::from(s.slot));
                }
            }
            None => {
                put_varint(&mut out, self.chunks.len() as u64);
                for c in &self.chunks {
                    put_varint(&mut out, u64::from(c.chain));
                    put_varint(&mut out, c.offset);
                    put_varint(&mut out, c.len);
                }
            }
        }
        framing::put_crc_trailer(&mut out);
        out
    }

    /// Parses and validates a manifest from the head of `stream`,
    /// returning it together with the payload start offset. For v1–v3
    /// the rest of `stream` must be exactly the payload region; a v4
    /// manifest must be exactly `stream` (its chunk offsets point into
    /// the surrounding mutable-store file, not past its own trailer).
    pub fn decode(stream: &[u8]) -> Result<(Self, usize)> {
        let mut r = ByteReader::new(stream);
        framing::expect_magic(&mut r, MAGIC)?;
        let version = r.u8("store version")?;
        // v1 carried the codec byte here; v2 moved codec identity into
        // the chain table below.
        let v1_codec = match version {
            VERSION_V1 => Some(CompressorId::from_u8(r.u8("store codec")?)?),
            VERSION | VERSION_V3 | VERSION_V4 => None,
            other => return Err(CodecError::UnsupportedVersion(other)),
        };
        let dtype = framing::read_dtype(&mut r)?;
        let shape = framing::read_shape(&mut r)?;
        let rank = shape.rank();
        let mut cdims = [0usize; MAX_RANK];
        for (d, &dim) in cdims.iter_mut().zip(shape.dims()).take(rank) {
            *d = r.varint("store chunk dimension")? as usize;
            if *d == 0 || *d > dim {
                return Err(CodecError::Corrupt { context: "store chunk dimension" });
            }
        }
        let chunk_shape = Shape::new(&cdims[..rank]);
        let abs_bound = framing::read_abs_bound(&mut r, true)?;
        let mut generation = if version == VERSION_V4 {
            let g = r.varint("store generation")?;
            let parent = r.varint("store parent generation")?;
            let parent_offset = r.varint("store parent offset")?;
            let parent_len = r.varint("store parent length")?;
            // The chain must strictly decrease toward a rootless first
            // generation; a parent pointer on generation 1 (or a
            // self/forward link) was not written by any publisher.
            if g == 0 || parent >= g || (parent == 0) != (parent_len == 0) {
                return Err(CodecError::Corrupt { context: "store generation" });
            }
            Some(GenerationMeta {
                generation: g,
                parent,
                parent_offset,
                parent_len,
                born_gens: Vec::new(),
                chunk_crcs: Vec::new(),
            })
        } else {
            None
        };
        let chains = match v1_codec {
            Some(id) => vec![ChainSpec::preset(id)],
            None => {
                let n_chains = r.varint("store chain count")? as usize;
                if n_chains == 0 || n_chains > MAX_CHAINS {
                    return Err(CodecError::Corrupt { context: "store chain count" });
                }
                let mut chains = Vec::with_capacity(n_chains);
                for _ in 0..n_chains {
                    chains.push(ChainSpec::decode(&mut r)?);
                }
                chains
            }
        };
        // v3 interposes the shard table between the chain table and the
        // chunk index.
        let shard_lens: Option<Vec<u64>> = if version == VERSION_V3 {
            let n_shards = r.varint("store shard count")? as usize;
            if n_shards == 0 || n_shards > r.remaining() {
                return Err(CodecError::Corrupt { context: "store shard count" });
            }
            let mut lens = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                let len = r.varint("store shard length")?;
                if len == 0 {
                    return Err(CodecError::Corrupt { context: "store shard length" });
                }
                lens.push(len);
            }
            Some(lens)
        } else {
            None
        };
        let n_chunks = r.varint("store chunk count")? as usize;
        // Every chunk needs at least two index bytes ahead of us plus
        // one payload byte, so a count beyond the remaining stream
        // cannot be valid. Checked *before* the count sizes any
        // allocation or feeds a grid product: both are driven by
        // untrusted header fields, and a corrupt stream must produce
        // `Err`, never an abort.
        if n_chunks == 0 || n_chunks > r.remaining() / 2 {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let expected = (0..rank).fold(1u128, |acc, d| {
            acc.saturating_mul(shape.dim(d).div_ceil(cdims[d]) as u128)
        });
        if n_chunks as u128 != expected {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut chunk_slots = Vec::new();
        let mut next = 0u64;
        for _ in 0..n_chunks {
            let chain = match v1_codec {
                Some(_) => 0,
                None => {
                    let c = r.varint("store chunk chain")?;
                    if c >= chains.len() as u64 {
                        return Err(CodecError::Corrupt { context: "store chunk chain" });
                    }
                    c as u32
                }
            };
            match (&shard_lens, &mut generation) {
                (Some(lens), _) => {
                    let shard = r.varint("store chunk shard")?;
                    let slot = r.varint("store chunk slot")?;
                    if shard >= lens.len() as u64 || slot > u64::from(u32::MAX) {
                        return Err(CodecError::Corrupt { context: "store chunk shard" });
                    }
                    chunk_slots.push(ChunkSlot {
                        shard: shard as u32,
                        slot: slot as u32,
                    });
                    // Offset/length are resolved below, once the shard
                    // inner indices have been parsed and verified.
                    chunks.push(ChunkEntry { chain, offset: 0, len: 0 });
                }
                (None, Some(g)) => {
                    // v4: absolute offsets into the mutable store's
                    // object log — arbitrary order (copy-on-write
                    // shares parent objects), but every range must be
                    // finite and every chunk born no later than this
                    // manifest's generation.
                    let offset = r.varint("store chunk offset")?;
                    let len = r.varint("store chunk length")?;
                    let born = r.varint("store chunk born generation")?;
                    let crc = r.u32("store chunk crc")?;
                    if len == 0 || offset.checked_add(len).is_none() {
                        return Err(CodecError::Corrupt { context: "store chunk index" });
                    }
                    if born == 0 || born > g.generation {
                        return Err(CodecError::Corrupt {
                            context: "store chunk born generation",
                        });
                    }
                    g.born_gens.push(born);
                    g.chunk_crcs.push(crc);
                    chunks.push(ChunkEntry { chain, offset, len });
                }
                (None, None) => {
                    let offset = r.varint("store chunk offset")?;
                    let len = r.varint("store chunk length")?;
                    if offset != next || len == 0 {
                        return Err(CodecError::Corrupt { context: "store chunk index" });
                    }
                    next = offset
                        .checked_add(len)
                        .ok_or(CodecError::Corrupt { context: "store chunk index" })?;
                    chunks.push(ChunkEntry { chain, offset, len });
                }
            }
        }
        framing::check_crc_trailer(&mut r, stream)?;
        let payload_start = r.position();
        let payload = &stream[payload_start..];
        let sharding = match (shard_lens, &generation) {
            (None, Some(_)) => {
                // A v4 manifest is self-contained: nothing may trail
                // its CRC (its chunk bytes live elsewhere in the file).
                if !payload.is_empty() {
                    return Err(CodecError::Corrupt { context: "store manifest length" });
                }
                None
            }
            (None, None) => {
                if payload.len() != next as usize {
                    return Err(CodecError::TruncatedStream { context: "store payload" });
                }
                None
            }
            (Some(lens), _) => Some(Self::resolve_shards(
                payload,
                lens,
                chunk_slots,
                &mut chunks,
            )?),
        };
        Ok((
            Self {
                dtype,
                shape,
                chunk_shape,
                abs_bound,
                chains,
                chunks,
                sharding,
                generation,
            },
            payload_start,
        ))
    }

    /// Walks the shard objects of a v3 payload, parsing every inner
    /// index, and resolves each chunk's (shard, slot) reference into an
    /// absolute payload-relative [`ChunkEntry`]. Every slot must be
    /// referenced by exactly one chunk — a manifest that double-books
    /// or strands a slot was not produced by any writer.
    fn resolve_shards(
        payload: &[u8],
        shard_lens: Vec<u64>,
        chunk_slots: Vec<ChunkSlot>,
        chunks: &mut [ChunkEntry],
    ) -> Result<ShardTable> {
        // Checked accumulation: the lengths are untrusted header
        // fields, and a crafted pair summing past u64 must produce
        // `Err`, not wrap around into a passing length check.
        let mut total = 0u64;
        for &len in &shard_lens {
            total = total
                .checked_add(len)
                .ok_or(CodecError::Corrupt { context: "store shard length" })?;
        }
        if payload.len() as u64 != total {
            return Err(CodecError::TruncatedStream { context: "store payload" });
        }
        let mut indices = Vec::with_capacity(shard_lens.len());
        let mut index_lens = Vec::with_capacity(shard_lens.len());
        let mut offset = 0usize;
        let mut total_slots = 0usize;
        for &len in &shard_lens {
            let idx = ShardIndex::parse(&payload[offset..offset + len as usize])?;
            index_lens.push(idx.index_len as u64);
            total_slots += idx.slots.len();
            indices.push((offset as u64, idx));
            offset += len as usize;
        }
        if total_slots != chunks.len() {
            return Err(CodecError::Corrupt { context: "store shard slot count" });
        }
        let mut seen: Vec<bool> = vec![false; total_slots];
        let mut slot_base = vec![0usize; indices.len()];
        for s in 1..indices.len() {
            slot_base[s] = slot_base[s - 1] + indices[s - 1].1.slots.len();
        }
        let mut chunk_crcs = Vec::with_capacity(chunks.len());
        for (entry, cs) in chunks.iter_mut().zip(&chunk_slots) {
            let (shard_off, idx) = &indices[cs.shard as usize];
            let slot = idx
                .slots
                .get(cs.slot as usize)
                .ok_or(CodecError::Corrupt { context: "store chunk slot" })?;
            let flat = slot_base[cs.shard as usize] + cs.slot as usize;
            if seen[flat] {
                return Err(CodecError::Corrupt { context: "store chunk slot" });
            }
            seen[flat] = true;
            entry.offset = shard_off + idx.index_len as u64 + slot.offset;
            entry.len = slot.len;
            chunk_crcs.push(slot.crc);
        }
        Ok(ShardTable {
            shard_lens,
            chunk_slots,
            index_lens,
            chunk_crcs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            dtype: 0,
            shape: Shape::d2(10, 7),
            chunk_shape: Shape::d2(4, 4),
            abs_bound: 1e-3,
            chains: vec![
                ChainSpec::preset(CompressorId::Sz3),
                ChainSpec::parse("szx+lz").unwrap(),
            ],
            chunks: vec![
                ChunkEntry { chain: 0, offset: 0, len: 9 },
                ChunkEntry { chain: 1, offset: 9, len: 4 },
                ChunkEntry { chain: 0, offset: 13, len: 11 },
                ChunkEntry { chain: 1, offset: 24, len: 2 },
                ChunkEntry { chain: 0, offset: 26, len: 7 },
                ChunkEntry { chain: 1, offset: 33, len: 5 },
            ],
            sharding: None,
            generation: None,
        }
    }

    /// A v4 generational manifest over the same grid as [`sample`]:
    /// absolute offsets with a gap (dead bytes from a replaced object),
    /// two chunks rewritten by generation 3.
    fn generational_sample() -> Manifest {
        let mut m = sample();
        m.chunks = vec![
            ChunkEntry { chain: 0, offset: 61, len: 9 },
            ChunkEntry { chain: 1, offset: 70, len: 4 },
            ChunkEntry { chain: 0, offset: 200, len: 11 },
            ChunkEntry { chain: 1, offset: 90, len: 2 },
            ChunkEntry { chain: 0, offset: 150, len: 7 },
            ChunkEntry { chain: 1, offset: 99, len: 5 },
        ];
        m.generation = Some(GenerationMeta {
            generation: 3,
            parent: 2,
            parent_offset: 120,
            parent_len: 40,
            born_gens: vec![1, 1, 3, 1, 3, 1],
            chunk_crcs: vec![0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF],
        });
        m
    }

    /// Builds a sharded manifest + stream over the same grid as
    /// [`sample`]: six distinct chunk payloads packed four-and-two into
    /// two `EBSH` shards.
    fn sharded_sample() -> (Manifest, Vec<u8>) {
        let payloads: Vec<Vec<u8>> = (0..6u8)
            .map(|i| (0..=i).map(|j| i * 16 + j).collect())
            .collect();
        let shard_a = crate::shard::build_shard(&payloads[..4]);
        let shard_b = crate::shard::build_shard(&payloads[4..]);
        let mut m = sample();
        m.sharding = Some(ShardTable {
            shard_lens: vec![shard_a.len() as u64, shard_b.len() as u64],
            chunk_slots: (0..6)
                .map(|i| ChunkSlot {
                    shard: (i / 4) as u32,
                    slot: (i % 4) as u32,
                })
                .collect(),
            index_lens: Vec::new(),
            chunk_crcs: Vec::new(),
        });
        let mut stream = m.encode();
        stream.extend_from_slice(&shard_a);
        stream.extend_from_slice(&shard_b);
        (m, stream)
    }

    fn stream_of(m: &Manifest) -> Vec<u8> {
        let mut s = m.encode();
        s.extend(std::iter::repeat_n(0xAB, m.payload_len() as usize));
        s
    }

    /// Hand-writes the v1 framing the seed store emitted.
    fn v1_stream(codec: CompressorId, m: &Manifest) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_V1);
        out.push(codec as u8);
        out.push(m.dtype);
        framing::put_shape(&mut out, m.shape);
        for &d in m.chunk_shape.dims() {
            put_varint(&mut out, d as u64);
        }
        framing::put_abs_bound(&mut out, m.abs_bound);
        put_varint(&mut out, m.chunks.len() as u64);
        for c in &m.chunks {
            put_varint(&mut out, c.offset);
            put_varint(&mut out, c.len);
        }
        framing::put_crc_trailer(&mut out);
        out.extend(std::iter::repeat_n(0xCD, m.payload_len() as usize));
        out
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let s = stream_of(&m);
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(s.len() - payload_start, m.payload_len() as usize);
        assert_eq!(back.codec_id(), None);
    }

    #[test]
    fn v1_manifests_still_parse() {
        let mut m = sample();
        for c in &mut m.chunks {
            c.chain = 0;
        }
        let s = v1_stream(CompressorId::Qoz, &m);
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back.chains, vec![ChainSpec::preset(CompressorId::Qoz)]);
        assert_eq!(back.codec_id(), Some(CompressorId::Qoz));
        assert_eq!(back.chunks, m.chunks);
        assert_eq!(back.sharding, None);
        assert_eq!(s.len() - payload_start, m.payload_len() as usize);
    }

    #[test]
    fn v3_roundtrip_resolves_slots() {
        let (m, s) = sharded_sample();
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        // The v2 invariant holds for v3 too: payload_len() is the full
        // payload region, inner shard indices included.
        assert_eq!(s.len() - payload_start, back.payload_len() as usize);
        assert_eq!(m.payload_len(), back.payload_len());
        let table = back.sharding.as_ref().unwrap();
        let want = m.sharding.as_ref().unwrap();
        assert_eq!(table.shard_lens, want.shard_lens);
        assert_eq!(table.chunk_slots, want.chunk_slots);
        assert_eq!(table.index_lens.len(), 2);
        assert_eq!(table.chunk_crcs.len(), 6);
        // Resolved entries point at the exact slot payload bytes.
        let payload = &s[payload_start..];
        for (i, e) in back.chunks.iter().enumerate() {
            let bytes = &payload[e.offset as usize..(e.offset + e.len) as usize];
            let want: Vec<u8> = (0..=i as u8).map(|j| i as u8 * 16 + j).collect();
            assert_eq!(bytes, want.as_slice(), "chunk {i}");
            assert_eq!(e.chain, m.chunks[i].chain);
        }
    }

    #[test]
    fn v3_truncation_rejected_everywhere() {
        let (_, s) = sharded_sample();
        for cut in 0..s.len() {
            assert!(Manifest::decode(&s[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn v3_duplicate_slot_reference_rejected() {
        let (mut m, _) = sharded_sample();
        m.sharding.as_mut().unwrap().chunk_slots[1] = ChunkSlot { shard: 0, slot: 0 };
        let mut s = m.encode();
        let (orig, orig_stream) = sharded_sample();
        let payload_start = orig_stream.len() - orig.sharding.unwrap().shard_lens.iter().sum::<u64>() as usize;
        s.extend_from_slice(&orig_stream[payload_start..]);
        assert!(matches!(
            Manifest::decode(&s),
            Err(CodecError::Corrupt { context: "store chunk slot" })
        ));
    }

    #[test]
    fn v3_out_of_range_slot_rejected() {
        let (mut m, _) = sharded_sample();
        m.sharding.as_mut().unwrap().chunk_slots[5] = ChunkSlot { shard: 1, slot: 9 };
        let mut s = m.encode();
        let (orig, orig_stream) = sharded_sample();
        let payload_start = orig_stream.len() - orig.sharding.unwrap().shard_lens.iter().sum::<u64>() as usize;
        s.extend_from_slice(&orig_stream[payload_start..]);
        assert!(Manifest::decode(&s).is_err());
    }

    #[test]
    fn v3_overflowing_shard_lengths_return_err_not_panic() {
        // Two shard lengths engineered so their u64 sum wraps to
        // exactly the payload length: an unchecked sum would pass the
        // length check and slice with a absurd range. Must be `Err`.
        let (m, s) = sharded_sample();
        let payload_len = m.sharding.as_ref().unwrap().shard_lens.iter().sum::<u64>();
        let payload_start = s.len() - payload_len as usize;
        let mut bad = m.clone();
        bad.sharding.as_mut().unwrap().shard_lens =
            vec![u64::MAX, payload_len.wrapping_sub(u64::MAX)];
        let mut stream = bad.encode();
        stream.extend_from_slice(&s[payload_start..]);
        assert!(matches!(
            Manifest::decode(&stream),
            Err(CodecError::Corrupt { context: "store shard length" })
        ));
    }

    #[test]
    #[should_panic(expected = "one slot per chunk")]
    fn encode_rejects_mismatched_slot_assignment() {
        let (mut m, _) = sharded_sample();
        m.sharding.as_mut().unwrap().chunk_slots.pop();
        let _ = m.encode();
    }

    #[test]
    fn v3_shard_len_mismatch_rejected() {
        let (m, s) = sharded_sample();
        // Claim one fewer byte for the first shard: its inner index no
        // longer tiles the claimed object, and everything downstream
        // shifts.
        let mut bad = m.clone();
        bad.sharding.as_mut().unwrap().shard_lens[0] -= 1;
        let payload_start = s.len()
            - m.sharding.as_ref().unwrap().shard_lens.iter().sum::<u64>() as usize;
        let mut stream = bad.encode();
        stream.extend_from_slice(&s[payload_start..]);
        assert!(Manifest::decode(&stream).is_err());
    }

    #[test]
    fn single_preset_chain_reports_codec_id() {
        let mut m = sample();
        m.chains = vec![ChainSpec::preset(CompressorId::Szx)];
        for c in &mut m.chunks {
            c.chain = 0;
        }
        let (back, _) = Manifest::decode(&stream_of(&m)).unwrap();
        assert_eq!(back.codec_id(), Some(CompressorId::Szx));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let s = stream_of(&sample());
        for cut in 0..s.len() {
            assert!(Manifest::decode(&s[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn flipped_manifest_bit_caught_by_crc() {
        let s = stream_of(&sample());
        // Flip one bit in every manifest byte after the magic/version
        // (those two have dedicated errors) and expect rejection.
        let manifest_end = s.len() - sample().payload_len() as usize;
        for i in 5..manifest_end {
            let mut bad = s.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn out_of_range_chain_index_rejected() {
        let mut m = sample();
        m.chunks[2].chain = 7;
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn non_contiguous_index_rejected() {
        let mut m = sample();
        m.chunks[3].offset += 1;
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn wrong_chunk_count_rejected() {
        let mut m = sample();
        m.chunks.pop();
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn bad_abs_bound_rejected() {
        for bad in [f64::NAN, 0.0, -2.0, f64::INFINITY] {
            let mut m = sample();
            m.abs_bound = bad;
            assert!(Manifest::decode(&stream_of(&m)).is_err(), "bound {bad}");
        }
    }

    #[test]
    fn huge_fake_chunk_count_returns_err_without_allocating() {
        // A tiny stream claiming an astronomically chunked array must be
        // rejected (not abort on a capacity overflow). Hand-build the
        // header so the grid product would be ~2^40.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.push(VERSION);
        s.push(0); // dtype f32
        s.push(1); // rank 1
        put_varint(&mut s, 1u64 << 40); // dim
        put_varint(&mut s, 1); // chunk dim -> 2^40 chunks
        s.extend_from_slice(&1e-3f64.to_bits().to_le_bytes());
        put_varint(&mut s, 1); // one chain
        ChainSpec::preset(CompressorId::Szx).encode_into(&mut s);
        put_varint(&mut s, 1u64 << 40); // claimed chunk count
        framing::put_crc_trailer(&mut s);
        assert!(matches!(
            Manifest::decode(&s),
            Err(CodecError::Corrupt { context: "store chunk count" })
        ));
    }

    #[test]
    fn oversized_chain_table_rejected() {
        let mut m = sample();
        m.chains = vec![ChainSpec::preset(CompressorId::Szx); MAX_CHAINS + 1];
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn oversized_chunk_dim_rejected() {
        // chunk dim > array dim cannot have been written (write clamps).
        let mut m = sample();
        m.chunk_shape = Shape::d2(11, 4);
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn v4_roundtrip_is_self_contained() {
        let m = generational_sample();
        let s = m.encode();
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(payload_start, s.len(), "v4 carries no trailing payload");
        assert_eq!(back.chunk_crc(2), Some(0xCC));
    }

    #[test]
    fn v4_trailing_bytes_rejected() {
        let mut s = generational_sample().encode();
        s.push(0);
        assert!(matches!(
            Manifest::decode(&s),
            Err(CodecError::Corrupt { context: "store manifest length" })
        ));
    }

    #[test]
    fn v4_truncation_rejected_everywhere() {
        let s = generational_sample().encode();
        for cut in 0..s.len() {
            assert!(Manifest::decode(&s[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn v4_flipped_bit_caught_everywhere() {
        let s = generational_sample().encode();
        for i in 5..s.len() {
            let mut bad = s.clone();
            bad[i] ^= 0x08;
            assert!(Manifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn v4_generation_chain_invariants_enforced() {
        // Parent not younger than self.
        let mut m = generational_sample();
        m.generation.as_mut().unwrap().parent = 3;
        assert!(Manifest::decode(&m.encode()).is_err());
        // Generation zero is not a generation.
        let mut m = generational_sample();
        {
            let g = m.generation.as_mut().unwrap();
            g.generation = 0;
            g.parent = 0;
            g.parent_offset = 0;
            g.parent_len = 0;
        }
        assert!(Manifest::decode(&m.encode()).is_err());
        // A rootless manifest cannot claim parent manifest bytes.
        let mut m = generational_sample();
        {
            let g = m.generation.as_mut().unwrap();
            g.parent = 0;
            g.parent_offset = 9;
            g.parent_len = 9;
        }
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn v4_chunk_born_after_manifest_rejected() {
        let mut m = generational_sample();
        m.generation.as_mut().unwrap().born_gens[0] = 4;
        assert!(matches!(
            Manifest::decode(&m.encode()),
            Err(CodecError::Corrupt { context: "store chunk born generation" })
        ));
        let mut m = generational_sample();
        m.generation.as_mut().unwrap().born_gens[5] = 0;
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    #[should_panic(expected = "never both")]
    fn sharded_generational_combination_rejected() {
        let (mut m, _) = sharded_sample();
        m.generation = Some(GenerationMeta {
            generation: 1,
            ..Default::default()
        });
        let _ = m.encode();
    }
}
