//! The self-describing chunked-store container format.
//!
//! Version 2 carries a chain table so one store can mix codecs across
//! chunks:
//!
//! ```text
//! "EBCS" | version=2 | dtype u8 | rank u8
//! dims (rank × varint) | chunk dims (rank × varint) | abs_bound f64
//! n_chains varint | chain specs…
//! n_chunks varint
//! index: n_chunks × (chain varint, offset varint, length varint)
//! manifest crc32 u32 | chunk payloads…
//! ```
//!
//! Version 1 manifests (a single codec id byte before the dtype, no
//! chain table or per-chunk chain column) remain readable: the codec
//! byte maps onto a one-entry chain table of its preset.
//!
//! Offsets are relative to the payload start and must be contiguous in
//! write order; the CRC covers every manifest byte before it, so a
//! flipped bit in the index is caught before any chunk is decoded. Each
//! chunk payload is itself a complete `EBLC` stream with its own
//! header and payload checksum.

use crate::grid::ChunkGrid;
use eblcio_codec::framing;
use eblcio_codec::util::{put_varint, ByteReader};
use eblcio_codec::{ChainSpec, CodecError, CompressorId, Result};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::Shape;

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"EBCS";
/// Current container version (carries a chain table).
pub const VERSION: u8 = 2;
/// Legacy container version (single codec id byte).
pub const VERSION_V1: u8 = 1;

/// Cap on distinct chains per store (sanity bound for corrupt headers).
pub const MAX_CHAINS: usize = 64;

/// Location of one compressed chunk inside the payload section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Index into the manifest's chain table.
    pub chain: u32,
    /// Byte offset from the payload start.
    pub offset: u64,
    /// Compressed length in bytes.
    pub len: u64,
}

/// Parsed store manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Full array shape.
    pub shape: Shape,
    /// Interior chunk shape (edge chunks are clipped).
    pub chunk_shape: Shape,
    /// Absolute error bound resolved against the global value range
    /// (every chain honours it).
    pub abs_bound: f64,
    /// The codec chains chunks reference by index.
    pub chains: Vec<ChainSpec>,
    /// Per-chunk chain/offset/length index in raster order of the
    /// chunk grid.
    pub chunks: Vec<ChunkEntry>,
}

impl Manifest {
    /// The chunk grid this manifest describes.
    pub fn grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.shape, self.chunk_shape)
    }

    /// Total payload bytes across all chunks.
    pub fn payload_len(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// The single paper codec behind this store, when every chunk uses
    /// one preset chain (`None` for mixed or custom-chain stores).
    pub fn codec_id(&self) -> Option<CompressorId> {
        match self.chains.as_slice() {
            [only] => only.preset_id(),
            _ => None,
        }
    }

    /// Serializes the manifest (everything before the payload bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.chains.len() * 6 + self.chunks.len() * 7);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.dtype);
        framing::put_shape(&mut out, self.shape);
        for &d in self.chunk_shape.dims() {
            put_varint(&mut out, d as u64);
        }
        framing::put_abs_bound(&mut out, self.abs_bound);
        put_varint(&mut out, self.chains.len() as u64);
        for c in &self.chains {
            c.encode_into(&mut out);
        }
        put_varint(&mut out, self.chunks.len() as u64);
        for c in &self.chunks {
            put_varint(&mut out, u64::from(c.chain));
            put_varint(&mut out, c.offset);
            put_varint(&mut out, c.len);
        }
        framing::put_crc_trailer(&mut out);
        out
    }

    /// Parses and validates a (v1 or v2) manifest from the head of
    /// `stream`, returning it together with the payload start offset.
    pub fn decode(stream: &[u8]) -> Result<(Self, usize)> {
        let mut r = ByteReader::new(stream);
        framing::expect_magic(&mut r, MAGIC)?;
        let version = r.u8("store version")?;
        // v1 carried the codec byte here; v2 moved codec identity into
        // the chain table below.
        let v1_codec = match version {
            VERSION_V1 => Some(CompressorId::from_u8(r.u8("store codec")?)?),
            VERSION => None,
            other => return Err(CodecError::UnsupportedVersion(other)),
        };
        let dtype = framing::read_dtype(&mut r)?;
        let shape = framing::read_shape(&mut r)?;
        let rank = shape.rank();
        let mut cdims = [0usize; MAX_RANK];
        for (d, &dim) in cdims.iter_mut().zip(shape.dims()).take(rank) {
            *d = r.varint("store chunk dimension")? as usize;
            if *d == 0 || *d > dim {
                return Err(CodecError::Corrupt { context: "store chunk dimension" });
            }
        }
        let chunk_shape = Shape::new(&cdims[..rank]);
        let abs_bound = framing::read_abs_bound(&mut r, true)?;
        let chains = match v1_codec {
            Some(id) => vec![ChainSpec::preset(id)],
            None => {
                let n_chains = r.varint("store chain count")? as usize;
                if n_chains == 0 || n_chains > MAX_CHAINS {
                    return Err(CodecError::Corrupt { context: "store chain count" });
                }
                let mut chains = Vec::with_capacity(n_chains);
                for _ in 0..n_chains {
                    chains.push(ChainSpec::decode(&mut r)?);
                }
                chains
            }
        };
        let n_chunks = r.varint("store chunk count")? as usize;
        // Every chunk needs at least two index bytes ahead of us plus
        // one payload byte, so a count beyond the remaining stream
        // cannot be valid. Checked *before* the count sizes any
        // allocation or feeds a grid product: both are driven by
        // untrusted header fields, and a corrupt stream must produce
        // `Err`, never an abort.
        if n_chunks == 0 || n_chunks > r.remaining() / 2 {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let expected = (0..rank).fold(1u128, |acc, d| {
            acc.saturating_mul(shape.dim(d).div_ceil(cdims[d]) as u128)
        });
        if n_chunks as u128 != expected {
            return Err(CodecError::Corrupt { context: "store chunk count" });
        }
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut next = 0u64;
        for _ in 0..n_chunks {
            let chain = match v1_codec {
                Some(_) => 0,
                None => {
                    let c = r.varint("store chunk chain")?;
                    if c >= chains.len() as u64 {
                        return Err(CodecError::Corrupt { context: "store chunk chain" });
                    }
                    c as u32
                }
            };
            let offset = r.varint("store chunk offset")?;
            let len = r.varint("store chunk length")?;
            if offset != next || len == 0 {
                return Err(CodecError::Corrupt { context: "store chunk index" });
            }
            next = offset
                .checked_add(len)
                .ok_or(CodecError::Corrupt { context: "store chunk index" })?;
            chunks.push(ChunkEntry { chain, offset, len });
        }
        framing::check_crc_trailer(&mut r, stream)?;
        let payload_start = r.position();
        if stream.len() - payload_start != next as usize {
            return Err(CodecError::TruncatedStream { context: "store payload" });
        }
        Ok((
            Self {
                dtype,
                shape,
                chunk_shape,
                abs_bound,
                chains,
                chunks,
            },
            payload_start,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            dtype: 0,
            shape: Shape::d2(10, 7),
            chunk_shape: Shape::d2(4, 4),
            abs_bound: 1e-3,
            chains: vec![
                ChainSpec::preset(CompressorId::Sz3),
                ChainSpec::parse("szx+lz").unwrap(),
            ],
            chunks: vec![
                ChunkEntry { chain: 0, offset: 0, len: 9 },
                ChunkEntry { chain: 1, offset: 9, len: 4 },
                ChunkEntry { chain: 0, offset: 13, len: 11 },
                ChunkEntry { chain: 1, offset: 24, len: 2 },
                ChunkEntry { chain: 0, offset: 26, len: 7 },
                ChunkEntry { chain: 1, offset: 33, len: 5 },
            ],
        }
    }

    fn stream_of(m: &Manifest) -> Vec<u8> {
        let mut s = m.encode();
        s.extend(std::iter::repeat_n(0xAB, m.payload_len() as usize));
        s
    }

    /// Hand-writes the v1 framing the seed store emitted.
    fn v1_stream(codec: CompressorId, m: &Manifest) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_V1);
        out.push(codec as u8);
        out.push(m.dtype);
        framing::put_shape(&mut out, m.shape);
        for &d in m.chunk_shape.dims() {
            put_varint(&mut out, d as u64);
        }
        framing::put_abs_bound(&mut out, m.abs_bound);
        put_varint(&mut out, m.chunks.len() as u64);
        for c in &m.chunks {
            put_varint(&mut out, c.offset);
            put_varint(&mut out, c.len);
        }
        framing::put_crc_trailer(&mut out);
        out.extend(std::iter::repeat_n(0xCD, m.payload_len() as usize));
        out
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let s = stream_of(&m);
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(s.len() - payload_start, m.payload_len() as usize);
        assert_eq!(back.codec_id(), None);
    }

    #[test]
    fn v1_manifests_still_parse() {
        let mut m = sample();
        for c in &mut m.chunks {
            c.chain = 0;
        }
        let s = v1_stream(CompressorId::Qoz, &m);
        let (back, payload_start) = Manifest::decode(&s).unwrap();
        assert_eq!(back.chains, vec![ChainSpec::preset(CompressorId::Qoz)]);
        assert_eq!(back.codec_id(), Some(CompressorId::Qoz));
        assert_eq!(back.chunks, m.chunks);
        assert_eq!(s.len() - payload_start, m.payload_len() as usize);
    }

    #[test]
    fn single_preset_chain_reports_codec_id() {
        let mut m = sample();
        m.chains = vec![ChainSpec::preset(CompressorId::Szx)];
        for c in &mut m.chunks {
            c.chain = 0;
        }
        let (back, _) = Manifest::decode(&stream_of(&m)).unwrap();
        assert_eq!(back.codec_id(), Some(CompressorId::Szx));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let s = stream_of(&sample());
        for cut in 0..s.len() {
            assert!(Manifest::decode(&s[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn flipped_manifest_bit_caught_by_crc() {
        let s = stream_of(&sample());
        // Flip one bit in every manifest byte after the magic/version
        // (those two have dedicated errors) and expect rejection.
        let manifest_end = s.len() - sample().payload_len() as usize;
        for i in 5..manifest_end {
            let mut bad = s.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn out_of_range_chain_index_rejected() {
        let mut m = sample();
        m.chunks[2].chain = 7;
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn non_contiguous_index_rejected() {
        let mut m = sample();
        m.chunks[3].offset += 1;
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn wrong_chunk_count_rejected() {
        let mut m = sample();
        m.chunks.pop();
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn bad_abs_bound_rejected() {
        for bad in [f64::NAN, 0.0, -2.0, f64::INFINITY] {
            let mut m = sample();
            m.abs_bound = bad;
            assert!(Manifest::decode(&stream_of(&m)).is_err(), "bound {bad}");
        }
    }

    #[test]
    fn huge_fake_chunk_count_returns_err_without_allocating() {
        // A tiny stream claiming an astronomically chunked array must be
        // rejected (not abort on a capacity overflow). Hand-build the
        // header so the grid product would be ~2^40.
        let mut s = Vec::new();
        s.extend_from_slice(MAGIC);
        s.push(VERSION);
        s.push(0); // dtype f32
        s.push(1); // rank 1
        put_varint(&mut s, 1u64 << 40); // dim
        put_varint(&mut s, 1); // chunk dim -> 2^40 chunks
        s.extend_from_slice(&1e-3f64.to_bits().to_le_bytes());
        put_varint(&mut s, 1); // one chain
        ChainSpec::preset(CompressorId::Szx).encode_into(&mut s);
        put_varint(&mut s, 1u64 << 40); // claimed chunk count
        framing::put_crc_trailer(&mut s);
        assert!(matches!(
            Manifest::decode(&s),
            Err(CodecError::Corrupt { context: "store chunk count" })
        ));
    }

    #[test]
    fn oversized_chain_table_rejected() {
        let mut m = sample();
        m.chains = vec![ChainSpec::preset(CompressorId::Szx); MAX_CHAINS + 1];
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }

    #[test]
    fn oversized_chunk_dim_rejected() {
        // chunk dim > array dim cannot have been written (write clamps).
        let mut m = sample();
        m.chunk_shape = Shape::d2(11, 4);
        assert!(Manifest::decode(&stream_of(&m)).is_err());
    }
}
