//! A lightweight Rust lexer: just enough token structure for the
//! architecture-lint rules to match on, with none of the fragility of
//! regexes over raw source.
//!
//! The hard part of scanning Rust for patterns like `.unwrap()` or
//! `std::sync::Mutex` is not finding the text — it is *not* finding it
//! inside a string literal, a doc comment, or a `#[cfg(test)]` module.
//! This lexer therefore handles the token classes where naive scanners
//! go wrong:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */` — Rust block comments nest);
//! * string literals with escapes, byte strings, and **raw strings**
//!   (`r"…"`, `r#"…"#`, any hash depth — a `"` inside a raw string does
//!   not end it);
//! * the `'a` lifetime vs `'x'` char-literal ambiguity (`'a'` is a
//!   char, `'a` is a lifetime, `'\n'` is a char, `b'x'` is a byte);
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`).
//!
//! Comments are kept as trivia tokens (the waiver syntax
//! `// eblcio-allow(rule): reason` lives in them); rules match over the
//! non-trivia stream.

/// What class of lexeme a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `std`, `pub`, `unsafe`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character or byte literal: `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`.
    StrLit,
    /// A numeric literal (integers, floats, any radix or suffix).
    Number,
    /// One punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// `// …` to end of line (including doc comments).
    LineComment,
    /// `/* … */`, nesting respected (including doc comments).
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The raw text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Tok {
    /// True for comment trivia (excluded from rule matching).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is this single punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count characters, not bytes: UTF-8 continuation bytes do
            // not advance the column.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes Rust source. Never fails: unterminated literals produce a
/// token reaching the end of input (the rules still see honest
/// positions for everything before the defect).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col, start) = (c.line, c.col, c.pos);
        let tok = |kind: TokKind, c: &Cursor<'_>| Tok {
            kind,
            text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
            line,
            col,
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.push(tok(TokKind::LineComment, &c));
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.push(tok(TokKind::BlockComment, &c));
            }
            b'"' => {
                lex_string(&mut c);
                out.push(tok(TokKind::StrLit, &c));
            }
            b'r' | b'b' if starts_raw_or_byte_string(&c) => {
                lex_raw_or_byte_string(&mut c);
                out.push(tok(TokKind::StrLit, &c));
            }
            b'b' if c.peek_at(1) == Some(b'\'') => {
                c.bump(); // b
                lex_char(&mut c);
                out.push(tok(TokKind::CharLit, &c));
            }
            b'\'' => {
                if is_lifetime(&c) {
                    c.bump(); // '
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.push(tok(TokKind::Lifetime, &c));
                } else {
                    lex_char(&mut c);
                    out.push(tok(TokKind::CharLit, &c));
                }
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.push(tok(TokKind::Number, &c));
            }
            _ if is_ident_start(b) => {
                // Raw identifier `r#ident` (already excluded raw strings).
                if b == b'r' && c.peek_at(1) == Some(b'#') && c.peek_at(2).is_some_and(is_ident_start)
                {
                    c.bump();
                    c.bump();
                }
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.push(tok(TokKind::Ident, &c));
            }
            _ => {
                c.bump();
                out.push(tok(TokKind::Punct, &c));
            }
        }
    }
    out
}

/// At a `r` or `b`: does a raw string (`r"`, `r#"`) or byte string
/// (`b"`, `br"`, `br#"`) start here — as opposed to an identifier?
fn starts_raw_or_byte_string(c: &Cursor<'_>) -> bool {
    let rest = &c.src[c.pos..];
    let after_prefix = match rest {
        [b'b', b'r', ..] => &rest[2..],
        [b'r' | b'b', ..] => &rest[1..],
        _ => return false,
    };
    let is_raw = rest[0] == b'r' || rest.get(1) == Some(&b'r');
    if is_raw {
        // Any number of hashes, then a quote.
        let hashes = after_prefix.iter().take_while(|&&b| b == b'#').count();
        after_prefix.get(hashes) == Some(&b'"')
    } else {
        // Plain byte string b"…".
        after_prefix.first() == Some(&b'"')
    }
}

/// Consumes a `"…"` string with `\`-escapes. The opening quote is at
/// the cursor.
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // "
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` (cursor at `r`/`b`).
fn lex_raw_or_byte_string(c: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(b) = c.peek() {
        if b == b'r' {
            raw = true;
        }
        if b == b'"' || b == b'#' {
            break;
        }
        c.bump(); // r / b prefix chars
    }
    if !raw {
        lex_string(c);
        return;
    }
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    c.bump(); // opening "
    // Scan for `"` followed by `hashes` hash marks.
    while let Some(b) = c.bump() {
        if b == b'"' {
            let mut seen = 0usize;
            while seen < hashes && c.peek() == Some(b'#') {
                c.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// Disambiguates `'…`: lifetime (`'a`, `'static`) vs char (`'a'`,
/// `'\n'`). Cursor sits on the quote.
fn is_lifetime(c: &Cursor<'_>) -> bool {
    match c.peek_at(1) {
        // `'\…` is always a char escape.
        Some(b'\\') => false,
        Some(b) if is_ident_start(b) => {
            // `'a'` → char; `'a` / `'abc` → lifetime. Scan the ident
            // run: a closing quote right after exactly one character
            // makes it a char literal.
            let mut i = 2;
            while c.peek_at(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            !(i == 2 && c.peek_at(2) == Some(b'\''))
        }
        // `'1'`, `' '`, `'('` … all chars.
        _ => false,
    }
}

/// Consumes a char/byte literal body; cursor on the opening quote.
fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // '
    if c.peek() == Some(b'\\') {
        c.bump();
        c.bump();
    } else {
        c.bump();
    }
    // Unicode escapes (`'\u{1F600}'`) leave several chars before the
    // closing quote; consume up to it defensively.
    while c.peek().is_some_and(|b| b != b'\'' && b != b'\n') {
        c.bump();
    }
    c.bump(); // closing '
}

/// Consumes a numeric literal, loosely: radix prefixes, underscores,
/// float dots, exponents, and type suffixes all roll into one token.
/// Rules never inspect numbers, so looseness is safe — what matters is
/// not misclassifying what follows.
fn lex_number(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            c.bump();
        } else if b == b'.' && c.peek_at(1).is_some_and(|n| n.is_ascii_digit()) {
            // `1.5` continues the number; `1.max(2)` does not.
            c.bump();
        } else if (b == b'+' || b == b'-')
            && matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        {
            // Exponent sign: `1e-3`.
            c.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "call .unwrap() now";"#);
        assert!(toks.iter().all(|(_, t)| !t.starts_with("unwrap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(), 1);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "r\"a\" r#\"b \" still\"# r##\"c \"# still\"## x";
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::StrLit).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert!(toks.last().unwrap().1 == "x");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" br#"raw"# b'x'"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 1);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].1, "'a");
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = kinds("&'static str");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Ident).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::BlockComment).count(),
            1
        );
    }

    #[test]
    fn comments_carry_text_for_waivers() {
        let toks = lex("x // eblcio-allow(panic-freedom): startup only\ny");
        let c = toks.iter().find(|t| t.kind == TokKind::LineComment).unwrap();
        assert!(c.text.contains("eblcio-allow(panic-freedom)"));
        assert_eq!(c.line, 1);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#match r#fn normal");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "r#match".into()),
                (TokKind::Ident, "r#fn".into()),
                (TokKind::Ident, "normal".into()),
            ]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_with_exponents_and_method_calls() {
        let toks = kinds("1e-3 1.5f64 0xff 1.max(2)");
        let nums: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Number).collect();
        assert_eq!(nums.len(), 5, "{toks:?}"); // 1e-3, 1.5f64, 0xff, 1, 2
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let toks = kinds("let x = \"never closed");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }
}
