//! The analysis driver: walk the workspace, lex each file, mark test
//! code, run the rules, then apply waivers, the allowlist, and the
//! baseline.

use crate::baseline::{Baseline, BaselineDelta};
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{all_rules, FileCtx, Rule};
use std::path::{Path, PathBuf};

/// Everything one `check` run produced.
pub struct Report {
    /// Findings that survived allowlist + waivers, i.e. real
    /// violations (pre-baseline).
    pub findings: Vec<Diagnostic>,
    /// Findings absorbed by an `analyze.toml` allowlist entry.
    pub allowlisted: usize,
    /// Findings absorbed by inline `// eblcio-allow` waivers.
    pub waived: usize,
    /// Files scanned.
    pub files: usize,
    /// How the findings relate to the baseline.
    pub delta: BaselineDelta,
    /// The loaded baseline's recorded total (ratchet value).
    pub baseline_total: u32,
}

/// Directory names whose contents are never analyzed: integration
/// tests, benches, examples, and fixture corpora are not library code.
const SKIP_DIR_NAMES: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];

/// Runs the full analysis rooted at `root` with `config`.
pub fn run(root: &Path, config: &Config, baseline: &Baseline) -> Result<Report, String> {
    let mut files = Vec::new();
    for inc in &config.include {
        collect_rs_files(&root.join(inc), root, config, &mut files)?;
    }
    files.sort();
    let rules = all_rules();
    let mut findings = Vec::new();
    let mut allowlisted = 0usize;
    let mut waived = 0usize;
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let (mut file_findings, file_allowed, file_waived) =
            analyze_source(rel, &text, &rules, config);
        allowlisted += file_allowed;
        waived += file_waived;
        findings.append(&mut file_findings);
    }
    let delta = baseline.delta(&findings);
    Ok(Report {
        findings,
        allowlisted,
        waived,
        files: files.len(),
        delta,
        baseline_total: baseline.total(),
    })
}

/// Analyzes one file's source text (exposed for fixture tests).
/// Returns (surviving findings, allowlisted count, waived count).
pub fn analyze_source(
    rel_path: &str,
    text: &str,
    rules: &[Box<dyn Rule>],
    config: &Config,
) -> (Vec<Diagnostic>, usize, usize) {
    let all_toks = lex(text);
    let toks: Vec<Tok> = all_toks.iter().filter(|t| !t.is_trivia()).cloned().collect();
    let in_test = mark_test_items(&toks);
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let ctx = FileCtx {
        rel_path,
        toks: &toks,
        in_test: &in_test,
        lines: &lines,
        is_crate_root: is_library_root(rel_path),
    };
    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in rules {
        raw.extend(rule.check(&ctx));
    }
    // Allowlist: whole-file-prefix exemptions from analyze.toml.
    let mut allowed = 0usize;
    raw.retain(|d| {
        let hit = config.allows_for(d.rule, rel_path).is_some();
        allowed += hit as usize;
        !hit
    });
    // Waivers: `// eblcio-allow(rule): reason` on the finding's line or
    // the line above.
    let waivers = collect_waivers(&all_toks);
    let mut used = vec![false; waivers.len()];
    let mut waived = 0usize;
    raw.retain(|d| {
        let hit = waivers.iter().enumerate().find(|(_, w)| {
            w.rules.iter().any(|r| r == d.rule) && (w.line == d.line || w.line + 1 == d.line)
        });
        if let Some((i, _)) = hit {
            used[i] = true;
            waived += 1;
            false
        } else {
            true
        }
    });
    // Waiver hygiene: malformed or unused waivers are findings
    // themselves — a stale waiver is a hole in the wall.
    for (i, w) in waivers.iter().enumerate() {
        let mut bad = |message: String| {
            raw.push(Diagnostic {
                rule: "waiver-hygiene",
                file: rel_path.to_string(),
                line: w.line,
                col: 1,
                message,
                snippet: lines.get(w.line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default(),
            });
        };
        if w.reason.is_empty() {
            bad("waiver has no reason — write `// eblcio-allow(rule): why`".to_string());
        } else if let Some(unknown) = w.rules.iter().find(|r| !known_rule(rules, r)) {
            bad(format!("waiver names unknown rule `{unknown}`"));
        } else if !used[i] {
            bad("waiver matches no finding on this or the next line — remove it".to_string());
        }
    }
    raw.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (raw, allowed, waived)
}

fn known_rule(rules: &[Box<dyn Rule>], id: &str) -> bool {
    rules.iter().any(|r| r.id() == id)
}

/// A parsed `// eblcio-allow(rule[, rule…]): reason` comment.
struct Waiver {
    line: u32,
    rules: Vec<String>,
    reason: String,
}

fn collect_waivers(toks: &[Tok]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // A waiver must START the comment (`// eblcio-allow(…): …`);
        // prose that merely mentions the syntax is not a waiver.
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("eblcio-allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Waiver { line: t.line, rules: Vec::new(), reason: String::new() });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..]
            .trim_start_matches([':', ' '])
            .trim_end_matches("*/")
            .trim()
            .to_string();
        out.push(Waiver { line: t.line, rules, reason });
    }
    out
}

/// Marks tokens inside `#[cfg(test)]`- or `#[test]`-gated items. The
/// scan finds the attribute, skips any further attributes, then marks
/// through the item's body (`{ … }`) or declaration-terminating `;`.
fn mark_test_items(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attribute(toks, i) {
            let mut j = after_attr;
            // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod …`).
            while toks.get(j).is_some_and(|t| t.is_punct('#')) {
                j = skip_attribute(toks, j);
            }
            // Mark to the end of the item.
            let mut depth = 0usize;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    if depth == 0 {
                        // Enclosing scope closed before the item did —
                        // malformed source; stop marking here.
                        break;
                    }
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            for m in &mut mask[i..=j.min(toks.len() - 1)] {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// At a `#`: is this `#[cfg(test)]`, `#[cfg(all/any(… test …))]`, or
/// `#[test]`? Returns the index after the closing `]`.
fn match_test_attribute(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks.get(i)?.is_punct('#') && toks.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let end = attribute_end(toks, i)?;
    let body = &toks[i + 2..end - 1];
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test.then_some(end)
}

/// Index one past an attribute's closing `]` (cursor on `#`).
fn attribute_end(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if !toks.get(j)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

fn skip_attribute(toks: &[Tok], i: usize) -> usize {
    attribute_end(toks, i).unwrap_or(i + 1)
}

/// `…/src/lib.rs` under `crates/`, or the facade root `src/lib.rs`,
/// must carry `#![forbid(unsafe_code)]`.
fn is_library_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs" || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

fn collect_rs_files(
    dir: &Path,
    root: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        // A configured include dir may not exist in a partial checkout.
        Err(_) => return Ok(()),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for e in entries {
        paths.push(e.map_err(|e| format!("walking {}: {e}", dir.display()))?.path());
    }
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let rel = p
            .strip_prefix(root)
            .map_err(|_| format!("path {} escapes root", p.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if config.is_excluded(&rel) {
            continue;
        }
        if p.is_dir() {
            if SKIP_DIR_NAMES.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&p, root, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        let cfg = Config {
            include: vec!["src".into()],
            exclude: vec![],
            allow: vec![],
        };
        analyze_source("crates/x/src/a.rs", src, &all_rules(), &cfg).0
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = r#"
pub fn live() { data.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { data.unwrap(); panic!("fine in tests"); }
}
"#;
        let diags = check(src);
        let pf: Vec<_> = diags.iter().filter(|d| d.rule == "panic-freedom").collect();
        assert_eq!(pf.len(), 1, "{diags:?}");
        assert_eq!(pf[0].line, 2);
    }

    #[test]
    fn test_attribute_function_is_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        let diags = check(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn unsafe_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x(); } }\n}\n";
        let diags = check(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unsafe-freedom");
    }

    #[test]
    fn waiver_absorbs_and_unused_waiver_reports() {
        let with = "// eblcio-allow(panic-freedom): startup-only invariant\nfn f() { x.unwrap(); }\n";
        assert!(check(with).is_empty());
        let unused = "// eblcio-allow(panic-freedom): nothing here\nfn f() { x + 1; }\n";
        let diags = check(unused);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "waiver-hygiene");
    }

    #[test]
    fn prose_mentioning_waiver_syntax_is_not_a_waiver() {
        // Doc comments describing the mechanism must not register as
        // (unused) waivers.
        let src = "/// Waivers look like `// eblcio-allow(rule): reason`.\nfn f() {}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn waiver_without_reason_reports() {
        let src = "fn f() { x.unwrap(); } // eblcio-allow(panic-freedom)\n";
        let diags = check(src);
        assert!(diags.iter().any(|d| d.rule == "waiver-hygiene" && d.message.contains("reason")));
    }

    #[test]
    fn allowlist_absorbs_by_path_prefix() {
        let cfg = Config {
            include: vec!["src".into()],
            exclude: vec![],
            allow: vec![crate::config::AllowEntry {
                rule: "panic-freedom".into(),
                path: "crates/x/".into(),
                reason: "demo".into(),
            }],
        };
        let (diags, allowed, _) =
            analyze_source("crates/x/src/a.rs", "fn f() { x.unwrap(); }", &all_rules(), &cfg);
        assert!(diags.is_empty());
        assert_eq!(allowed, 1);
    }

    #[test]
    fn library_root_requires_forbid_attribute() {
        let cfg = Config { include: vec!["src".into()], exclude: vec![], allow: vec![] };
        let (diags, _, _) =
            analyze_source("crates/x/src/lib.rs", "pub fn f() {}\n", &all_rules(), &cfg);
        assert!(diags.iter().any(|d| d.rule == "unsafe-freedom" && d.message.contains("forbid")));
        let (diags, _, _) = analyze_source(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &all_rules(),
            &cfg,
        );
        assert!(diags.is_empty(), "{diags:?}");
        // Non-root files don't need it.
        let (diags, _, _) =
            analyze_source("crates/x/src/util.rs", "pub fn f() {}\n", &all_rules(), &cfg);
        assert!(diags.is_empty());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = r##"
fn f() {
    let a = "call .unwrap() and panic! now";
    let b = r#"std::fs::File::open("x")"#;
    // x.unwrap() in a comment
    /* std::sync::Mutex in a block comment */
}
"##;
        assert!(check(src).is_empty());
    }
}
