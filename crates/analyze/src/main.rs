//! CLI for the workspace architecture linter.
//!
//! ```text
//! cargo run -p eblcio-analyze -- check                # CI gate
//! cargo run -p eblcio-analyze -- check --json         # machine output
//! cargo run -p eblcio-analyze -- check --update-baseline
//! cargo run -p eblcio-analyze -- explain              # why each rule exists
//! ```
//!
//! Exit codes: 0 clean, 1 violations (new findings or a stale
//! baseline), 2 usage/config errors.

#![forbid(unsafe_code)]

use eblcio_analyze::baseline::Baseline;
use eblcio_analyze::config::Config;
use eblcio_analyze::diagnostics::json_str;
use eblcio_analyze::engine;
use eblcio_analyze::rules::all_rules;
use std::path::PathBuf;
use std::process::ExitCode;

const CONFIG_FILE: &str = "analyze.toml";
const BASELINE_FILE: &str = "analyze-baseline.txt";

struct Args {
    command: String,
    json: bool,
    explain: bool,
    update_baseline: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        json: false,
        explain: false,
        update_baseline: false,
        root: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--explain" => args.explain = true,
            "--update-baseline" => args.update_baseline = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "check" | "explain" if args.command.is_empty() => args.command = a,
            other => return Err(format!("unknown argument `{other}` (try `check` or `explain`)")),
        }
    }
    if args.command.is_empty() {
        return Err("usage: eblcio-analyze <check|explain> [--json] [--explain] \
                    [--update-baseline] [--root DIR]"
            .into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eblcio-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("eblcio-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<bool, String> {
    let config = Config::load(&args.root.join(CONFIG_FILE))?;
    if args.command == "explain" || args.explain {
        print_explain(&config);
        if args.command == "explain" {
            return Ok(true);
        }
    }
    let baseline_path = args.root.join(BASELINE_FILE);
    let baseline = Baseline::load(&baseline_path)?;
    let report = engine::run(&args.root, &config, &baseline)?;

    if args.update_baseline {
        let rendered = Baseline::render(&report.findings);
        let new_total = report.findings.len() as u32;
        std::fs::write(&baseline_path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "baseline updated: {} -> {} grandfathered finding(s) in {}",
            baseline.total(),
            new_total,
            BASELINE_FILE
        );
        if new_total > baseline.total() && !baseline.is_empty() {
            println!(
                "warning: the baseline GREW by {} — new violations should be fixed, not \
                 grandfathered (CI enforces the recorded ceiling)",
                new_total - baseline.total()
            );
        }
        return Ok(true);
    }

    if args.json {
        print_json(&report);
    } else {
        print_human(&report);
    }
    Ok(report.delta.new.is_empty() && report.delta.stale.is_empty())
}

fn print_human(report: &engine::Report) {
    for d in &report.delta.new {
        println!("{}", d.render());
    }
    if !report.delta.stale.is_empty() {
        println!(
            "\nstale baseline: {} entr{} for violations that no longer exist — the ratchet \
             only turns one way; run `cargo run -p eblcio-analyze -- check --update-baseline`:",
            report.delta.stale.len(),
            if report.delta.stale.len() == 1 { "y" } else { "ies" }
        );
        for key in &report.delta.stale {
            println!("    {}", key.replace('\t', "  "));
        }
    }
    println!(
        "\n{} file(s) scanned: {} violation(s) ({} new, {} grandfathered), \
         {} allowlisted, {} waived, baseline total {}",
        report.files,
        report.findings.len(),
        report.delta.new.len(),
        report.delta.grandfathered,
        report.allowlisted,
        report.waived,
        report.baseline_total,
    );
    if report.delta.new.is_empty() && report.delta.stale.is_empty() {
        println!("architecture check: PASS");
    } else {
        println!("architecture check: FAIL");
    }
}

fn print_json(report: &engine::Report) {
    let findings: Vec<String> = report.delta.new.iter().map(|d| d.to_json()).collect();
    let stale: Vec<String> = report.delta.stale.iter().map(|k| json_str(k)).collect();
    println!(
        "{{\"files\":{},\"violations\":{},\"new\":[{}],\"grandfathered\":{},\
         \"allowlisted\":{},\"waived\":{},\"baseline_total\":{},\"stale_baseline\":[{}],\
         \"pass\":{}}}",
        report.files,
        report.findings.len(),
        findings.join(","),
        report.delta.grandfathered,
        report.allowlisted,
        report.waived,
        report.baseline_total,
        stale.join(","),
        report.delta.new.is_empty() && report.delta.stale.is_empty(),
    );
}

fn print_explain(config: &Config) {
    println!("eblcio-analyze: workspace architecture rules\n");
    for rule in all_rules() {
        println!("[{}]", rule.id());
        for line in wrap(rule.explain(), 76) {
            println!("  {line}");
        }
        let allows: Vec<_> = config.allow.iter().filter(|a| a.rule == rule.id()).collect();
        if !allows.is_empty() {
            println!("  allowlisted paths:");
            for a in allows {
                println!("    {} — {}", a.path, a.reason);
            }
        }
        println!();
    }
    println!("[waiver-hygiene]");
    println!(
        "  Inline waivers are `// eblcio-allow(rule): reason` on the offending line or\n  \
         the line above. A waiver with no reason, naming an unknown rule, or matching\n  \
         no finding is itself a violation."
    );
}

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}
