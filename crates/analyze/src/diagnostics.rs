//! Diagnostics: what a rule reports, and how reports serialize for
//! humans (`file:line:col`), machines (`--json`), and the baseline
//! (line-content keys that survive unrelated edits).

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`panic-freedom`, `storage-boundary`, …).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of this specific finding.
    pub message: String,
    /// The source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// `file:line:col: [rule] message` followed by the snippet.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.col, self.rule, self.message, self.snippet
        )
    }

    /// Baseline key: rule, file, and *normalized line content* — not
    /// the line number, so baselined findings survive edits elsewhere
    /// in the file. Two identical offending lines in one file share a
    /// key; the baseline stores a count per key.
    pub fn baseline_key(&self) -> String {
        let mut squashed = String::with_capacity(self.snippet.len());
        let mut last_space = false;
        for c in self.snippet.chars() {
            if c.is_whitespace() {
                if !last_space {
                    squashed.push(' ');
                }
                last_space = true;
            } else {
                squashed.push(c);
                last_space = false;
            }
        }
        format!("{}\t{}\t{}", self.rule, self.file, squashed.trim())
    }

    /// One JSON object (hand-emitted; the analyzer has no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.snippet),
        )
    }
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "panic-freedom",
            file: "crates/x/src/lib.rs".into(),
            line: 10,
            col: 7,
            message: "`.unwrap()` in library code".into(),
            snippet: "let v =   data.unwrap();".into(),
        }
    }

    #[test]
    fn render_has_location_and_rule() {
        let r = diag().render();
        assert!(r.starts_with("crates/x/src/lib.rs:10:7: [panic-freedom]"));
        assert!(r.contains("unwrap"));
    }

    #[test]
    fn baseline_key_ignores_line_numbers_and_inner_whitespace() {
        let mut a = diag();
        let mut b = diag();
        b.line = 99;
        b.col = 1;
        b.snippet = "let v = data.unwrap();".into();
        a.snippet = "let v =    data.unwrap();".into();
        assert_eq!(a.baseline_key(), b.baseline_key());
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let j = diag().to_json();
        assert!(j.contains("\"line\":10"));
        assert!(j.contains("\"rule\":\"panic-freedom\""));
    }
}
