//! The ratchet: `analyze-baseline.txt` grandfathers violations that
//! predate the analyzer. New findings (not in the baseline) fail the
//! check; fixed findings (in the baseline but no longer reported) also
//! fail until the stale entries are removed with `--update-baseline` —
//! so the recorded count can only go down.

use crate::diagnostics::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed baseline: key → grandfathered occurrence count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    entries: BTreeMap<String, u32>,
    /// Total count recorded in the header (0 for an empty/missing file).
    pub recorded_total: u32,
}

/// Outcome of checking current findings against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDelta {
    /// Findings not covered by the baseline — these fail the check.
    pub new: Vec<Diagnostic>,
    /// Baseline keys with fewer current findings than recorded — the
    /// violation was fixed and the entry must be dropped.
    pub stale: Vec<String>,
    /// Findings absorbed by the baseline.
    pub grandfathered: usize,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parses baseline text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut b = Self::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                // Header line `# total: N` records the ratchet count.
                if let Some(n) = rest.trim().strip_prefix("total:") {
                    b.recorded_total = n
                        .trim()
                        .parse()
                        .map_err(|_| format!("baseline line {}: bad total", i + 1))?;
                }
                continue;
            }
            let (count, key) = line
                .split_once('\t')
                .ok_or_else(|| format!("baseline line {}: expected `count<TAB>key`", i + 1))?;
            let count: u32 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            if count == 0 {
                return Err(format!("baseline line {}: zero count", i + 1));
            }
            *b.entries.entry(key.to_string()).or_insert(0) += count;
        }
        Ok(b)
    }

    /// Serializes a baseline covering exactly `diags`.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for d in diags {
            *counts.entry(d.baseline_key()).or_insert(0) += 1;
        }
        let total: u32 = counts.values().sum();
        let mut out = String::new();
        out.push_str(&format!("# total: {total}\n"));
        out.push_str(
            "# Grandfathered architecture-lint findings. This file is a ratchet:\n\
             # new violations are NOT added here (fix them instead), and entries\n\
             # for fixed violations must be removed — regenerate with\n\
             #   cargo run -p eblcio-analyze -- check --update-baseline\n\
             # Format: count<TAB>rule<TAB>file<TAB>normalized source line.\n",
        );
        for (key, n) in &counts {
            out.push_str(&format!("{n}\t{key}\n"));
        }
        out
    }

    /// Number of distinct grandfathered entries (keys).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of grandfathered occurrence counts.
    pub fn total(&self) -> u32 {
        self.entries.values().sum()
    }

    /// Splits current findings into new vs grandfathered, and reports
    /// stale baseline entries.
    pub fn delta(&self, diags: &[Diagnostic]) -> BaselineDelta {
        let mut seen: BTreeMap<String, u32> = BTreeMap::new();
        let mut out = BaselineDelta::default();
        for d in diags {
            let key = d.baseline_key();
            let used = seen.entry(key.clone()).or_insert(0);
            *used += 1;
            if *used <= self.entries.get(&key).copied().unwrap_or(0) {
                out.grandfathered += 1;
            } else {
                out.new.push(d.clone());
            }
        }
        for (key, &count) in &self.entries {
            if seen.get(key).copied().unwrap_or(0) < count {
                out.stale.push(key.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            col: 1,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let diags = vec![
            diag("panic-freedom", "a.rs", 3, "x.unwrap();"),
            diag("panic-freedom", "a.rs", 9, "x.unwrap();"),
            diag("lock-discipline", "b.rs", 1, "use std::sync::Mutex;"),
        ];
        let text = Baseline::render(&diags);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.total(), 3);
        assert_eq!(b.len(), 2); // two identical lines in a.rs share a key
        assert_eq!(b.recorded_total, 3);
        let d = b.delta(&diags);
        assert!(d.new.is_empty());
        assert!(d.stale.is_empty());
        assert_eq!(d.grandfathered, 3);
    }

    #[test]
    fn new_finding_not_absorbed() {
        let old = vec![diag("panic-freedom", "a.rs", 3, "x.unwrap();")];
        let b = Baseline::parse(&Baseline::render(&old)).unwrap();
        let now = vec![
            diag("panic-freedom", "a.rs", 3, "x.unwrap();"),
            diag("panic-freedom", "a.rs", 20, "y.expect(\"no\");"),
        ];
        let d = b.delta(&now);
        assert_eq!(d.new.len(), 1);
        assert!(d.new[0].snippet.contains("expect"));
        assert!(d.stale.is_empty());
    }

    #[test]
    fn fixed_finding_reports_stale_entry() {
        let old = vec![
            diag("panic-freedom", "a.rs", 3, "x.unwrap();"),
            diag("panic-freedom", "b.rs", 4, "y.unwrap();"),
        ];
        let b = Baseline::parse(&Baseline::render(&old)).unwrap();
        let now = vec![diag("panic-freedom", "a.rs", 3, "x.unwrap();")];
        let d = b.delta(&now);
        assert!(d.new.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert!(d.stale[0].contains("b.rs"));
    }

    #[test]
    fn line_moves_do_not_invalidate() {
        let old = vec![diag("panic-freedom", "a.rs", 3, "x.unwrap();")];
        let b = Baseline::parse(&Baseline::render(&old)).unwrap();
        let now = vec![diag("panic-freedom", "a.rs", 300, "x.unwrap();")];
        let d = b.delta(&now);
        assert!(d.new.is_empty() && d.stale.is_empty());
    }

    #[test]
    fn duplicate_lines_are_counted_not_collapsed() {
        let old = vec![
            diag("panic-freedom", "a.rs", 3, "x.unwrap();"),
            diag("panic-freedom", "a.rs", 9, "x.unwrap();"),
        ];
        let b = Baseline::parse(&Baseline::render(&old)).unwrap();
        // A third identical line is NEW, not silently absorbed.
        let now = vec![
            diag("panic-freedom", "a.rs", 3, "x.unwrap();"),
            diag("panic-freedom", "a.rs", 9, "x.unwrap();"),
            diag("panic-freedom", "a.rs", 12, "x.unwrap();"),
        ];
        let d = b.delta(&now);
        assert_eq!(d.new.len(), 1);
        // And fixing one of the two makes the baseline stale.
        let fewer = vec![diag("panic-freedom", "a.rs", 3, "x.unwrap();")];
        let d = b.delta(&fewer);
        assert_eq!(d.stale.len(), 1);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/analyze-baseline.txt")).unwrap();
        assert!(b.is_empty());
    }
}
