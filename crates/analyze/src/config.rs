//! `analyze.toml`: scan roots and the per-rule allowlist.
//!
//! The analyzer is dependency-free, so this module carries a small
//! TOML-subset reader covering exactly what the config uses: `[table]`
//! headers, `[[array-of-table]]` headers, `key = "string"`, and
//! `key = ["array", "of", "strings"]` (single- or multi-line), plus
//! `#` comments. Anything outside that subset is a hard error — a
//! misread allowlist must never silently widen the rules.

use std::path::Path;

/// One allowlist entry: a rule is waived under a path prefix, with a
/// justification that `--explain` prints.
#[derive(Clone, Debug, PartialEq)]
pub struct AllowEntry {
    /// Rule id the entry applies to (`storage-boundary`, …).
    pub rule: String,
    /// Workspace-relative path prefix (`crates/store/src/storage/`).
    pub path: String,
    /// Why this code is exempt — required, surfaced in `--explain`.
    pub reason: String,
}

/// Parsed `analyze.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Directories (workspace-relative) whose `.rs` files are scanned.
    pub include: Vec<String>,
    /// Path prefixes excluded from the scan entirely.
    pub exclude: Vec<String>,
    /// Per-rule path exemptions.
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Reads and parses the config file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parses config text (exposed for tests).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut pending_allow: Option<AllowEntry> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let errctx = |m: String| format!("analyze.toml line {}: {m}", idx + 1);
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                flush_allow(&mut cfg, &mut pending_allow)?;
                if header.trim() != "allow" {
                    return Err(errctx(format!("unknown table array [[{header}]]")));
                }
                section = "allow".into();
                pending_allow = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                });
            } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush_allow(&mut cfg, &mut pending_allow)?;
                section = header.trim().to_string();
                if section != "scan" {
                    return Err(errctx(format!("unknown section [{section}]")));
                }
            } else {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| errctx("expected `key = value`".into()))?;
                let key = key.trim();
                let mut value = value.trim().to_string();
                // Multi-line arrays: keep consuming lines until the
                // closing bracket.
                while value.starts_with('[') && !value.ends_with(']') {
                    let (_, next) = lines
                        .next()
                        .ok_or_else(|| errctx("unterminated array".into()))?;
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
                match (section.as_str(), key) {
                    ("scan", "include") => cfg.include = parse_string_array(&value).map_err(errctx)?,
                    ("scan", "exclude") => cfg.exclude = parse_string_array(&value).map_err(errctx)?,
                    ("allow", "rule") => {
                        allow_field(&mut pending_allow, |a| &mut a.rule, &value).map_err(errctx)?
                    }
                    ("allow", "path") => {
                        allow_field(&mut pending_allow, |a| &mut a.path, &value).map_err(errctx)?
                    }
                    ("allow", "reason") => {
                        allow_field(&mut pending_allow, |a| &mut a.reason, &value).map_err(errctx)?
                    }
                    _ => return Err(errctx(format!("unknown key `{key}` in [{section}]"))),
                }
            }
        }
        flush_allow(&mut cfg, &mut pending_allow)?;
        if cfg.include.is_empty() {
            return Err("analyze.toml: [scan] include must list at least one directory".into());
        }
        Ok(cfg)
    }

    /// Allowlist entries whose rule and path prefix cover this file.
    pub fn allows_for<'a>(&'a self, rule: &str, rel_path: &str) -> Option<&'a AllowEntry> {
        self.allow
            .iter()
            .find(|a| a.rule == rule && rel_path.starts_with(&a.path))
    }

    /// True when the path is excluded from scanning altogether.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|e| rel_path.starts_with(e.as_str()))
    }
}

fn allow_field(
    pending: &mut Option<AllowEntry>,
    field: impl Fn(&mut AllowEntry) -> &mut String,
    value: &str,
) -> Result<(), String> {
    let entry = pending
        .as_mut()
        .ok_or_else(|| "allow keys outside [[allow]]".to_string())?;
    *field(entry) = parse_string(value)?;
    Ok(())
}

fn flush_allow(cfg: &mut Config, pending: &mut Option<AllowEntry>) -> Result<(), String> {
    if let Some(a) = pending.take() {
        if a.rule.is_empty() || a.path.is_empty() {
            return Err("analyze.toml: [[allow]] entry needs `rule` and `path`".into());
        }
        if a.reason.is_empty() {
            return Err(format!(
                "analyze.toml: [[allow]] for {} at {} has no `reason` — every exemption \
                 must say why",
                a.rule, a.path
            ));
        }
        cfg.allow.push(a);
    }
    Ok(())
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("expected a \"quoted string\", got `{v}`"))
}

fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = v
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [\"a\", \"b\"], got `{v}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[scan]
include = ["src", "crates"]
exclude = [
    "crates/analyze/tests/fixtures",  # fixtures are deliberately bad
]

[[allow]]
rule = "storage-boundary"
path = "crates/store/src/storage/"
reason = "the backends are the boundary"

[[allow]]
rule = "panic-freedom"
path = "crates/bench/"
reason = "operator-facing tools"
"#;

    #[test]
    fn parses_sample() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.include, ["src", "crates"]);
        assert_eq!(cfg.exclude, ["crates/analyze/tests/fixtures"]);
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.allow[0].rule, "storage-boundary");
        assert!(cfg.allow[1].reason.contains("operator"));
    }

    #[test]
    fn allow_lookup_is_prefix_based() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert!(cfg
            .allows_for("storage-boundary", "crates/store/src/storage/filesystem.rs")
            .is_some());
        assert!(cfg.allows_for("storage-boundary", "crates/store/src/store.rs").is_none());
        assert!(cfg.allows_for("panic-freedom", "crates/store/src/storage/filesystem.rs").is_none());
    }

    #[test]
    fn reason_is_mandatory() {
        let bad = "[scan]\ninclude=[\"src\"]\n[[allow]]\nrule=\"x\"\npath=\"y\"\n";
        let err = Config::parse(bad).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        let bad = "[scan]\ninclude=[\"src\"]\nallowlist=[\"x\"]\n";
        assert!(Config::parse(bad).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse(
            "[scan]\ninclude=[\"src\"]\n[[allow]]\nrule=\"r\"\npath=\"p\"\nreason=\"see issue #7\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allow[0].reason, "see issue #7");
    }
}
