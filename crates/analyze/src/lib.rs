//! `eblcio-analyze`: the workspace architecture linter.
//!
//! PRs 4–6 built invariants that ordinary tests cannot enforce — the
//! `Arc<dyn Storage>` boundary, panic-free serve paths, poison-free
//! locking. This crate machine-checks them on every commit:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `storage-boundary` | `std::fs`/`File::open` only in the storage backends and allowlisted binaries |
//! | `panic-freedom`    | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in non-test library code |
//! | `lock-discipline`  | no poisoning `std::sync::Mutex`/`RwLock`/`Condvar`; `parking_lot` only |
//! | `unsafe-freedom`   | zero `unsafe`, and `#![forbid(unsafe_code)]` on every library root |
//! | `error-hygiene`    | no `Box<dyn Error>` in `pub fn` signatures; typed errors only |
//!
//! The pass is built from scratch on a lightweight Rust [`lexer`] (so
//! string literals, doc comments, raw strings, and `'a`-vs-`'x'` never
//! confuse it), a per-rule visitor [`rules`] layer, an `analyze.toml`
//! allowlist ([`config`]), inline `// eblcio-allow(rule): reason`
//! waivers, and a ratcheting [`baseline`] that grandfathers pre-existing
//! violations while refusing new ones.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use config::Config;
pub use diagnostics::Diagnostic;
pub use engine::{run, Report};
