//! The five architecture rules.
//!
//! Each rule is a visitor over one file's token stream. Rules see only
//! non-trivia tokens (comments and whitespace are gone) with a parallel
//! `in_test` mask marking tokens inside `#[cfg(test)]` / `#[test]`
//! items, so "non-test library code" is decided once, centrally.

use crate::diagnostics::Diagnostic;
use crate::lexer::Tok;

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// Non-trivia tokens.
    pub toks: &'a [Tok],
    /// `in_test[i]` — token `i` is inside a test-only item.
    pub in_test: &'a [bool],
    /// Raw source lines (0-indexed) for snippets.
    pub lines: &'a [String],
    /// True for a library crate root (`…/src/lib.rs`), where
    /// `#![forbid(unsafe_code)]` is required.
    pub is_crate_root: bool,
}

impl FileCtx<'_> {
    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn diag(&self, rule: &'static str, tok: &Tok, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
        }
    }
}

/// One architecture rule.
pub trait Rule {
    /// Stable rule id — what waivers, the allowlist, and the baseline
    /// reference.
    fn id(&self) -> &'static str;
    /// Why the rule exists; printed by `--explain`.
    fn explain(&self) -> &'static str;
    /// Whether findings inside `#[cfg(test)]`/`#[test]` items count.
    /// Default: test code is exempt.
    fn applies_in_tests(&self) -> bool {
        false
    }
    /// Scans one file.
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic>;
}

/// All five rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(StorageBoundary),
        Box::new(PanicFreedom),
        Box::new(LockDiscipline),
        Box::new(UnsafeFreedom),
        Box::new(ErrorHygiene),
    ]
}

/// Is token `i` live for this rule (not in an exempt test item)?
fn live(rule: &dyn Rule, ctx: &FileCtx<'_>, i: usize) -> bool {
    rule.applies_in_tests() || !ctx.in_test.get(i).copied().unwrap_or(false)
}

/// Matches `toks[i..]` against a `::`-separated path given as segment
/// names, e.g. `["std", "sync"]` matches `std :: sync`. Returns the
/// index one past the match.
fn match_path(toks: &[Tok], i: usize, segments: &[&str]) -> Option<usize> {
    let mut j = i;
    for (n, seg) in segments.iter().enumerate() {
        if n > 0 {
            if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
                return None;
            }
            j += 2;
        }
        if !toks.get(j)?.is_ident(seg) {
            return None;
        }
        j += 1;
    }
    Some(j)
}

// ---------------------------------------------------------------------
// storage-boundary
// ---------------------------------------------------------------------

/// `Arc<dyn Storage>` is the only sanctioned path to bytes: direct
/// `std::fs` / `File::open` use is confined (by allowlist) to the
/// storage backends, the bench binaries, and the CLI.
pub struct StorageBoundary;

impl Rule for StorageBoundary {
    fn id(&self) -> &'static str {
        "storage-boundary"
    }

    fn explain(&self) -> &'static str {
        "Direct filesystem access (`std::fs`, `File::open`/`File::create`) bypasses the \
         `Storage` trait — the pluggable-backend boundary PR 6 established. Code that \
         touches bytes directly cannot be redirected to the in-memory, object-store, or \
         fault-injecting backends, silently escapes the cost model, and breaks the \
         conformance guarantees. Filesystem calls belong in `crates/store/src/storage/` \
         (the backends ARE the boundary) and in operator-facing binaries listed in \
         `analyze.toml`."
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = ctx.toks;
        for i in 0..toks.len() {
            if !live(self, ctx, i) {
                continue;
            }
            if match_path(toks, i, &["std", "fs"]).is_some()
                && !(i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':'))
            {
                out.push(ctx.diag(
                    self.id(),
                    &toks[i],
                    "`std::fs` outside the storage boundary — go through `Arc<dyn Storage>`"
                        .into(),
                ));
            }
            if toks[i].is_ident("File")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("open") || t.is_ident("create"))
            {
                out.push(ctx.diag(
                    self.id(),
                    &toks[i],
                    format!(
                        "`File::{}` outside the storage boundary — go through `Arc<dyn Storage>`",
                        toks[i + 3].text
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// panic-freedom
// ---------------------------------------------------------------------

/// Library code a serve daemon executes must return typed errors, not
/// abort the process.
pub struct PanicFreedom;

/// Macro names that abort: `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`. (`assert!` stays legal: invariant checks that
/// document impossibility are different from control flow by panic.)
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn explain(&self) -> &'static str {
        "A panic in library code kills the whole serve daemon — one poisoned request takes \
         down every concurrent client. Library crates must surface failures as typed \
         `CodecError` values; `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, \
         and `unimplemented!` are forbidden outside `#[cfg(test)]` code. Genuinely \
         impossible branches carry an inline `// eblcio-allow(panic-freedom): why` waiver."
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = ctx.toks;
        for i in 0..toks.len() {
            if !live(self, ctx, i) {
                continue;
            }
            // `.unwrap()` / `.expect(` — method calls only, so local
            // functions named e.g. `unwrap_shape(…)` don't trip it.
            if i >= 1
                && toks[i - 1].is_punct('.')
                && (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                out.push(ctx.diag(
                    self.id(),
                    &toks[i],
                    format!("`.{}(…)` in non-test library code — return a typed error", toks[i].text),
                ));
            }
            if PANIC_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                out.push(ctx.diag(
                    self.id(),
                    &toks[i],
                    format!("`{}!` in non-test library code — return a typed error", toks[i].text),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------

/// Poisoning `std::sync` locks are banned: one panicking thread would
/// poison the lock and error every later client. `parking_lot` only.
pub struct LockDiscipline;

const BANNED_SYNC: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn explain(&self) -> &'static str {
        "`std::sync::Mutex`/`RwLock`/`Condvar` poison on panic: one crashed thread turns \
         every later lock acquisition into an error (or an unwrap-panic), cascading a \
         single fault across all clients of the serve path. The workspace standardizes on \
         the vendored poison-free `parking_lot` locks. `std::sync::Arc`, atomics, and \
         `OnceLock` remain fine — the rule targets the poisoning primitives only."
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = ctx.toks;
        for i in 0..toks.len() {
            if !live(self, ctx, i) {
                continue;
            }
            let Some(after) = match_path(toks, i, &["std", "sync"]) else {
                continue;
            };
            // Not a longer path's tail (e.g. `foo::std::sync` cannot
            // occur, but be strict anyway).
            if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                continue;
            }
            // Scan the rest of this path / use-tree, which ends at the
            // statement's `;` (use items) or leaves the path grammar
            // (expressions). Flag banned primitives inside it.
            for t in &toks[after..] {
                if t.is_punct(';') {
                    break;
                }
                if BANNED_SYNC.iter().any(|b| t.is_ident(b)) {
                    out.push(ctx.diag(
                        self.id(),
                        t,
                        format!(
                            "`std::sync::{}` is poisoning — use the vendored `parking_lot::{}`",
                            t.text, t.text
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// unsafe-freedom
// ---------------------------------------------------------------------

/// The workspace is 100% safe Rust, and stays that way.
pub struct UnsafeFreedom;

impl Rule for UnsafeFreedom {
    fn id(&self) -> &'static str {
        "unsafe-freedom"
    }

    fn explain(&self) -> &'static str {
        "The workspace currently contains zero `unsafe` blocks; every future one would be \
         a new class of risk the paper's reproduction does not need. Library crate roots \
         must carry `#![forbid(unsafe_code)]` so the compiler enforces it even when the \
         linter is not running; the rule flags any `unsafe` token and any library root \
         missing the attribute. Unlike the other rules, test code is NOT exempt."
    }

    fn applies_in_tests(&self) -> bool {
        true
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = ctx.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("unsafe") && live(self, ctx, i) {
                out.push(ctx.diag(
                    self.id(),
                    t,
                    "`unsafe` is forbidden workspace-wide".into(),
                ));
            }
        }
        if ctx.is_crate_root {
            // Look for the inner attribute `#![forbid(unsafe_code)]`.
            let mut found = false;
            for i in 0..toks.len() {
                if toks[i].is_punct('#')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
                    && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
                {
                    found = true;
                    break;
                }
            }
            if !found {
                out.push(Diagnostic {
                    rule: self.id(),
                    file: ctx.rel_path.to_string(),
                    line: 1,
                    col: 1,
                    message: "library crate root lacks `#![forbid(unsafe_code)]`".into(),
                    snippet: ctx.snippet(1),
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// error-hygiene
// ---------------------------------------------------------------------

/// Public APIs return typed errors, not `Box<dyn Error>`.
pub struct ErrorHygiene;

impl Rule for ErrorHygiene {
    fn id(&self) -> &'static str {
        "error-hygiene"
    }

    fn explain(&self) -> &'static str {
        "`Box<dyn Error>` in a public signature erases what can go wrong: callers cannot \
         match on failure modes (torn publish vs missing key vs corrupt stream), so they \
         either unwrap or blanket-retry. Public functions return the workspace's typed \
         `CodecError` (or a crate-local typed error) so failure handling stays explicit \
         all the way up the serve path."
    }

    fn check(&self, ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let toks = ctx.toks;
        let mut i = 0;
        while i < toks.len() {
            // `pub fn`, `pub(crate) fn`, `pub(in …) fn` all count: even
            // crate-visible APIs propagate erased errors outward.
            if !(toks[i].is_ident("pub") && live(self, ctx, i)) {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
                i += 1;
                continue;
            }
            // Scan the signature: everything up to the body `{` or a
            // trait-decl `;` at brace depth zero.
            let sig_start = j + 1;
            let mut end = sig_start;
            while end < toks.len() && !toks[end].is_punct('{') && !toks[end].is_punct(';') {
                end += 1;
            }
            let mut k = sig_start;
            while k + 2 < end {
                if toks[k].is_ident("Box")
                    && toks[k + 1].is_punct('<')
                    && toks[k + 2].is_ident("dyn")
                {
                    // Inside the box: a path ending in `Error` within
                    // the generic argument (covers `dyn Error`,
                    // `dyn std::error::Error + Send + Sync`).
                    let boxed_end = (k + 3..end)
                        .find(|&m| toks[m].is_punct('>'))
                        .unwrap_or(end);
                    if (k + 3..boxed_end).any(|m| toks[m].is_ident("Error")) {
                        out.push(ctx.diag(
                            self.id(),
                            &toks[k],
                            "`Box<dyn Error>` in a `pub fn` signature — return the typed \
                             `CodecError` instead"
                                .into(),
                        ));
                    }
                }
                k += 1;
            }
            i = end;
        }
        out
    }
}
