//! Fixture-driven self-tests for the architecture linter.
//!
//! Each `tests/fixtures/*.rs` file is a known-bad (or deliberately
//! tricky known-clean) source annotated with compiletest-style
//! `//~ rule-id` markers on the lines where a finding is expected. The
//! harness lexes and analyzes the fixture exactly as `check` would and
//! compares the (line, rule) multiset against the markers — so a rule
//! that over- or under-reports fails with a readable diff.

use eblcio_analyze::baseline::Baseline;
use eblcio_analyze::config::Config;
use eblcio_analyze::engine::analyze_source;
use eblcio_analyze::rules::all_rules;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Extracts `//~ rule-id` markers: (1-based line, rule id).
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("//~ ") {
            let tail = &rest[pos + 4..];
            let rule: String = tail.split_whitespace().next().unwrap_or("").to_string();
            assert!(!rule.is_empty(), "bare //~ marker on line {}", i + 1);
            out.push((i as u32 + 1, rule));
            rest = tail;
        }
    }
    out.sort();
    out
}

/// Runs the analyzer over fixture text under a neutral library path
/// (no allowlist, not a crate root) and returns (line, rule) pairs.
fn findings(src: &str) -> Vec<(u32, String)> {
    let cfg = Config { include: vec!["src".into()], exclude: vec![], allow: vec![] };
    let (diags, _, _) = analyze_source("crates/fixture/src/code.rs", src, &all_rules(), &cfg);
    let mut out: Vec<(u32, String)> =
        diags.iter().map(|d| (d.line, d.rule.to_string())).collect();
    out.sort();
    out
}

fn assert_fixture_matches(name: &str) {
    let src = fixture(name);
    let expected = expected_markers(&src);
    let actual = findings(&src);
    assert_eq!(
        actual, expected,
        "\nfixture {name}: analyzer findings (left) != //~ markers (right)"
    );
}

#[test]
fn storage_boundary_fixture() {
    assert_fixture_matches("storage_boundary_bad.rs");
}

#[test]
fn panic_freedom_fixture() {
    assert_fixture_matches("panic_freedom_bad.rs");
}

#[test]
fn lock_discipline_fixture() {
    assert_fixture_matches("lock_discipline_bad.rs");
}

#[test]
fn unsafe_freedom_fixture() {
    assert_fixture_matches("unsafe_bad.rs");
}

#[test]
fn error_hygiene_fixture() {
    assert_fixture_matches("error_hygiene_bad.rs");
}

#[test]
fn lexer_edge_cases_produce_no_findings() {
    assert_fixture_matches("lexer_edge_cases.rs");
    assert!(expected_markers(&fixture("lexer_edge_cases.rs")).is_empty());
}

#[test]
fn waiver_fixture() {
    assert_fixture_matches("waivers.rs");
}

#[test]
fn fixture_findings_roundtrip_through_baseline() {
    // Rendering a fixture's findings into baseline text and parsing it
    // back must grandfather exactly those findings — and stay stable
    // when every line number shifts (the ratchet keys on content).
    let src = fixture("panic_freedom_bad.rs");
    let cfg = Config { include: vec!["src".into()], exclude: vec![], allow: vec![] };
    let (diags, _, _) = analyze_source("crates/fixture/src/code.rs", &src, &all_rules(), &cfg);
    assert!(!diags.is_empty());
    let baseline = Baseline::parse(&Baseline::render(&diags)).unwrap();
    let delta = baseline.delta(&diags);
    assert!(delta.new.is_empty(), "{:?}", delta.new);
    assert!(delta.stale.is_empty(), "{:?}", delta.stale);
    assert_eq!(delta.grandfathered, diags.len());

    let shifted = format!("// leading comment shifts every line\n\n{src}");
    let (shifted_diags, _, _) =
        analyze_source("crates/fixture/src/code.rs", &shifted, &all_rules(), &cfg);
    let delta = baseline.delta(&shifted_diags);
    assert!(delta.new.is_empty() && delta.stale.is_empty());
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let cfg = Config { include: vec!["src".into()], exclude: vec![], allow: vec![] };
    let clean = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let (diags, _, _) = analyze_source("crates/x/src/lib.rs", clean, &all_rules(), &cfg);
    assert!(diags.is_empty(), "{diags:?}");
    let (diags, _, _) = analyze_source("crates/x/src/lib.rs", "pub fn f() {}\n", &all_rules(), &cfg);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "unsafe-freedom");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn workspace_analyze_toml_parses_with_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = Config::load(&root.join("analyze.toml")).unwrap();
    assert!(!cfg.allow.is_empty());
    for entry in &cfg.allow {
        assert!(!entry.reason.is_empty(), "allowlist entry for {} lacks a reason", entry.path);
    }
}

#[test]
fn workspace_passes_architecture_check() {
    // The real gate, runnable as a plain test: the live tree must have
    // no violations beyond the checked-in baseline, and no stale
    // baseline entries. This is what CI runs via `eblcio-analyze check`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = Config::load(&root.join("analyze.toml")).unwrap();
    let baseline = Baseline::load(&root.join("analyze-baseline.txt")).unwrap();
    let report = eblcio_analyze::run(&root, &config, &baseline).unwrap();
    let rendered: Vec<String> = report.delta.new.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "new architecture violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.delta.stale.is_empty(),
        "stale baseline entries (regenerate with --update-baseline): {:?}",
        report.delta.stale
    );
}
