// Fixture: poisoning std::sync primitives.

use std::sync::Mutex; //~ lock-discipline

use std::sync::{Arc, Condvar}; //~ lock-discipline

use std::sync::atomic::AtomicU64;

pub fn guarded(m: &std::sync::RwLock<u32>) -> u32; //~ lock-discipline

pub fn fine(n: &AtomicU64, a: Arc<u32>) -> u64 {
    // parking_lot types and std::sync::Arc/atomics are allowed.
    let _ = a;
    n.load(std::sync::atomic::Ordering::Relaxed)
}
