// Fixture: everything below LOOKS like a violation but is inert —
// inside strings, raw strings, byte strings, comments, or is a
// lifetime rather than a char literal. Expected findings: none.

pub fn tricky<'a>(s: &'a str) -> &'a str {
    let _c: char = 'x';
    let _esc: char = '\'';
    let _newline: char = '\n';
    let _s = "call .unwrap() and panic! now; also std::fs::File::open";
    let _raw = r#"std::sync::Mutex::new(0).lock().expect("poisoned")"#;
    let _deep = r##"nested raw with "# inside, plus .unwrap()"##;
    let _bytes = b"std::sync::Condvar and unsafe { }";
    let _braw = br#"File::create("x").unwrap()"#;
    // line comment: x.unwrap() and panic!("…")
    /* block comment: std::sync::RwLock
       /* nested block: unsafe { todo!() } */
       still inside the outer comment: File::open */
    s
}

/// Doc comment naming `std::fs` and `.expect(…)` and `Box<dyn Error>`.
pub fn documented<'b>(r: &'b [u8]) -> &'b [u8] {
    r
}
