// Fixture: erased error types in public signatures.

pub fn load(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> { //~ error-hygiene
    let _ = path;
    Ok(Vec::new())
}

pub(crate) fn send() -> Result<(), Box<dyn Error + Send + Sync>> { //~ error-hygiene
    Ok(())
}

pub fn typed() -> Result<(), CodecError> {
    // Typed errors are the point.
    Ok(())
}

fn private() -> Result<(), Box<dyn std::error::Error>> {
    // Private functions may erase internally (still discouraged).
    Ok(())
}

pub fn boxed_data(items: Box<dyn Iterator<Item = u32>>) -> usize {
    // Box<dyn …> of a non-Error trait is fine.
    items.count()
}
