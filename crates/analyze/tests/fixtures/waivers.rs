// Fixture: inline waivers — the line-above form, the same-line form,
// an unused waiver, and a waiver naming an unknown rule. The last two
// are themselves findings (waiver-hygiene).

pub fn startup(x: Option<u32>) -> u32 {
    // eblcio-allow(panic-freedom): startup-only invariant; the process has no clients yet
    x.unwrap()
}

pub fn same_line(y: Option<u32>) -> u32 {
    y.unwrap() // eblcio-allow(panic-freedom): same-line waiver form
}

// eblcio-allow(lock-discipline): nothing on the next line to waive //~ waiver-hygiene
pub fn clean() {}

// eblcio-allow(no-such-rule): misspelled rule ids must be caught //~ waiver-hygiene
pub fn also_clean() {}
