// Fixture: `unsafe` is flagged everywhere — even in test code.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } //~ unsafe-freedom
}

#[cfg(test)]
mod tests {
    #[test]
    fn not_exempt() {
        let _x: u32 = unsafe { std::mem::zeroed() }; //~ unsafe-freedom
    }
}
