// Fixture: aborts in non-test library code.

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap() //~ panic-freedom
}

pub fn demand(x: Option<u32>) -> u32 {
    x.expect("present") //~ panic-freedom
}

pub fn boom() {
    panic!("boom"); //~ panic-freedom
}

pub fn dispatch(n: u32) -> u32 {
    match n {
        0 => todo!(), //~ panic-freedom
        1 => unimplemented!(), //~ panic-freedom
        _ => unreachable!(), //~ panic-freedom
    }
}

pub fn legal(n: u32) {
    // assert! documents an invariant; it is not flagged.
    assert!(n < 100);
    debug_assert!(n != 13);
}

pub fn unwrap_shape(dims: &[usize]) -> usize {
    // A local function *named* like the method is fine: the rule
    // requires a `.` receiver.
    dims.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        Some(1).unwrap();
        panic!("test code may abort");
    }
}
