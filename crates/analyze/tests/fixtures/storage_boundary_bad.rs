// Fixture: filesystem touches outside the storage backends. Tilde
// markers name the expected finding per line; the fixture_suite
// harness compares them against the analyzer's output.

use std::fs; //~ storage-boundary

pub fn read_config(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path) //~ storage-boundary
}

pub fn open_raw(path: &str) -> std::io::Result<fs::File> {
    fs::File::open(path) //~ storage-boundary
}

pub fn touch(path: &str) {
    let _ = fs::File::create(path); //~ storage-boundary
}

pub fn no_findings_here(bytes: &[u8]) -> usize {
    // A comment naming std::fs::File::open is not a violation.
    let _ = "neither is the string std::fs::remove_file";
    bytes.len()
}
