//! End-to-end daemon tests: a real `TcpListener` on loopback, real
//! client connections, and the serve-path invariants the protocol
//! promises — bit-equal data, typed errors for every bad request, and
//! an `Overloaded` reply (never a hang) when admission refuses work.

use eblcio_codec::{CompressorId, ErrorBound};
use eblcio_daemon::{
    AnyReader, Daemon, DaemonClient, DaemonConfig, DaemonError, ErrorCode, RegionSpec,
};
use eblcio_data::{NdArray, Shape};
use eblcio_serve::{ArrayReader, ReaderConfig};
use eblcio_store::{ChunkedStore, Region};
use std::time::{Duration, Instant};

/// A 32×32 f32 field stored as four 16×16 chunks.
fn four_chunk_stream() -> Vec<u8> {
    let data = NdArray::<f32>::from_fn(Shape::d2(32, 32), |i| {
        (i[0] as f32 * 0.23).sin() * 40.0 + (i[1] as f32 * 0.31).cos() * 15.0
    });
    let codec = CompressorId::Sz3.instance();
    ChunkedStore::write(codec.as_ref(), &data, ErrorBound::Relative(1e-3), Shape::d2(16, 16), 2)
        .unwrap()
}

fn start_daemon(config: DaemonConfig) -> (Daemon, Vec<u8>) {
    let stream = four_chunk_stream();
    let reader = AnyReader::open(&stream, ReaderConfig::default()).unwrap();
    let daemon = Daemon::start(reader, config, "127.0.0.1:0").unwrap();
    (daemon, stream)
}

#[test]
fn served_region_reads_are_bit_equal_to_direct_reads() {
    let (daemon, stream) = start_daemon(DaemonConfig::default());
    let direct = ArrayReader::<f32>::open(&stream, ReaderConfig::default()).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    for region in [
        Region::new(&[0, 0], &[32, 32]),
        Region::new(&[5, 7], &[20, 18]),
        Region::new(&[16, 16], &[16, 16]),
        Region::new(&[31, 0], &[1, 32]),
    ] {
        let want = direct.read_region(&region).unwrap();
        let got = client.read_region(&RegionSpec::from(&region)).unwrap();
        assert_eq!(got.dtype, 0);
        assert_eq!(got.dims, vec![region.extent()[0] as u64, region.extent()[1] as u64]);
        assert_eq!(
            got.as_f32().unwrap(),
            want.as_slice(),
            "served samples must be bit-equal to an in-process read"
        );
    }

    // Whole chunks too.
    for i in 0..4u64 {
        let want = direct.read_chunk(i as usize).unwrap();
        let got = client.read_chunk(i).unwrap();
        assert_eq!(got.as_f32().unwrap(), want.as_slice());
    }
    daemon.shutdown();
}

#[test]
fn batched_regions_come_back_in_request_order() {
    let (daemon, stream) = start_daemon(DaemonConfig::default());
    let direct = ArrayReader::<f32>::open(&stream, ReaderConfig::default()).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let regions: Vec<Region> = (0..4)
        .map(|i| Region::new(&[(i / 2) * 16, (i % 2) * 16], &[16, 16]))
        .collect();
    let specs: Vec<RegionSpec> = regions.iter().map(RegionSpec::from).collect();
    let items = client.batch(&specs).unwrap();
    assert_eq!(items.len(), regions.len());
    for (item, region) in items.iter().zip(&regions) {
        let want = direct.read_region(region).unwrap();
        assert_eq!(item.as_f32().unwrap(), want.as_slice());
    }
    daemon.shutdown();
}

#[test]
fn stats_and_metrics_frames_reflect_served_work() {
    let (daemon, _) = start_daemon(DaemonConfig::default());
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let before = client.stats().unwrap();
    client
        .read_region(&RegionSpec::new(&[0, 0], &[32, 32]))
        .unwrap();
    client.prefetch(&RegionSpec::new(&[0, 0], &[16, 16])).unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.requests, before.requests + 1);
    assert!(after.cache_misses > before.cache_misses);

    let exposition = client.metrics().unwrap();
    assert!(exposition.contains("# TYPE eblcio_serve_cache_hits_total counter"));
    assert!(
        exposition.contains("# TYPE eblcio_daemon_requests_total counter"),
        "daemon counters must ride in the reader's registry:\n{exposition}"
    );
    // Every daemon counter the protocol promises is present.
    for name in [
        "eblcio_daemon_connections_total",
        "eblcio_daemon_overloaded_total",
        "eblcio_daemon_malformed_total",
    ] {
        assert!(exposition.contains(name), "missing {name}");
    }
    daemon.shutdown();
}

#[test]
fn bad_requests_get_typed_errors_and_the_connection_survives() {
    let (daemon, _) = start_daemon(DaemonConfig::default());
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let expect_bad = |r: Result<_, DaemonError>| match r {
        Err(DaemonError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    };

    // Out of bounds, rank mismatch, zero extent, absurd chunk index,
    // and the gated test opcode — each a typed reply, none fatal.
    expect_bad(client.read_region(&RegionSpec::new(&[0, 0], &[33, 32])).map(|_| ()));
    expect_bad(client.read_region(&RegionSpec::new(&[0], &[32])).map(|_| ()));
    expect_bad(client.read_region(&RegionSpec::new(&[0, 0], &[0, 4])).map(|_| ()));
    expect_bad(client.read_region(&RegionSpec::new(&[u64::MAX, 0], &[1, 1])).map(|_| ()));
    expect_bad(client.read_chunk(4).map(|_| ()));
    expect_bad(client.read_chunk(u64::MAX).map(|_| ()));
    expect_bad(client.test_delay(1));

    // The connection is still good for real work afterwards.
    let data = client.read_region(&RegionSpec::new(&[0, 0], &[16, 16])).unwrap();
    assert_eq!(data.bytes.len(), 16 * 16 * 4);
    daemon.shutdown();
}

/// The admission contract: with one worker occupied and a queue of
/// one filled, the next request is answered `Overloaded` immediately —
/// not queued, not hung.
#[test]
fn saturation_returns_typed_overloaded_immediately() {
    let (daemon, _) = start_daemon(DaemonConfig {
        workers: 1,
        queue_depth: 1,
        test_ops: true,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();

    // Occupy the worker, then fill the queue slot — staggered, so the
    // first slow request is already on the worker when the second is
    // admitted to the queue.
    let mut busy = Vec::new();
    for _ in 0..2 {
        busy.push(std::thread::spawn(move || {
            let mut c = DaemonClient::connect(addr).unwrap();
            c.test_delay(1500)
        }));
        std::thread::sleep(Duration::from_millis(250));
    }

    let mut probe = DaemonClient::connect(addr).unwrap();
    let start = Instant::now();
    let err = probe.stats().unwrap_err();
    let latency = start.elapsed();
    assert!(
        err.is_overloaded(),
        "saturated daemon must reply Overloaded, got {err:?}"
    );
    assert!(
        latency < Duration::from_millis(500),
        "overload reply must be immediate, took {latency:?}"
    );

    // The slow requests complete normally — shedding is per-request.
    for h in busy {
        h.join().unwrap().unwrap();
    }
    // And once drained, the same connection serves again.
    probe.stats().unwrap();
    daemon.shutdown();
}

#[test]
fn connection_limit_is_shed_with_a_typed_reply() {
    let (daemon, _) = start_daemon(DaemonConfig {
        max_connections: 2,
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();
    let mut a = DaemonClient::connect(addr).unwrap();
    let mut b = DaemonClient::connect(addr).unwrap();
    // Prove both are registered (their conn threads are live).
    a.stats().unwrap();
    b.stats().unwrap();

    // The third connect is accepted at the TCP level, answered with a
    // typed Overloaded frame, and closed — read it without writing.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match eblcio_daemon::protocol::read_frame(&mut raw, eblcio_daemon::MAX_REPLY_FRAME, || true)
        .unwrap()
    {
        eblcio_daemon::protocol::FrameRead::Frame(p) => {
            match eblcio_daemon::Reply::decode(&p).unwrap() {
                eblcio_daemon::Reply::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::Overloaded)
                }
                other => panic!("expected Overloaded error, got {other:?}"),
            }
        }
        other => panic!("expected a frame, got {other:?}"),
    }

    // Dropping one client frees a slot for a newcomer.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c = loop {
        let mut c = DaemonClient::connect(addr).unwrap();
        match c.stats() {
            Ok(_) => break c,
            // The freed slot appears once the server reaps the closed
            // connection; retry until then.
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50))
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    };
    c.metrics().unwrap();
    let _ = b;
    daemon.shutdown();
}

#[test]
fn many_concurrent_clients_all_read_correct_data() {
    let (daemon, stream) = start_daemon(DaemonConfig::default());
    let direct = ArrayReader::<f32>::open(&stream, ReaderConfig::default()).unwrap();
    let addr = daemon.local_addr();

    let regions: Vec<Region> = (0..4)
        .map(|i| Region::new(&[(i / 2) * 16, (i % 2) * 16], &[16, 16]))
        .collect();
    let expected: Vec<Vec<f32>> = regions
        .iter()
        .map(|r| direct.read_region(r).unwrap().as_slice().to_vec())
        .collect();

    std::thread::scope(|s| {
        for t in 0..32usize {
            let regions = &regions;
            let expected = &expected;
            s.spawn(move || {
                let mut client = DaemonClient::connect(addr).unwrap();
                for round in 0..4 {
                    let i = (t + round) % regions.len();
                    let got = client.read_region(&RegionSpec::from(&regions[i])).unwrap();
                    assert_eq!(got.as_f32().unwrap(), expected[i]);
                }
            });
        }
    });
    daemon.shutdown();
}

#[test]
fn shutdown_is_prompt_even_with_idle_connections() {
    let (daemon, _) = start_daemon(DaemonConfig::default());
    let addr = daemon.local_addr();
    // Park idle connections the daemon must unblock itself from.
    let mut idle = Vec::new();
    for _ in 0..4 {
        let mut c = DaemonClient::connect(addr).unwrap();
        c.stats().unwrap();
        idle.push(c);
    }
    let start = Instant::now();
    daemon.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown must not wait out idle connections, took {:?}",
        start.elapsed()
    );
    // Idle clients now see a closed connection, not a hang.
    let mut c = idle.pop().unwrap();
    c.set_timeout(Some(Duration::from_secs(5))).unwrap();
    assert!(c.stats().is_err());
}
