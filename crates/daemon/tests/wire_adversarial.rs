//! Adversarial wire-protocol tests: arbitrary bytes, torn frames,
//! oversized declared lengths, and truncated payloads must all land as
//! typed errors or clean closes — never a panic, never a hang, and
//! never a wedged daemon for the *next* client.

use eblcio_codec::{CompressorId, ErrorBound};
use eblcio_daemon::protocol::{read_frame, write_frame, FrameRead};
use eblcio_daemon::{
    AnyReader, Daemon, DaemonClient, DaemonConfig, DaemonError, ErrorCode, RegionSpec, Reply,
    Request, MAX_REPLY_FRAME,
};
use eblcio_data::{NdArray, Shape};
use eblcio_serve::ReaderConfig;
use eblcio_store::ChunkedStore;
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start_daemon() -> Daemon {
    let data = NdArray::<f32>::from_fn(Shape::d2(32, 32), |i| (i[0] + 2 * i[1]) as f32 * 0.5);
    let codec = CompressorId::Sz3.instance();
    let stream =
        ChunkedStore::write(codec.as_ref(), &data, ErrorBound::Absolute(1e-2), Shape::d2(16, 16), 2)
            .unwrap();
    let reader = AnyReader::open(&stream, ReaderConfig::default()).unwrap();
    let config = DaemonConfig {
        // Short stall allowance so torn-frame tests finish quickly.
        read_timeout: Duration::from_millis(300),
        ..DaemonConfig::default()
    };
    Daemon::start(reader, config, "127.0.0.1:0").unwrap()
}

/// Reads the next reply frame off a raw socket.
fn next_reply(stream: &mut TcpStream) -> Option<Reply> {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match read_frame(stream, MAX_REPLY_FRAME, || true) {
        Ok(FrameRead::Frame(p)) => Some(Reply::decode(&p).unwrap()),
        _ => None,
    }
}

/// After any adversarial exchange, a fresh client must still be served
/// correctly — the daemon survived.
fn assert_daemon_healthy(daemon: &Daemon) {
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let data = client.read_region(&RegionSpec::new(&[0, 0], &[16, 16])).unwrap();
    assert_eq!(data.bytes.len(), 16 * 16 * 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Request decode is total: arbitrary payload bytes either decode
    /// or return a typed error — no panics, and a successful decode
    /// re-encodes to the same bytes (the format is canonical).
    #[test]
    fn arbitrary_payloads_never_panic_the_request_decoder(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if let Ok(req) = Request::decode(&payload) {
            prop_assert_eq!(req.encode(), payload);
        }
    }

    /// Same totality for the reply decoder (a hostile *server* cannot
    /// panic a client either).
    #[test]
    fn arbitrary_payloads_never_panic_the_reply_decoder(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Reply::decode(&payload);
    }

    /// Round-trip for structurally valid requests with extreme
    /// coordinate values.
    #[test]
    fn extreme_regions_roundtrip(
        origin in proptest::collection::vec(any::<u64>(), 1..5),
        extent_seed in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        let rank = origin.len().min(extent_seed.len());
        let spec = RegionSpec::new(&origin[..rank], &extent_seed[..rank]);
        let req = Request::ReadRegion(spec);
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }
}

#[test]
fn garbage_opcode_earns_malformed_then_clean_close() {
    let daemon = start_daemon();
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    write_frame(&mut raw, &[0xAB, 1, 2, 3]).unwrap();
    match next_reply(&mut raw) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // The server closes after malformed framing: next read is EOF.
    assert!(next_reply(&mut raw).is_none());
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn trailing_bytes_after_a_valid_body_are_malformed() {
    let daemon = start_daemon();
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    let mut payload = Request::Stats.encode();
    payload.extend_from_slice(b"extra");
    write_frame(&mut raw, &payload).unwrap();
    match next_reply(&mut raw) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn oversized_declared_length_is_refused_before_allocation() {
    let daemon = start_daemon();
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    // Header claims ~4 GiB; the server must answer without buffering it.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    match next_reply(&mut raw) {
        Some(Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(next_reply(&mut raw).is_none());
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn torn_header_then_close_is_a_clean_drop() {
    let daemon = start_daemon();
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    raw.write_all(&[7, 0]).unwrap(); // 2 of 4 header bytes
    raw.flush().unwrap();
    drop(raw);
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn truncated_payload_then_stall_times_out_instead_of_wedging() {
    let daemon = start_daemon();
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    // Promise 100 bytes, deliver 10, then stall without closing.
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 10]).unwrap();
    raw.flush().unwrap();
    // The server's in-frame stall allowance (300 ms here) expires and
    // it drops the connection; a healthy client is unaffected either
    // way, which is the property under test.
    std::thread::sleep(Duration::from_millis(600));
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn a_swarm_of_hostile_connects_does_not_take_the_daemon_down() {
    let daemon = start_daemon();
    let addr = daemon.local_addr();
    std::thread::scope(|s| {
        for t in 0..24usize {
            s.spawn(move || {
                let Ok(mut raw) = TcpStream::connect(addr) else {
                    return;
                };
                match t % 4 {
                    // Garbage frame.
                    0 => {
                        let _ = write_frame(&mut raw, &[0xFF; 16]);
                        let _ = next_reply(&mut raw);
                    }
                    // Oversized header.
                    1 => {
                        let _ = raw.write_all(&u32::MAX.to_le_bytes());
                        let _ = next_reply(&mut raw);
                    }
                    // Torn header, instant close.
                    2 => {
                        let _ = raw.write_all(&[1]);
                    }
                    // Valid request, close without reading the reply.
                    _ => {
                        let _ = write_frame(&mut raw, &Request::Metrics.encode());
                    }
                }
            });
        }
        // Honest clients interleaved with the swarm still get served.
        for _ in 0..4 {
            s.spawn(move || {
                let mut client = DaemonClient::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(10))).unwrap();
                let data =
                    client.read_region(&RegionSpec::new(&[8, 8], &[16, 16])).unwrap();
                assert_eq!(data.bytes.len(), 16 * 16 * 4);
            });
        }
    });
    assert_daemon_healthy(&daemon);
    daemon.shutdown();
}

#[test]
fn client_surfaces_typed_remote_errors() {
    let daemon = start_daemon();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    let err = client
        .read_region(&RegionSpec::new(&[0, 0, 0], &[1, 1, 1]))
        .unwrap_err();
    match err {
        DaemonError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("rank"), "message should name the problem: {message}");
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    daemon.shutdown();
}
