//! Blocking client for the serve protocol: one socket, one in-flight
//! request, typed errors.
//!
//! The client deliberately mirrors the reader API (`read_region`,
//! `read_chunk`, `prefetch`, `stats`) so switching between in-process
//! and over-the-wire access is a one-line change for callers and for
//! the load generator.

use crate::error::{DaemonError, Result};
use crate::protocol::{
    read_frame, write_frame, ArrayData, FrameRead, RegionSpec, Reply, Request, MAX_REPLY_FRAME,
};
use eblcio_serve::ReaderStats;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connection to a running [`crate::server::Daemon`].
pub struct DaemonClient {
    stream: TcpStream,
}

impl DaemonClient {
    /// Connects to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply framing sends small writes; leaving Nagle on
        // costs a delayed-ACK round trip (~40 ms) per exchange.
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Caps how long one exchange may stall before erroring out (the
    /// default is the OS's, i.e. effectively unbounded).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Reads a region of the served array.
    pub fn read_region(&mut self, region: &RegionSpec) -> Result<ArrayData> {
        match self.call(&Request::ReadRegion(region.clone()))? {
            Reply::Data(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads one whole chunk by raster index.
    pub fn read_chunk(&mut self, index: u64) -> Result<ArrayData> {
        match self.call(&Request::ReadChunk { index })? {
            Reply::Data(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to warm its cache for `region`.
    pub fn prefetch(&mut self, region: &RegionSpec) -> Result<()> {
        match self.call(&Request::Prefetch(region.clone()))? {
            Reply::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads several regions in one request/reply exchange; results
    /// come back in request order.
    pub fn batch(&mut self, regions: &[RegionSpec]) -> Result<Vec<ArrayData>> {
        match self.call(&Request::Batch(regions.to_vec()))? {
            Reply::Batch(items) => Ok(items),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server reader's cumulative statistics.
    pub fn stats(&mut self) -> Result<ReaderStats> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the Prometheus text exposition — the `/metrics`
    /// equivalent frame.
    pub fn metrics(&mut self) -> Result<String> {
        match self.call(&Request::Metrics)? {
            Reply::Text(t) => Ok(t),
            other => Err(unexpected(&other)),
        }
    }

    /// Test-only: occupies a server worker for `millis` (requires the
    /// daemon's `test_ops` flag).
    pub fn test_delay(&mut self, millis: u32) -> Result<()> {
        match self.call(&Request::TestDelay { millis })? {
            Reply::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// One request/reply exchange. A typed `Error` reply becomes
    /// [`DaemonError::Remote`]; the connection stays usable afterwards
    /// unless the server closed it.
    fn call(&mut self, request: &Request) -> Result<Reply> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = match read_frame(&mut self.stream, MAX_REPLY_FRAME, || true)? {
            FrameRead::Frame(p) => p,
            FrameRead::Closed => return Err(DaemonError::ConnectionClosed),
            FrameRead::TooLarge(declared) => {
                return Err(DaemonError::FrameTooLarge {
                    declared,
                    max: MAX_REPLY_FRAME as u64,
                })
            }
        };
        match Reply::decode(&payload)? {
            Reply::Error { code, message } => Err(DaemonError::Remote { code, message }),
            reply => Ok(reply),
        }
    }
}

fn unexpected(reply: &Reply) -> DaemonError {
    // The server answered a different opcode than the request asked
    // for — a protocol violation, reported as a decode-class error.
    let _ = reply;
    DaemonError::Decode("reply opcode for this request")
}
