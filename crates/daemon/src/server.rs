//! The daemon proper: TCP acceptor, per-connection framing loops, and
//! a fixed worker pool behind bounded admission.
//!
//! Threading model — three layers, each with one job:
//!
//! * **acceptor** — one thread on `TcpListener::accept`, enforcing the
//!   connection cap (over-limit connects get a typed `Overloaded`
//!   reply and a close, never a silent drop),
//! * **connection threads** — one per live client, owning the socket:
//!   they read frames, decode requests, and submit jobs; decode work
//!   never happens here, so a slow request on one connection cannot
//!   stall another's framing,
//! * **workers** — a fixed pool popping the [`BoundedQueue`]: all
//!   reader work (decode, assembly, exposition rendering) runs here,
//!   so total serving concurrency is capped no matter how many
//!   connections are open.
//!
//! Admission is the load-shedding contract: a connection thread's
//! `try_push` either admits the job or fails **immediately**, and the
//! failure becomes the protocol's typed `Overloaded` reply on the
//! spot. A saturated daemon therefore answers every frame promptly —
//! with data when it can, with "try later" when it can't — and never
//! accumulates an unbounded backlog.

use crate::any::AnyReader;
use crate::error::Result;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameRead, RegionSpec, Reply, Request, MAX_REQUEST_FRAME,
};
use crate::queue::{BoundedQueue, PushError};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::Shape;
use eblcio_obs::{self as obs, Counter};
use eblcio_store::Region;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Construction-time knobs for a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Worker threads executing reader work (0 = machine parallelism).
    pub workers: usize,
    /// Jobs admitted but not yet picked up by a worker; one more
    /// request than this is the typed `Overloaded` reply.
    pub queue_depth: usize,
    /// Live connections accepted at once; the next connect is answered
    /// `Overloaded` and closed.
    pub max_connections: usize,
    /// How long a peer may stall **inside** a frame before the
    /// connection is closed as torn. Idle time *between* frames is
    /// unlimited.
    pub read_timeout: Duration,
    /// Enables the test-only `TestDelay` opcode (deterministic worker
    /// occupation for overload tests). Off for real serving.
    pub test_ops: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 64,
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            test_ops: false,
        }
    }
}

/// One admitted unit of work: the decoded request plus the channel its
/// encoded reply travels back on.
struct Job {
    request: Request,
    reply: mpsc::Sender<Vec<u8>>,
}

/// State shared by every thread the daemon owns.
struct Shared {
    reader: Arc<AnyReader>,
    test_ops: bool,
    /// `eblcio_daemon_*` counters, registered into the reader's
    /// registry so one `Metrics` frame exposes both layers.
    connections_total: Arc<Counter>,
    requests_total: Arc<Counter>,
    overloaded_total: Arc<Counter>,
    malformed_total: Arc<Counter>,
}

/// Registry of live connections, for prompt shutdown: the daemon
/// shuts each registered socket down, which unblocks its thread's
/// read immediately instead of waiting out a poll interval.
struct Conns {
    streams: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicUsize,
    next_id: AtomicU64,
}

/// A running serve daemon. Dropping it shuts it down (idempotent with
/// an explicit [`Daemon::shutdown`]).
pub struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Job>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Conns>,
}

impl Daemon {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `reader` until [`Daemon::shutdown`] or drop.
    pub fn start(reader: AnyReader, config: DaemonConfig, addr: impl ToSocketAddrs) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let reader = Arc::new(reader);
        let registry = reader.metrics().clone();
        let shared = Arc::new(Shared {
            reader,
            test_ops: config.test_ops,
            connections_total: registry.counter("eblcio_daemon_connections_total"),
            requests_total: registry.counter("eblcio_daemon_requests_total"),
            overloaded_total: registry.counter("eblcio_daemon_overloaded_total"),
            malformed_total: registry.counter("eblcio_daemon_malformed_total"),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));
        let conns = Arc::new(Conns {
            streams: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
        });

        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let queue = queue.clone();
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eblcio-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let payload = execute(&shared, job.request).encode();
                            // A connection that died mid-request just
                            // drops its receiver; nothing to do.
                            let _ = job.reply.send(payload);
                        }
                    })?,
            );
        }

        let acceptor = {
            let shutdown = shutdown.clone();
            let queue = queue.clone();
            let conns = conns.clone();
            let shared = shared.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name("eblcio-acceptor".into())
                .spawn(move || accept_loop(&listener, &shutdown, &queue, &conns, &shared, &config))?
        };

        Ok(Self {
            addr,
            shutdown,
            queue,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live client connections right now.
    pub fn active_connections(&self) -> usize {
        self.conns.active.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains admitted work, closes every connection,
    /// and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Order matters: close the queue (workers drain and exit; every
        // admitted job still gets its reply), wake the acceptor with a
        // throwaway connect, then unblock connection reads by shutting
        // their sockets.
        self.queue.close();
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for (_, s) in self.conns.streams.lock().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self.conns.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &Arc<AtomicBool>,
    queue: &Arc<BoundedQueue<Job>>,
    conns: &Arc<Conns>,
    shared: &Arc<Shared>,
    config: &DaemonConfig,
) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.connections_total.inc();
        // Reap finished connection threads so the handle list tracks
        // live connections, not connection history.
        {
            let mut handles = conns.handles.lock();
            let mut live = Vec::with_capacity(handles.len());
            for h in handles.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    live.push(h);
                }
            }
            *handles = live;
        }
        let _ = stream.set_write_timeout(Some(config.read_timeout));
        // Replies are written as one small frame each; Nagle would add
        // a delayed-ACK round trip to every exchange.
        let _ = stream.set_nodelay(true);
        if conns.active.load(Ordering::SeqCst) >= config.max_connections {
            shared.overloaded_total.inc();
            let reply = Reply::Error {
                code: ErrorCode::Overloaded,
                message: "connection limit reached".into(),
            };
            let _ = write_frame(&mut stream, &reply.encode());
            continue;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let id = conns.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            conns.streams.lock().insert(id, clone);
        }
        conns.active.fetch_add(1, Ordering::SeqCst);
        let spawned = {
            let shutdown = shutdown.clone();
            let queue = queue.clone();
            let conns = conns.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("eblcio-conn-{id}"))
                .spawn(move || {
                    connection_loop(&mut stream, &shutdown, &queue, &shared);
                    conns.streams.lock().remove(&id);
                    conns.active.fetch_sub(1, Ordering::SeqCst);
                })
        };
        match spawned {
            Ok(handle) => conns.handles.lock().push(handle),
            Err(_) => {
                // Spawn failure: roll the bookkeeping back and shed the
                // connection like any other overload.
                conns.streams.lock().remove(&id);
                conns.active.fetch_sub(1, Ordering::SeqCst);
                shared.overloaded_total.inc();
            }
        }
    }
}

/// Serves one connection until close, torn frame, or shutdown.
fn connection_loop(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    queue: &BoundedQueue<Job>,
    shared: &Shared,
) {
    loop {
        let frame = read_frame(stream, MAX_REQUEST_FRAME, || {
            !shutdown.load(Ordering::SeqCst)
        });
        let payload = match frame {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Closed) => return,
            Ok(FrameRead::TooLarge(declared)) => {
                let reply = Reply::Error {
                    code: ErrorCode::FrameTooLarge,
                    message: format!("request frame declares {declared} bytes"),
                };
                let _ = write_frame(stream, &reply.encode());
                return;
            }
            // Torn frame or dead socket: nothing sensible to reply to.
            Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared.malformed_total.inc();
                let reply = Reply::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                };
                let _ = write_frame(stream, &reply.encode());
                // A peer that frames garbage gets a clean close, not a
                // resync guess.
                return;
            }
        };
        shared.requests_total.inc();
        let (tx, rx) = mpsc::channel();
        let reply_payload = match queue.try_push(Job { request, reply: tx }) {
            Err(PushError::Full(_)) => {
                shared.overloaded_total.inc();
                Reply::Error {
                    code: ErrorCode::Overloaded,
                    message: "request queue full, try later".into(),
                }
                .encode()
            }
            Err(PushError::Closed(_)) => {
                Reply::Error {
                    code: ErrorCode::Overloaded,
                    message: "daemon shutting down".into(),
                }
                .encode()
            }
            Ok(()) => match rx.recv() {
                Ok(p) => p,
                // Workers are gone (shutdown mid-request).
                Err(_) => Reply::Error {
                    code: ErrorCode::Server,
                    message: "worker pool unavailable".into(),
                }
                .encode(),
            },
        };
        if write_frame(stream, &reply_payload).is_err() {
            return;
        }
    }
}

/// Validates a wire region against the served shape. Everything that
/// would make [`Region::new`] or the reader panic is caught here and
/// named, so a hostile request can only ever earn a `BadRequest`.
fn region_for(spec: &RegionSpec, shape: Shape) -> std::result::Result<Region, &'static str> {
    if spec.origin.len() != spec.extent.len() {
        return Err("origin/extent rank mismatch");
    }
    let rank = spec.origin.len();
    if rank != shape.rank() {
        return Err("region rank does not match array rank");
    }
    let mut origin = [0usize; MAX_RANK];
    let mut extent = [0usize; MAX_RANK];
    for d in 0..rank {
        let o = usize::try_from(spec.origin[d]).map_err(|_| "region origin overflows")?;
        let e = usize::try_from(spec.extent[d]).map_err(|_| "region extent overflows")?;
        if e == 0 {
            return Err("region extent is zero");
        }
        let end = o.checked_add(e).ok_or("region end overflows")?;
        if end > shape.dims()[d] {
            return Err("region exceeds array bounds");
        }
        origin[d] = o;
        extent[d] = e;
    }
    Ok(Region::new(&origin[..rank], &extent[..rank]))
}

/// Runs one request against the reader — on a worker thread, never on
/// a connection thread. Every failure is a typed error reply.
fn execute(shared: &Shared, request: Request) -> Reply {
    let reader = &shared.reader;
    match request {
        Request::ReadRegion(spec) => match region_for(&spec, reader.shape()) {
            Ok(region) => match reader.read_region_data(&region) {
                Ok(data) => Reply::Data(data),
                Err(e) => server_error(e),
            },
            Err(why) => bad_request(why),
        },
        Request::ReadChunk { index } => {
            let i = usize::try_from(index).ok().filter(|&i| i < reader.n_chunks());
            match i {
                Some(i) => match reader.read_chunk_data(i) {
                    Ok(data) => Reply::Data(data),
                    Err(e) => server_error(e),
                },
                None => bad_request("chunk index out of range"),
            }
        }
        Request::Prefetch(spec) => match region_for(&spec, reader.shape()) {
            Ok(region) => {
                reader.prefetch_region(&region);
                Reply::Ack
            }
            Err(why) => bad_request(why),
        },
        Request::Batch(specs) => {
            let mut items = Vec::with_capacity(specs.len());
            for spec in &specs {
                match region_for(spec, reader.shape()) {
                    Ok(region) => match reader.read_region_data(&region) {
                        Ok(data) => items.push(data),
                        Err(e) => return server_error(e),
                    },
                    Err(why) => return bad_request(why),
                }
            }
            Reply::Batch(items)
        }
        Request::Stats => Reply::Stats(reader.stats()),
        Request::Metrics => Reply::Text(obs::prometheus(reader.metrics())),
        Request::TestDelay { millis } => {
            if shared.test_ops {
                std::thread::sleep(Duration::from_millis(u64::from(millis)));
                Reply::Ack
            } else {
                bad_request("test opcodes are disabled")
            }
        }
    }
}

fn bad_request(why: &str) -> Reply {
    Reply::Error {
        code: ErrorCode::BadRequest,
        message: why.into(),
    }
}

fn server_error(e: eblcio_codec::CodecError) -> Reply {
    Reply::Error {
        code: ErrorCode::Server,
        message: e.to_string(),
    }
}
