//! `eblcio serve` — a network daemon exposing one error-bounded
//! compressed array over a length-prefixed binary protocol.
//!
//! The serve layer ([`eblcio_serve`]) answers region reads in-process;
//! this crate puts a socket in front of it so many clients — other
//! hosts, other languages, the load generator — can share one warm
//! decoded-chunk cache. The design goals, in order:
//!
//! 1. **Never hang, never panic.** Every malformed frame is a typed
//!    error reply or a clean close; every admission decision is
//!    immediate ([`BoundedQueue::try_push`]), so a saturated daemon
//!    answers `Overloaded` instead of wedging clients.
//! 2. **Bounded everything.** Frame lengths, batch counts, wire ranks,
//!    queue depth, and the connection table all have caps that are
//!    checked before allocation.
//! 3. **One metrics surface.** The daemon registers its own counters
//!    in the reader's [`eblcio_obs`] registry, so the protocol's
//!    `Metrics` frame returns a single Prometheus exposition covering
//!    both layers — the `/metrics` equivalent without HTTP.
//!
//! ```no_run
//! use eblcio_daemon::{AnyReader, Daemon, DaemonClient, DaemonConfig, RegionSpec};
//! use eblcio_serve::ReaderConfig;
//!
//! # fn main() -> eblcio_daemon::Result<()> {
//! # let stream: Vec<u8> = Vec::new();
//! let reader = AnyReader::open(&stream, ReaderConfig::default())?;
//! let daemon = Daemon::start(reader, DaemonConfig::default(), "127.0.0.1:0")?;
//!
//! let mut client = DaemonClient::connect(daemon.local_addr())?;
//! let data = client.read_region(&RegionSpec::new(&[0, 0], &[16, 16]))?;
//! let samples = data.as_f32();
//! let exposition = client.metrics()?;
//! # let _ = (samples, exposition);
//! daemon.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod any;
pub mod client;
pub mod error;
pub mod protocol;
pub mod queue;
pub mod server;

pub use any::AnyReader;
pub use client::DaemonClient;
pub use error::{DaemonError, Result};
pub use protocol::{
    ArrayData, ErrorCode, RegionSpec, Reply, Request, MAX_BATCH, MAX_REPLY_FRAME,
    MAX_REQUEST_FRAME,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{Daemon, DaemonConfig};
