//! Bounded MPMC work queue — the daemon's admission control.
//!
//! Producers (connection threads) never block: [`BoundedQueue::try_push`]
//! either admits the job or refuses it on the spot, and the refusal is
//! what becomes the protocol's typed `Overloaded` reply. Consumers
//! (workers) block on [`BoundedQueue::pop`] until work arrives or the
//! queue closes. That asymmetry is the no-hang guarantee: a saturated
//! daemon answers "try later" immediately instead of wedging client
//! connections behind an unbounded backlog.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a push was refused (the job comes back to the caller).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the caller should shed load.
    Full(T),
    /// The queue is closed — the daemon is shutting down.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking admission, blocking pop.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` (≥ 1) queued items.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Admits `item` if there is room, refusing immediately otherwise —
    /// never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue closes. `None`
    /// means closed **and drained** — workers finish queued jobs before
    /// exiting.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            self.ready.wait(&mut g);
        }
    }

    /// Closes the queue: future pushes fail, blocked pops wake, queued
    /// items still drain.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_is_bounded_and_immediate() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_poppers_and_drains_backlog() {
        let q = Arc::new(BoundedQueue::new(4));
        assert!(q.try_push(10).is_ok());
        q.close();
        // Queued work still drains after close...
        assert_eq!(q.pop(), Some(10));
        // ...then pops report closed, and pushes are refused.
        assert_eq!(q.pop(), None);
        match q.try_push(11) {
            Err(PushError::Closed(v)) => assert_eq!(v, 11),
            other => panic!("expected Closed, got {other:?}"),
        }

        // A popper blocked on an empty queue wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q2 = q2.clone();
            std::thread::spawn(move || q2.pop())
        };
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn capacity_zero_still_admits_one() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        const PRODUCERS: usize = 8;
        const PER: usize = 200;
        let q = Arc::new(BoundedQueue::new(16));
        let accepted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            let consumed: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut n = 0usize;
                        while q.pop().is_some() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            std::thread::scope(|p| {
                for _ in 0..PRODUCERS {
                    let q = q.clone();
                    let accepted = accepted.clone();
                    p.spawn(move || {
                        for i in 0..PER {
                            if q.try_push(i).is_ok() {
                                accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            q.close();
            let total: usize = consumed.into_iter().map(|h| h.join().unwrap_or(0)).sum();
            assert_eq!(total, accepted.load(std::sync::atomic::Ordering::Relaxed));
        });
    }
}
