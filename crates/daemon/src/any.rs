//! [`AnyReader`]: dtype-erased wrapper over [`ArrayReader`] so the
//! daemon can serve whatever dtype the store on disk declares.
//!
//! `ArrayReader<T>` is monomorphic by design — the decode hot path
//! wants concrete element types. The daemon, though, learns the dtype
//! at open time from the container, and its protocol speaks raw bytes
//! plus a dtype tag. This enum is the seam: open sniffs the tag, picks
//! the concrete reader once, and every serve-path call dispatches with
//! one match — no trait objects, no per-request branching beyond it.

use crate::protocol::ArrayData;
use eblcio_codec::{CodecError, Result};
use eblcio_data::{NdArray, Shape};
use eblcio_obs::MetricsRegistry;
use eblcio_serve::{ArrayReader, ReaderConfig, ReaderStats};
use eblcio_store::mutable::MUTABLE_MAGIC;
use eblcio_store::{ChunkedStore, MutableStore, Region, Storage};
use std::sync::Arc;

/// A dtype-erased [`ArrayReader`] serving either element type.
pub enum AnyReader {
    /// A reader over an f32 store (dtype tag 0).
    F32(ArrayReader<f32>),
    /// A reader over an f64 store (dtype tag 1).
    F64(ArrayReader<f64>),
}

impl AnyReader {
    /// Opens a store stream, picking the reader dtype from the
    /// container's tag.
    pub fn open(stream: &[u8], config: ReaderConfig) -> Result<Self> {
        Self::over(ChunkedStore::open(stream)?, config)
    }

    /// Opens shared container bytes: an `EBMS` mutable store serves its
    /// current generation, anything else must be an immutable `EBCS`
    /// stream.
    pub fn open_arc(bytes: Arc<[u8]>, config: ReaderConfig) -> Result<Self> {
        let store = if bytes.starts_with(MUTABLE_MAGIC) {
            MutableStore::open_arc(bytes)?.current()?
        } else {
            ChunkedStore::open_arc(bytes)?
        };
        Self::over(store, config)
    }

    /// Opens the object under `key` on a [`Storage`] backend (mirrors
    /// [`ArrayReader::open_from`]).
    pub fn open_from(storage: &dyn Storage, key: &str, config: ReaderConfig) -> Result<Self> {
        Self::open_arc(storage.get(key)?, config)
    }

    /// Wraps an already opened store.
    pub fn over(store: ChunkedStore, config: ReaderConfig) -> Result<Self> {
        match store.dtype() {
            0 => Ok(AnyReader::F32(ArrayReader::over(store, config)?)),
            1 => Ok(AnyReader::F64(ArrayReader::over(store, config)?)),
            _ => Err(CodecError::Corrupt { context: "dtype tag" }),
        }
    }

    /// The container dtype tag this reader serves (0 = f32, 1 = f64).
    pub fn dtype(&self) -> u8 {
        match self {
            AnyReader::F32(_) => 0,
            AnyReader::F64(_) => 1,
        }
    }

    /// Shape of the served array.
    pub fn shape(&self) -> Shape {
        match self {
            AnyReader::F32(r) => r.store().shape(),
            AnyReader::F64(r) => r.store().shape(),
        }
    }

    /// Number of chunks in the served store.
    pub fn n_chunks(&self) -> usize {
        match self {
            AnyReader::F32(r) => r.store().n_chunks(),
            AnyReader::F64(r) => r.store().n_chunks(),
        }
    }

    /// Cumulative reader counters.
    pub fn stats(&self) -> ReaderStats {
        match self {
            AnyReader::F32(r) => r.stats(),
            AnyReader::F64(r) => r.stats(),
        }
    }

    /// The reader's metrics registry (for exposition and for the
    /// daemon to hang its own counters on).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        match self {
            AnyReader::F32(r) => r.metrics(),
            AnyReader::F64(r) => r.metrics(),
        }
    }

    /// Serves a region as wire-ready [`ArrayData`]. The caller must
    /// have validated `region` against [`AnyReader::shape`].
    pub fn read_region_data(&self, region: &Region) -> Result<ArrayData> {
        match self {
            AnyReader::F32(r) => Ok(wire_f32(&r.read_region(region)?)),
            AnyReader::F64(r) => Ok(wire_f64(&r.read_region(region)?)),
        }
    }

    /// Serves one whole chunk as wire-ready [`ArrayData`]. The caller
    /// must have validated `i` against [`AnyReader::n_chunks`].
    pub fn read_chunk_data(&self, i: usize) -> Result<ArrayData> {
        match self {
            AnyReader::F32(r) => Ok(wire_f32(r.read_chunk(i)?.as_ref())),
            AnyReader::F64(r) => Ok(wire_f64(r.read_chunk(i)?.as_ref())),
        }
    }

    /// Warms the cache for `region` (validated by the caller); decode
    /// errors are deferred to the read that needs the chunk.
    pub fn prefetch_region(&self, region: &Region) {
        match self {
            AnyReader::F32(r) => r.prefetch_region(region),
            AnyReader::F64(r) => r.prefetch_region(region),
        }
    }
}

fn wire_f32(arr: &NdArray<f32>) -> ArrayData {
    let mut bytes = Vec::with_capacity(arr.len() * 4);
    for v in arr.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    ArrayData {
        dtype: 0,
        dims: arr.shape().dims().iter().map(|&d| d as u64).collect(),
        bytes,
    }
}

fn wire_f64(arr: &NdArray<f64>) -> ArrayData {
    let mut bytes = Vec::with_capacity(arr.len() * 8);
    for v in arr.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    ArrayData {
        dtype: 1,
        dims: arr.shape().dims().iter().map(|&d| d as u64).collect(),
        bytes,
    }
}
