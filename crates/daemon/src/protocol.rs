//! The wire protocol: length-prefixed frames carrying a one-byte
//! opcode plus a fixed little-endian body.
//!
//! ```text
//! frame    := len u32 LE | payload (len bytes)
//! payload  := opcode u8 | body
//!
//! requests                         replies
//! 0x01 ReadRegion  region          0x81 Data   dtype u8, rank u8,
//! 0x02 ReadChunk   index u64                   dims u64×rank,
//! 0x03 Prefetch    region                      nbytes u64, raw LE bytes
//! 0x04 Batch       count u32,      0x82 Ack
//!                  region×count    0x83 Stats  14 × u64 (see encode_stats)
//! 0x05 Stats                       0x84 Text   UTF-8 bytes (exposition)
//! 0x06 Metrics                     0x85 Batch  count u32, Data-body×count
//! 0x7F TestDelay   millis u32      0xE0 Error  code u8, UTF-8 message
//!
//! region   := rank u8 | origin u64×rank | extent u64×rank
//! ```
//!
//! Hand-rolled like the rest of the workspace's framing (PR 1's stubs
//! set the precedent): no serde on the wire, every field a fixed-width
//! little-endian integer, every decode bounded before it allocates.
//! Malformed bytes come back as a typed [`DaemonError::Decode`] with
//! the field that broke — the server turns that into an
//! [`ErrorCode::Malformed`] reply, never a panic.

use crate::error::{DaemonError, Result};
use eblcio_serve::ReaderStats;
use std::io::{Read, Write};

/// Cap on request frames. Requests are tiny (regions and batch lists);
/// anything bigger is an attack or a bug, refused before allocation.
pub const MAX_REQUEST_FRAME: usize = 1 << 20;

/// Cap on reply frames — bounds the decoded region a single exchange
/// can carry (256 MiB).
pub const MAX_REPLY_FRAME: usize = 1 << 28;

/// Cap on regions per batch request.
pub const MAX_BATCH: usize = 4096;

/// Cap on region rank the wire accepts (the array layer's own
/// `MAX_RANK` is 4; a little slack keeps the protocol ahead of it).
pub const MAX_WIRE_RANK: usize = 8;

const OP_READ_REGION: u8 = 0x01;
const OP_READ_CHUNK: u8 = 0x02;
const OP_PREFETCH: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_TEST_DELAY: u8 = 0x7F;

const OP_DATA: u8 = 0x81;
const OP_ACK: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_TEXT: u8 = 0x84;
const OP_BATCH_REPLY: u8 = 0x85;
const OP_ERROR: u8 = 0xE0;

/// Machine-readable class of a typed error reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission refused: the request queue (or connection table) is
    /// full. Retry later; the server never queues unboundedly.
    Overloaded,
    /// The request bytes did not decode as a frame.
    Malformed,
    /// The request decoded but asked for something the store cannot
    /// answer (out-of-bounds region, unknown chunk, disabled opcode).
    BadRequest,
    /// The server failed internally while serving a valid request.
    Server,
    /// The frame header declared a length beyond the cap.
    FrameTooLarge,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Server => 4,
            ErrorCode::FrameTooLarge => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Overloaded),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::BadRequest),
            4 => Some(ErrorCode::Server),
            5 => Some(ErrorCode::FrameTooLarge),
            _ => None,
        }
    }
}

/// An axis-aligned region as it travels on the wire: unvalidated
/// `u64` coordinates. The server checks it against the served array's
/// shape before touching the reader (a bad one is a typed
/// `BadRequest`, not a panic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// Per-dimension starting indices.
    pub origin: Vec<u64>,
    /// Per-dimension lengths.
    pub extent: Vec<u64>,
}

impl RegionSpec {
    /// Builds a spec from per-dimension origins and extents (lengths
    /// are reconciled by the server, not here).
    pub fn new(origin: &[u64], extent: &[u64]) -> Self {
        Self {
            origin: origin.to_vec(),
            extent: extent.to_vec(),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.origin.len().min(u8::MAX as usize) as u8);
        for &o in &self.origin {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &e in &self.extent {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }

    fn decode(cur: &mut Cur<'_>) -> Result<Self> {
        let rank = cur.u8("region rank")? as usize;
        if rank == 0 || rank > MAX_WIRE_RANK {
            return Err(DaemonError::Decode("region rank"));
        }
        let mut origin = Vec::with_capacity(rank);
        let mut extent = Vec::with_capacity(rank);
        for _ in 0..rank {
            origin.push(cur.u64("region origin")?);
        }
        for _ in 0..rank {
            extent.push(cur.u64("region extent")?);
        }
        Ok(Self { origin, extent })
    }
}

impl From<&eblcio_store::Region> for RegionSpec {
    fn from(r: &eblcio_store::Region) -> Self {
        Self {
            origin: r.origin().iter().map(|&v| v as u64).collect(),
            extent: r.extent().iter().map(|&v| v as u64).collect(),
        }
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Assemble and return the region's samples.
    ReadRegion(RegionSpec),
    /// Return one whole decoded chunk by raster index.
    ReadChunk {
        /// Raster-order chunk index.
        index: u64,
    },
    /// Warm the cache for the region; replies [`Reply::Ack`] without
    /// waiting for decode errors (the read that needs a chunk sees
    /// them).
    Prefetch(RegionSpec),
    /// Several region reads admitted (and answered) as one unit.
    Batch(Vec<RegionSpec>),
    /// The reader's cumulative [`ReaderStats`].
    Stats,
    /// The Prometheus text exposition of the reader's registry — the
    /// `/metrics` equivalent.
    Metrics,
    /// Test-only (enabled by `DaemonConfig::test_ops`): occupy a worker
    /// for `millis` before replying `Ack`. Lets tests fill the queue
    /// deterministically.
    TestDelay {
        /// How long the worker sleeps.
        millis: u32,
    },
}

impl Request {
    /// Serializes to a frame payload (opcode + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Request::ReadRegion(r) => {
                out.push(OP_READ_REGION);
                r.encode_into(&mut out);
            }
            Request::ReadChunk { index } => {
                out.push(OP_READ_CHUNK);
                out.extend_from_slice(&index.to_le_bytes());
            }
            Request::Prefetch(r) => {
                out.push(OP_PREFETCH);
                r.encode_into(&mut out);
            }
            Request::Batch(regions) => {
                out.push(OP_BATCH);
                out.extend_from_slice(&(regions.len().min(u32::MAX as usize) as u32).to_le_bytes());
                for r in regions {
                    r.encode_into(&mut out);
                }
            }
            Request::Stats => out.push(OP_STATS),
            Request::Metrics => out.push(OP_METRICS),
            Request::TestDelay { millis } => {
                out.push(OP_TEST_DELAY);
                out.extend_from_slice(&millis.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload. Every failure names the broken field;
    /// trailing bytes after a complete body are themselves an error
    /// (strictness the adversarial tests lean on).
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut cur = Cur::new(payload);
        let op = cur.u8("opcode")?;
        let req = match op {
            OP_READ_REGION => Request::ReadRegion(RegionSpec::decode(&mut cur)?),
            OP_READ_CHUNK => Request::ReadChunk { index: cur.u64("chunk index")? },
            OP_PREFETCH => Request::Prefetch(RegionSpec::decode(&mut cur)?),
            OP_BATCH => {
                let count = cur.u32("batch count")? as usize;
                if count == 0 || count > MAX_BATCH {
                    return Err(DaemonError::Decode("batch count"));
                }
                let mut regions = Vec::with_capacity(count);
                for _ in 0..count {
                    regions.push(RegionSpec::decode(&mut cur)?);
                }
                Request::Batch(regions)
            }
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            OP_TEST_DELAY => Request::TestDelay { millis: cur.u32("delay millis")? },
            _ => return Err(DaemonError::Decode("request opcode")),
        };
        cur.finish("request trailing bytes")?;
        Ok(req)
    }
}

/// One returned array: the region's (or chunk's) samples as raw
/// little-endian bytes plus enough geometry to interpret them.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayData {
    /// Container dtype tag: 0 = f32, 1 = f64.
    pub dtype: u8,
    /// Per-dimension lengths of the returned array.
    pub dims: Vec<u64>,
    /// `product(dims) × sizeof(dtype)` raw sample bytes, little-endian.
    pub bytes: Vec<u8>,
}

impl ArrayData {
    /// Bytes per sample for the dtype tag, if the tag is known.
    pub fn sample_size(&self) -> Option<usize> {
        match self.dtype {
            0 => Some(4),
            1 => Some(8),
            _ => None,
        }
    }

    /// Decodes the payload as `f32` samples (dtype tag 0).
    pub fn as_f32(&self) -> Option<Vec<f32>> {
        (self.dtype == 0).then(|| {
            self.bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
    }

    /// Decodes the payload as `f64` samples (dtype tag 1).
    pub fn as_f64(&self) -> Option<Vec<f64>> {
        (self.dtype == 1).then(|| {
            self.bytes
                .chunks_exact(8)
                .map(|c| {
                    f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                })
                .collect()
        })
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.dtype);
        out.push(self.dims.len().min(u8::MAX as usize) as u8);
        for &d in &self.dims {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&(self.bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.bytes);
    }

    fn decode(cur: &mut Cur<'_>) -> Result<Self> {
        let dtype = cur.u8("data dtype")?;
        let rank = cur.u8("data rank")? as usize;
        if rank == 0 || rank > MAX_WIRE_RANK {
            return Err(DaemonError::Decode("data rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cur.u64("data dims")?);
        }
        let nbytes = cur.u64("data length")? as usize;
        if nbytes > cur.remaining() {
            return Err(DaemonError::Decode("data length"));
        }
        // The byte count must agree with the declared geometry, so a
        // forged header can't make a client misinterpret the samples.
        let samples = dims
            .iter()
            .try_fold(1u64, |a, &d| a.checked_mul(d))
            .ok_or(DaemonError::Decode("data dims"))?;
        let expect = match dtype {
            0 => samples.checked_mul(4),
            1 => samples.checked_mul(8),
            _ => return Err(DaemonError::Decode("data dtype")),
        };
        if expect != Some(nbytes as u64) {
            return Err(DaemonError::Decode("data length"));
        }
        let bytes = cur.bytes(nbytes, "data bytes")?.to_vec();
        Ok(Self { dtype, dims, bytes })
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Samples for a `ReadRegion`/`ReadChunk`.
    Data(ArrayData),
    /// Success with no payload (`Prefetch`, `TestDelay`).
    Ack,
    /// Cumulative reader statistics.
    Stats(ReaderStats),
    /// UTF-8 text (the Prometheus exposition).
    Text(String),
    /// One `Data` body per batched region, in request order.
    Batch(Vec<ArrayData>),
    /// A typed failure; the connection stays usable unless the error
    /// concerns framing itself.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Serializes to a frame payload (opcode + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Reply::Data(d) => {
                out.push(OP_DATA);
                d.encode_into(&mut out);
            }
            Reply::Ack => out.push(OP_ACK),
            Reply::Stats(s) => {
                out.push(OP_STATS_REPLY);
                encode_stats(s, &mut out);
            }
            Reply::Text(t) => {
                out.push(OP_TEXT);
                out.extend_from_slice(t.as_bytes());
            }
            Reply::Batch(items) => {
                out.push(OP_BATCH_REPLY);
                out.extend_from_slice(&(items.len().min(u32::MAX as usize) as u32).to_le_bytes());
                for d in items {
                    d.encode_into(&mut out);
                }
            }
            Reply::Error { code, message } => {
                out.push(OP_ERROR);
                out.push(code.to_u8());
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut cur = Cur::new(payload);
        let op = cur.u8("opcode")?;
        let reply = match op {
            OP_DATA => Reply::Data(ArrayData::decode(&mut cur)?),
            OP_ACK => Reply::Ack,
            OP_STATS_REPLY => Reply::Stats(decode_stats(&mut cur)?),
            OP_TEXT => {
                let text = String::from_utf8(cur.take_rest().to_vec())
                    .map_err(|_| DaemonError::Decode("text utf-8"))?;
                Reply::Text(text)
            }
            OP_BATCH_REPLY => {
                let count = cur.u32("batch count")? as usize;
                if count > MAX_BATCH {
                    return Err(DaemonError::Decode("batch count"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(ArrayData::decode(&mut cur)?);
                }
                Reply::Batch(items)
            }
            OP_ERROR => {
                let code = ErrorCode::from_u8(cur.u8("error code")?)
                    .ok_or(DaemonError::Decode("error code"))?;
                let message = String::from_utf8_lossy(cur.take_rest()).into_owned();
                Reply::Error { code, message }
            }
            _ => return Err(DaemonError::Decode("reply opcode")),
        };
        cur.finish("reply trailing bytes")?;
        Ok(reply)
    }
}

/// Serializes [`ReaderStats`] as 14 × `u64` LE, in declaration order;
/// the two `f64` second counters travel as IEEE-754 bit patterns.
pub fn encode_stats(s: &ReaderStats, out: &mut Vec<u8>) {
    for v in [
        s.requests,
        s.chunks_requested,
        s.cache_hits,
        s.cache_misses,
        s.decodes,
        s.partial_decodes,
        s.decoded_bytes,
        s.decode_seconds.to_bits(),
        s.prefetched,
        s.evictions,
        s.refreshes,
        s.invalidations,
        s.flight_waits,
        s.wall_seconds.to_bits(),
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_stats(cur: &mut Cur<'_>) -> Result<ReaderStats> {
    let mut f = [0u64; 14];
    for v in f.iter_mut() {
        *v = cur.u64("stats field")?;
    }
    Ok(ReaderStats {
        requests: f[0],
        chunks_requested: f[1],
        cache_hits: f[2],
        cache_misses: f[3],
        decodes: f[4],
        partial_decodes: f[5],
        decoded_bytes: f[6],
        decode_seconds: f64::from_bits(f[7]),
        prefetched: f[8],
        evictions: f[9],
        refreshes: f[10],
        invalidations: f[11],
        flight_waits: f[12],
        wall_seconds: f64::from_bits(f[13]),
    })
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The header declared more than `max` bytes; nothing was
    /// allocated or consumed past the header.
    TooLarge(u64),
}

/// Writes one frame: `u32` LE length then the payload, flushed.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, tolerating read timeouts **between** frames and
/// treating them as fatal **inside** one.
///
/// The asymmetry is the hang/torn-frame contract: an idle connection
/// may sit at a frame boundary forever (each timeout consults
/// `keep_waiting`, so shutdown still gets through), but once a header
/// byte has arrived the peer owes a whole frame — a stall mid-frame is
/// a torn frame and surfaces as the timeout error, closing the
/// connection rather than wedging a reader thread.
pub fn read_frame(
    r: &mut impl Read,
    max: usize,
    keep_waiting: impl Fn() -> bool,
) -> std::io::Result<FrameRead> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Closed)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                if keep_waiting() {
                    continue;
                }
                return Ok(FrameRead::Closed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max {
        return Ok(FrameRead::TooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DaemonError::Decode(context));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.bytes(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(&self, context: &'static str) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DaemonError::Decode(context))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::ReadRegion(RegionSpec::new(&[1, 2], &[3, 4])),
            Request::ReadChunk { index: 42 },
            Request::Prefetch(RegionSpec::new(&[0], &[128])),
            Request::Batch(vec![
                RegionSpec::new(&[0, 0], &[16, 16]),
                RegionSpec::new(&[16, 0], &[16, 16]),
            ]),
            Request::Stats,
            Request::Metrics,
            Request::TestDelay { millis: 250 },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let stats = ReaderStats {
            requests: 7,
            cache_hits: 5,
            wall_seconds: 0.25,
            ..Default::default()
        };
        let data = ArrayData {
            dtype: 0,
            dims: vec![2, 3],
            bytes: vec![0; 24],
        };
        let replies = [
            Reply::Data(data.clone()),
            Reply::Ack,
            Reply::Stats(stats),
            Reply::Text("# TYPE x counter\nx 1\n".into()),
            Reply::Batch(vec![data.clone(), data]),
            Reply::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
        ];
        for reply in replies {
            assert_eq!(Reply::decode(&reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn trailing_bytes_and_bad_opcodes_are_typed_errors() {
        let mut payload = Request::Stats.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(DaemonError::Decode("request trailing bytes"))
        ));
        assert!(matches!(
            Request::decode(&[0xAB]),
            Err(DaemonError::Decode("request opcode"))
        ));
        assert!(matches!(
            Request::decode(&[]),
            Err(DaemonError::Decode("opcode"))
        ));
    }

    #[test]
    fn forged_data_geometry_is_rejected() {
        // Claimed 2×3 f32s but only 8 payload bytes.
        let good = Reply::Data(ArrayData {
            dtype: 0,
            dims: vec![2, 3],
            bytes: vec![0; 24],
        })
        .encode();
        let mut forged = good.clone();
        // Truncate the sample bytes but keep the declared length.
        forged.truncate(good.len() - 16);
        assert!(Reply::decode(&forged).is_err());
    }

    #[test]
    fn frame_io_roundtrips_and_caps_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = std::io::Cursor::new(&buf);
        match read_frame(&mut r, 64, || true).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("{other:?}"),
        }
        let mut r = std::io::Cursor::new(&buf);
        match read_frame(&mut r, 4, || true).unwrap() {
            FrameRead::TooLarge(n) => assert_eq!(n, 5),
            other => panic!("{other:?}"),
        }
        let mut empty = std::io::Cursor::new(&[][..]);
        assert!(matches!(
            read_frame(&mut empty, 64, || true).unwrap(),
            FrameRead::Closed
        ));
        // A torn header (1 of 4 length bytes) is an error, not a hang.
        let mut torn = std::io::Cursor::new(&buf[..1]);
        assert!(read_frame(&mut torn, 64, || true).is_err());
        // A torn payload (header promises more than arrives) likewise.
        let mut torn = std::io::Cursor::new(&buf[..6]);
        assert!(read_frame(&mut torn, 64, || true).is_err());
    }
}
