//! The daemon's typed error: everything a client call or a server
//! start-up can fail with, without a `Box<dyn Error>` in sight.

use crate::protocol::ErrorCode;
use eblcio_codec::CodecError;
use std::fmt;

/// Result alias for daemon operations.
pub type Result<T> = std::result::Result<T, DaemonError>;

/// Everything that can go wrong talking to (or running) the daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// Opening or decoding the served store failed.
    Codec(CodecError),
    /// Bytes arrived that do not decode as a protocol frame; the
    /// context names the field that broke.
    Decode(&'static str),
    /// A frame header declared a length beyond the negotiated cap —
    /// refused before any allocation.
    FrameTooLarge {
        /// Length the header claimed.
        declared: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The peer replied with a typed protocol error.
    Remote {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection closed before a full reply arrived.
    ConnectionClosed,
}

impl DaemonError {
    /// Whether this is the server's typed admission rejection — the
    /// reply load generators and retry loops key on.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            DaemonError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "i/o: {e}"),
            DaemonError::Codec(e) => write!(f, "store: {e}"),
            DaemonError::Decode(context) => write!(f, "malformed frame: {context}"),
            DaemonError::FrameTooLarge { declared, max } => {
                write!(f, "frame declares {declared} bytes, cap is {max}")
            }
            DaemonError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            DaemonError::ConnectionClosed => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<CodecError> for DaemonError {
    fn from(e: CodecError) -> Self {
        DaemonError::Codec(e)
    }
}
