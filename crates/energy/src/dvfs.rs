//! DVFS (dynamic voltage/frequency scaling) energy modeling.
//!
//! The paper's §II-C cites Wilkins & Calhoun (IPDPSW'22), which models
//! lossy-compression power under DVFS. This module implements that
//! extension: a cubic dynamic-power frequency model
//! `P(f) = P_static + c·f³` with runtime `t(f) = W/f` for compute-bound
//! kernels, the induced energy curve `E(f) = P(f)·t(f)`, and the
//! energy-optimal operating point — letting campaigns ask "would running
//! the compressor at a lower clock save energy?"

use crate::profile::CpuProfile;
use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A DVFS operating range for one CPU.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DvfsModel {
    /// Static (leakage + uncore) power, independent of frequency.
    pub static_power: Watts,
    /// Dynamic power at the nominal frequency.
    pub dynamic_power_nominal: Watts,
    /// Nominal frequency in GHz.
    pub f_nominal_ghz: f64,
    /// Lowest admissible frequency in GHz.
    pub f_min_ghz: f64,
    /// Highest (turbo) frequency in GHz.
    pub f_max_ghz: f64,
}

impl DvfsModel {
    /// Derives a DVFS model from a platform profile, attributing the
    /// idle power to the static term and the single-core dynamic slice
    /// to the cubic term.
    pub fn from_profile(profile: &CpuProfile, active_cores: u32) -> Self {
        let at_load = profile.package_power(active_cores, 1.0);
        let idle = profile.idle_power();
        Self {
            static_power: idle,
            dynamic_power_nominal: at_load - idle,
            f_nominal_ghz: 2.4,
            f_min_ghz: 1.0,
            f_max_ghz: 3.4,
        }
    }

    /// Package power at frequency `f` (GHz): `P_s + P_d·(f/f_nom)³`.
    pub fn power_at(&self, f_ghz: f64) -> Watts {
        let r = f_ghz / self.f_nominal_ghz;
        self.static_power + self.dynamic_power_nominal * (r * r * r)
    }

    /// Runtime at frequency `f` for a compute-bound region that takes
    /// `t_nominal` at the nominal frequency.
    pub fn runtime_at(&self, t_nominal: Seconds, f_ghz: f64) -> Seconds {
        Seconds(t_nominal.value() * self.f_nominal_ghz / f_ghz)
    }

    /// Energy of the region at frequency `f`.
    pub fn energy_at(&self, t_nominal: Seconds, f_ghz: f64) -> Joules {
        self.power_at(f_ghz) * self.runtime_at(t_nominal, f_ghz)
    }

    /// The energy-optimal frequency in `[f_min, f_max]`.
    ///
    /// Analytically, minimizing `(P_s + P_d·(f/f_n)³)·(W/f)` gives
    /// `f* = f_n · (P_s / (2·P_d))^{1/3}`, clamped to the range.
    pub fn optimal_frequency(&self) -> f64 {
        let ratio = self.static_power.value() / (2.0 * self.dynamic_power_nominal.value());
        (self.f_nominal_ghz * ratio.cbrt()).clamp(self.f_min_ghz, self.f_max_ghz)
    }

    /// Energy saving (fraction) of running at the optimum vs nominal.
    pub fn optimal_saving(&self, t_nominal: Seconds) -> f64 {
        let e_nom = self.energy_at(t_nominal, self.f_nominal_ghz);
        let e_opt = self.energy_at(t_nominal, self.optimal_frequency());
        1.0 - e_opt.value() / e_nom.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CpuGeneration;

    fn model() -> DvfsModel {
        DvfsModel {
            static_power: Watts(60.0),
            dynamic_power_nominal: Watts(120.0),
            f_nominal_ghz: 2.4,
            f_min_ghz: 1.0,
            f_max_ghz: 3.4,
        }
    }

    #[test]
    fn power_is_cubic_in_frequency() {
        let m = model();
        let p1 = m.power_at(2.4).value();
        let p2 = m.power_at(4.8).value();
        // Dynamic part grows 8x.
        assert!(((p2 - 60.0) / (p1 - 60.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn runtime_inverse_in_frequency() {
        let m = model();
        let t = m.runtime_at(Seconds(10.0), 1.2);
        assert!((t.value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn optimum_matches_analytic_form() {
        let m = model();
        let f_star = m.optimal_frequency();
        let expect = 2.4 * (60.0f64 / 240.0).cbrt();
        assert!((f_star - expect).abs() < 1e-12);
        // Numerically verify it is a minimum over the range.
        let e_star = m.energy_at(Seconds(1.0), f_star).value();
        for f in [1.0, 1.5, 2.0, 2.4, 3.0, 3.4] {
            assert!(m.energy_at(Seconds(1.0), f).value() >= e_star - 1e-9, "f={f}");
        }
    }

    #[test]
    fn optimum_clamped_to_range() {
        // Overwhelming static power pushes f* to f_max.
        let m = DvfsModel {
            static_power: Watts(1000.0),
            dynamic_power_nominal: Watts(1.0),
            ..model()
        };
        assert_eq!(m.optimal_frequency(), m.f_max_ghz);
        // Overwhelming dynamic power pushes it to f_min.
        let m = DvfsModel {
            static_power: Watts(0.1),
            dynamic_power_nominal: Watts(1000.0),
            ..model()
        };
        assert_eq!(m.optimal_frequency(), m.f_min_ghz);
    }

    #[test]
    fn saving_nonnegative_and_bounded() {
        for gen in CpuGeneration::ALL {
            let m = DvfsModel::from_profile(&gen.profile(), 8);
            let s = m.optimal_saving(Seconds(5.0));
            assert!((0.0..1.0).contains(&s), "{gen:?}: {s}");
        }
    }

    #[test]
    fn from_profile_splits_idle_and_dynamic() {
        let p = CpuGeneration::Skylake8160.profile();
        let m = DvfsModel::from_profile(&p, p.cores);
        assert_eq!(m.static_power.value(), p.idle_power().value());
        assert!(
            (m.static_power.value() + m.dynamic_power_nominal.value()
                - p.max_power().value())
            .abs()
                < 1e-9
        );
    }
}
