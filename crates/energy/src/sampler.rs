//! PAPI-style power sampling.
//!
//! The paper's §IV-B stresses that RAPL energy is a discretized integral
//! `E = Σ P(tᵢ)·Δt`. This module reproduces that machinery: a
//! [`PowerTrace`] records `(t, P)` samples — from a background sampling
//! thread in measured mode, or synthetically in tests — and integrates
//! them with the same left-Riemann rule.

use crate::units::{Joules, Seconds, Watts};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A recorded power trace.
#[derive(Clone, Debug, Default)]
pub struct PowerTrace {
    /// `(timestamp, power)` samples, timestamps strictly increasing.
    samples: Vec<(Seconds, Watts)>,
}

impl PowerTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; out-of-order timestamps are rejected.
    pub fn push(&mut self, t: Seconds, p: Watts) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(t.value() > last.value(), "non-monotonic sample time");
        }
        self.samples.push((t, p));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Left-Riemann integral `Σ P(tᵢ)·(tᵢ₊₁ − tᵢ)` — the paper's Eq. in
    /// §IV-B.
    pub fn integrate(&self) -> Joules {
        let mut e = Joules::ZERO;
        for w in self.samples.windows(2) {
            let dt = w[1].0 - w[0].0;
            e += w[0].1 * dt;
        }
        e
    }

    /// Mean power over the trace span (0 with < 2 samples).
    pub fn mean_power(&self) -> Watts {
        let (Some(first), Some(last)) = (self.samples.first(), self.samples.last()) else {
            return Watts::ZERO;
        };
        let span = last.0 - first.0;
        if span.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.integrate() / span
        }
    }
}

/// Samples a power callback on a background thread while a workload runs.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    trace: Arc<Mutex<PowerTrace>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `power_fn` every `interval`.
    pub fn start(
        interval: Duration,
        power_fn: impl Fn() -> Watts + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let trace = Arc::new(Mutex::new(PowerTrace::new()));
        let (stop2, trace2) = (stop.clone(), trace.clone());
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || {
            let mut last = -1.0f64;
            while !stop2.load(Ordering::Relaxed) {
                let now = t0.elapsed().as_secs_f64();
                if now > last {
                    trace2.lock().push(Seconds(now), power_fn());
                    last = now;
                }
                std::thread::sleep(interval);
            }
        });
        Self {
            stop,
            trace,
            handle: Some(handle),
        }
    }

    /// Stops sampling and returns the trace.
    pub fn finish(mut self) -> PowerTrace {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let t = self.trace.lock().clone();
        t
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_of_constant_power() {
        let mut t = PowerTrace::new();
        for i in 0..=10 {
            t.push(Seconds(i as f64 * 0.1), Watts(50.0));
        }
        // 1 second at 50 W.
        assert!((t.integrate().value() - 50.0 * 1.0).abs() < 1e-9);
        assert!((t.mean_power().value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn integral_of_step_function() {
        let mut t = PowerTrace::new();
        t.push(Seconds(0.0), Watts(10.0));
        t.push(Seconds(1.0), Watts(100.0));
        t.push(Seconds(3.0), Watts(100.0));
        // 1s @ 10W + 2s @ 100W.
        assert!((t.integrate().value() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_sample() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.integrate(), Joules::ZERO);
        let mut t = PowerTrace::new();
        t.push(Seconds(1.0), Watts(5.0));
        assert_eq!(t.integrate(), Joules::ZERO);
        assert_eq!(t.mean_power(), Watts::ZERO);
    }

    #[test]
    #[should_panic]
    fn non_monotonic_rejected() {
        let mut t = PowerTrace::new();
        t.push(Seconds(1.0), Watts(5.0));
        t.push(Seconds(0.5), Watts(5.0));
    }

    #[test]
    fn sampler_records_during_workload() {
        let sampler = Sampler::start(Duration::from_millis(1), || Watts(42.0));
        // Busy work for ~30 ms.
        let mut acc = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(30) {
            acc = acc.wrapping_add(1);
        }
        let trace = sampler.finish();
        assert!(acc > 0);
        assert!(trace.len() >= 2, "only {} samples", trace.len());
        assert!((trace.mean_power().value() - 42.0).abs() < 1e-9);
    }
}
