//! Measured-workload energy accounting.
//!
//! [`measure_compute`] runs a closure, measures its wall time, and
//! integrates the modeled package + memory power over that time for a
//! given CPU profile — the substitution for "PAPI around the compression
//! call" (paper Fig. 4). [`modeled_compute_energy`] is the deterministic
//! variant used where reproducible numbers matter (tests, the PFS
//! simulator's internal accounting).

use crate::profile::CpuProfile;
use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What the measured region was doing, for the power model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Activity {
    /// Worker threads actively computing.
    pub threads: u32,
    /// CPU utilization of those threads (1.0 for a busy codec loop).
    pub utilization: f64,
    /// Memory-traffic intensity in `[0,1]` (bytes touched / time vs
    /// peak bandwidth; compressors stream their input ≈ 0.4–0.8).
    pub memory_intensity: f64,
}

impl Activity {
    /// A fully-busy serial codec loop.
    pub fn serial_compute() -> Self {
        Self {
            threads: 1,
            utilization: 1.0,
            memory_intensity: 0.5,
        }
    }

    /// A fully-busy parallel codec region on `threads` threads.
    pub fn parallel_compute(threads: u32) -> Self {
        Self {
            threads,
            utilization: 1.0,
            memory_intensity: 0.6,
        }
    }

    /// An I/O-bound phase (low CPU, streaming memory).
    pub fn io_phase() -> Self {
        Self {
            threads: 1,
            utilization: 0.15,
            memory_intensity: 0.8,
        }
    }
}

/// One measured region: modeled runtime and energy on the target CPU.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Wall time measured on *this* machine.
    pub wall: Seconds,
    /// Runtime scaled to the target CPU (`wall / throughput_factor`).
    pub scaled: Seconds,
    /// Package energy over the scaled runtime (both RAPL zones, Eq. 6).
    pub package: Joules,
    /// DRAM energy over the scaled runtime.
    pub dram: Joules,
}

impl Measurement {
    /// Total energy (`package + dram`).
    pub fn total(&self) -> Joules {
        self.package + self.dram
    }

    /// Mean power over the scaled runtime.
    pub fn mean_power(&self) -> Watts {
        if self.scaled.value() <= 0.0 {
            Watts::ZERO
        } else {
            self.total() / self.scaled
        }
    }

    /// Accumulates another measurement (sequential phases).
    pub fn accumulate(&mut self, other: &Measurement) {
        self.wall += other.wall;
        self.scaled += other.scaled;
        self.package += other.package;
        self.dram += other.dram;
    }
}

/// Converts a measured wall time + activity into the target platform's
/// runtime and energy.
pub fn energy_for_wall(profile: &CpuProfile, activity: Activity, wall: Seconds) -> Measurement {
    let scaled = Seconds(wall.value() / profile.throughput_factor);
    let pkg_power = profile.package_power(activity.threads, activity.utilization);
    let mem_power = profile.memory_power(activity.memory_intensity);
    Measurement {
        wall,
        scaled,
        package: pkg_power * scaled,
        dram: mem_power * scaled,
    }
}

/// Runs `f`, returning its value and the modeled measurement of the
/// region on `profile`.
pub fn measure_compute<R>(
    profile: &CpuProfile,
    activity: Activity,
    f: impl FnOnce() -> R,
) -> (R, Measurement) {
    let start = Instant::now();
    let out = f();
    let wall = Seconds(start.elapsed().as_secs_f64());
    (out, energy_for_wall(profile, activity, wall))
}

/// Deterministic energy for a purely modeled workload of `work_units`
/// abstract units, where one unit takes one second at unit throughput on
/// the 8260M baseline with one thread.
///
/// Parallel runs divide runtime by an Amdahl-style effective speedup
/// with `parallel_fraction` of the work parallelizable.
pub fn modeled_compute_energy(
    profile: &CpuProfile,
    activity: Activity,
    work_units: f64,
    parallel_fraction: f64,
) -> Measurement {
    assert!(work_units >= 0.0, "negative work");
    let t = f64::from(activity.threads.max(1));
    let speedup = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / t);
    let wall = Seconds(work_units / speedup);
    energy_for_wall(profile, activity, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CpuGeneration;

    fn profile() -> CpuProfile {
        CpuGeneration::Skylake8160.profile()
    }

    #[test]
    fn measure_compute_returns_value_and_positive_energy() {
        let (out, m) = measure_compute(&profile(), Activity::serial_compute(), || {
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(out > 0);
        assert!(m.wall.value() > 0.0);
        assert!(m.package.value() > 0.0);
        assert!(m.total().value() > m.package.value());
    }

    #[test]
    fn scaled_runtime_uses_throughput_factor() {
        let p = CpuGeneration::SapphireRapids9480.profile();
        let m = energy_for_wall(&p, Activity::serial_compute(), Seconds(2.3));
        assert!((m.scaled.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modeled_energy_deterministic_and_monotone_in_work() {
        let p = profile();
        let a = Activity::serial_compute();
        let e1 = modeled_compute_energy(&p, a, 1.0, 0.95);
        let e2 = modeled_compute_energy(&p, a, 2.0, 0.95);
        assert_eq!(
            modeled_compute_energy(&p, a, 1.0, 0.95).total().value(),
            e1.total().value()
        );
        assert!((e2.total().value() - 2.0 * e1.total().value()).abs() < 1e-9);
    }

    #[test]
    fn parallel_energy_decreases_then_plateaus() {
        // Fig. 10's shape: more threads → less energy, with diminishing
        // returns (power grows sub-linearly, runtime shrinks per Amdahl).
        let p = profile();
        let energies: Vec<f64> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&t| {
                modeled_compute_energy(&p, Activity::parallel_compute(t), 100.0, 0.95)
                    .total()
                    .value()
            })
            .collect();
        assert!(energies[1] < energies[0]);
        assert!(energies[2] < energies[1]);
        // Diminishing improvement: the 16→32 gain is smaller than 1→2.
        let early_gain = energies[0] - energies[1];
        let late_gain = (energies[4] - energies[5]).max(0.0);
        assert!(late_gain < early_gain);
    }

    #[test]
    fn mean_power_between_idle_and_max() {
        let p = profile();
        let m = modeled_compute_energy(&p, Activity::parallel_compute(8), 10.0, 0.9);
        let w = m.mean_power().value();
        assert!(w >= p.idle_power().value());
        assert!(w <= p.max_power().value() + p.mem_power.value());
    }

    #[test]
    fn accumulate_sums_phases() {
        let p = profile();
        let a = Activity::serial_compute();
        let mut total = modeled_compute_energy(&p, a, 1.0, 0.9);
        let other = modeled_compute_energy(&p, a, 2.0, 0.9);
        total.accumulate(&other);
        assert!((total.wall.value() - 3.0).abs() < 1e-9);
        assert!(total.total().value() > other.total().value());
    }
}
