//! Per-CPU power/performance profiles (paper Table I).
//!
//! The paper's node inventory:
//!
//! | System | CPU | Cores | CPU TDP |
//! |--------|-----|-------|---------|
//! | PSC Bridges-2 | Xeon Platinum 8260M (Cascade Lake) | 96 | 165 W |
//! | TACC Stampede3 | Xeon CPU MAX 9480 (Sapphire Rapids) | 112 | 350 W |
//! | TACC Stampede3 | Xeon Platinum 8160 (Skylake) | 48 | 270 W |
//!
//! Each profile also carries the model parameters the substitution uses:
//! idle power, memory power, the core-scaling exponent, a relative
//! throughput factor (newer CPUs execute the same codec faster — this is
//! what makes Sapphire Rapids the lowest-energy row of Fig. 7), and the
//! I/O-phase power used by the PFS energy model.

use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// The three CPU platforms of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CpuGeneration {
    /// Intel Xeon Platinum 8260M (Cascade Lake, PSC Bridges-2).
    CascadeLake8260M,
    /// Intel Xeon Platinum 8160 (Skylake, TACC Stampede3).
    Skylake8160,
    /// Intel Xeon CPU MAX 9480 (Sapphire Rapids, TACC Stampede3).
    SapphireRapids9480,
}

impl CpuGeneration {
    /// All three platforms, oldest first (Fig. 7's row order is
    /// 9480 / 8160 / 8260M; iteration order here is chronological).
    pub const ALL: [CpuGeneration; 3] = [
        CpuGeneration::Skylake8160,
        CpuGeneration::CascadeLake8260M,
        CpuGeneration::SapphireRapids9480,
    ];

    /// The profile for this platform.
    pub fn profile(self) -> CpuProfile {
        match self {
            CpuGeneration::CascadeLake8260M => CpuProfile {
                generation: self,
                name: "Intel Xeon Platinum 8260M",
                cores: 96,
                sockets: 2,
                tdp_per_socket: Watts(165.0),
                idle_fraction: 0.28,
                mem_power: Watts(38.0),
                core_scaling_gamma: 0.85,
                throughput_factor: 0.7,
                io_power: Watts(55.0),
            },
            CpuGeneration::Skylake8160 => CpuProfile {
                generation: self,
                name: "Intel Xeon Platinum 8160",
                cores: 48,
                sockets: 2,
                tdp_per_socket: Watts(270.0),
                idle_fraction: 0.25,
                mem_power: Watts(30.0),
                core_scaling_gamma: 0.85,
                throughput_factor: 1.35,
                io_power: Watts(50.0),
            },
            CpuGeneration::SapphireRapids9480 => CpuProfile {
                generation: self,
                name: "Intel Xeon CPU Max 9480",
                cores: 112,
                sockets: 2,
                tdp_per_socket: Watts(350.0),
                idle_fraction: 0.18,
                mem_power: Watts(24.0),
                core_scaling_gamma: 0.80,
                throughput_factor: 2.3,
                io_power: Watts(45.0),
            },
        }
    }
}

/// Power/performance model parameters for one node type.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuProfile {
    /// Which platform this is.
    pub generation: CpuGeneration,
    /// Marketing name, matching the paper's figure titles.
    pub name: &'static str,
    /// Total usable cores per node (Table I).
    pub cores: u32,
    /// Socket count (RAPL packages P0/P1, Fig. 3).
    pub sockets: u32,
    /// TDP per socket (Table I).
    pub tdp_per_socket: Watts,
    /// Idle power as a fraction of TDP.
    pub idle_fraction: f64,
    /// Peak DRAM/HBM power attributable to a streaming workload.
    pub mem_power: Watts,
    /// Sub-linear active-core power scaling exponent γ in
    /// `P = P_idle + (P_max − P_idle)·u·(c/C)^γ`.
    pub core_scaling_gamma: f64,
    /// Relative single-thread codec throughput vs a reference Xeon —
    /// newer CPUs run the same compressor faster (and hence cheaper).
    /// Calibrated so per-unit-work energy orders as the paper's Fig. 7
    /// rows: 9480 < 8160 < 8260M.
    pub throughput_factor: f64,
    /// Package power during I/O-dominated phases (drives + controller
    /// attribution happens in the PFS model; this is the CPU side).
    pub io_power: Watts,
}

impl CpuProfile {
    /// Node-level maximum package power (`sockets × TDP`).
    pub fn max_power(&self) -> Watts {
        self.tdp_per_socket * f64::from(self.sockets)
    }

    /// Node-level idle power.
    pub fn idle_power(&self) -> Watts {
        self.max_power() * self.idle_fraction
    }

    /// Package power when `active` of [`Self::cores`] cores run at
    /// utilization `util ∈ [0,1]` — the paper's Eq. 6 aggregation over
    /// both RAPL zones, with the sub-linear core scaling the model adds.
    pub fn package_power(&self, active_cores: u32, util: f64) -> Watts {
        let util = util.clamp(0.0, 1.0);
        let c = f64::from(active_cores.min(self.cores)) / f64::from(self.cores);
        let dynamic = (self.max_power() - self.idle_power()) * (c.powf(self.core_scaling_gamma) * util);
        self.idle_power() + dynamic
    }

    /// Memory-system power at a given traffic intensity `[0,1]`.
    pub fn memory_power(&self, intensity: f64) -> Watts {
        self.mem_power * intensity.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = CpuGeneration::CascadeLake8260M.profile();
        assert_eq!(p.cores, 96);
        assert_eq!(p.tdp_per_socket, Watts(165.0));
        let p = CpuGeneration::SapphireRapids9480.profile();
        assert_eq!(p.cores, 112);
        assert_eq!(p.tdp_per_socket, Watts(350.0));
        let p = CpuGeneration::Skylake8160.profile();
        assert_eq!(p.cores, 48);
        assert_eq!(p.tdp_per_socket, Watts(270.0));
    }

    #[test]
    fn newer_cpus_are_faster() {
        // Fig. 7's row ordering depends on Sapphire Rapids being the
        // most efficient platform.
        let t8260 = CpuGeneration::CascadeLake8260M.profile().throughput_factor;
        let t8160 = CpuGeneration::Skylake8160.profile().throughput_factor;
        let t9480 = CpuGeneration::SapphireRapids9480.profile().throughput_factor;
        assert!(t9480 > t8160 && t8160 > t8260);
    }

    #[test]
    fn power_is_monotone_in_cores_and_util() {
        for gen in CpuGeneration::ALL {
            let p = gen.profile();
            let mut prev = Watts::ZERO;
            for c in [1, 4, 16, p.cores] {
                let w = p.package_power(c, 1.0);
                assert!(w.value() > prev.value(), "{:?} cores {c}", gen);
                prev = w;
            }
            assert!(p.package_power(4, 0.5).value() < p.package_power(4, 1.0).value());
            // Bounded by idle..max.
            assert!(p.package_power(0, 0.0).value() >= p.idle_power().value() - 1e-9);
            assert!(p.package_power(p.cores, 1.0).value() <= p.max_power().value() + 1e-9);
        }
    }

    #[test]
    fn full_load_hits_tdp() {
        let p = CpuGeneration::Skylake8160.profile();
        let full = p.package_power(p.cores, 1.0);
        assert!((full.value() - p.max_power().value()).abs() < 1e-9);
    }

    #[test]
    fn energy_efficiency_ordering_per_unit_work() {
        // Same work on each platform: energy = work/throughput × power.
        // Sapphire Rapids must come out cheapest (Fig. 7 rows).
        let mut energies: Vec<(f64, &str)> = CpuGeneration::ALL
            .iter()
            .map(|g| {
                let p = g.profile();
                let seconds = 100.0 / p.throughput_factor;
                let e = p.package_power(1, 1.0).value() * seconds;
                (e, p.name)
            })
            .collect();
        energies.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(energies[0].1, "Intel Xeon CPU Max 9480");
    }
}
