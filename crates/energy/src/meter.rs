//! The [`EnergyMeter`] front door: RAPL when available, model otherwise.

use crate::measure::{energy_for_wall, Activity, Measurement};
use crate::profile::CpuProfile;
use crate::rapl::{RaplMeter, RaplSnapshot};
use crate::units::Seconds;
use std::time::Instant;

/// A meter that can bracket a region and report its energy.
pub trait EnergyMeter: Send + Sync {
    /// Human-readable backend name.
    fn backend(&self) -> &'static str;

    /// Measures `f` and returns the region's [`Measurement`].
    fn measure(&self, activity: Activity, f: &mut dyn FnMut()) -> Measurement;
}

/// Model-backed meter (the default in this container): real wall time ×
/// profile power model.
#[derive(Clone, Debug)]
pub struct ModeledMeter {
    /// The CPU whose power model to integrate.
    pub profile: CpuProfile,
}

impl ModeledMeter {
    /// Creates a meter for the given platform.
    pub fn new(profile: CpuProfile) -> Self {
        Self { profile }
    }
}

impl EnergyMeter for ModeledMeter {
    fn backend(&self) -> &'static str {
        "modeled"
    }

    fn measure(&self, activity: Activity, f: &mut dyn FnMut()) -> Measurement {
        let start = Instant::now();
        f();
        let wall = Seconds(start.elapsed().as_secs_f64());
        energy_for_wall(&self.profile, activity, wall)
    }
}

/// RAPL-backed meter for bare-metal Intel hosts.
pub struct HardwareMeter {
    rapl: RaplMeter,
    profile: CpuProfile,
}

impl EnergyMeter for HardwareMeter {
    fn backend(&self) -> &'static str {
        "rapl"
    }

    fn measure(&self, activity: Activity, f: &mut dyn FnMut()) -> Measurement {
        let before: Option<RaplSnapshot> = self.rapl.snapshot().ok();
        let start = Instant::now();
        f();
        let wall = Seconds(start.elapsed().as_secs_f64());
        let after = self.rapl.snapshot().ok();
        match (before, after) {
            (Some(b), Some(a)) => {
                let pkg = self.rapl.energy_between(&b, &a);
                Measurement {
                    wall,
                    scaled: wall,
                    package: pkg,
                    dram: self.profile.memory_power(activity.memory_intensity) * wall,
                }
            }
            // Counter read failed mid-flight: fall back to the model.
            _ => energy_for_wall(&self.profile, activity, wall),
        }
    }
}

/// Meter selection.
pub enum MeterKind {
    /// Hardware RAPL counters.
    Hardware(HardwareMeter),
    /// Power model over measured wall time.
    Modeled(ModeledMeter),
}

impl MeterKind {
    /// Picks RAPL when the powercap interface exists, otherwise the
    /// model for `profile`.
    pub fn auto(profile: CpuProfile) -> Self {
        match RaplMeter::discover() {
            Some(rapl) => MeterKind::Hardware(HardwareMeter { rapl, profile }),
            None => MeterKind::Modeled(ModeledMeter::new(profile)),
        }
    }

    /// The underlying meter as a trait object.
    pub fn as_meter(&self) -> &dyn EnergyMeter {
        match self {
            MeterKind::Hardware(m) => m,
            MeterKind::Modeled(m) => m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CpuGeneration;

    #[test]
    fn modeled_meter_measures_region() {
        let meter = ModeledMeter::new(CpuGeneration::Skylake8160.profile());
        let mut acc = 0u64;
        let m = meter.measure(Activity::serial_compute(), &mut || {
            for i in 0..1_000_000u64 {
                acc = acc.wrapping_add(i);
            }
        });
        assert!(acc > 0);
        assert!(m.package.value() > 0.0);
        assert_eq!(meter.backend(), "modeled");
    }

    #[test]
    fn auto_selects_some_backend() {
        let kind = MeterKind::auto(CpuGeneration::SapphireRapids9480.profile());
        let name = kind.as_meter().backend();
        assert!(name == "rapl" || name == "modeled");
    }

    #[test]
    fn longer_work_more_energy() {
        let meter = ModeledMeter::new(CpuGeneration::CascadeLake8260M.profile());
        let mut sink = 0u64;
        let short = meter.measure(Activity::serial_compute(), &mut || {
            for i in 0..200_000u64 {
                sink = sink.wrapping_add(std::hint::black_box(i) * 3);
            }
        });
        let long = meter.measure(Activity::serial_compute(), &mut || {
            for i in 0..20_000_000u64 {
                sink = sink.wrapping_add(std::hint::black_box(i) * 3);
            }
        });
        assert!(long.package.value() > short.package.value(), "{sink}");
    }
}
