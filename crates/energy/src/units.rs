//! Physical unit newtypes.
//!
//! Energy work in this workspace mixes joules, watts, and seconds across
//! many models; the newtypes keep the dimensional algebra honest
//! (`Watts × Seconds = Joules`) at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Raw magnitude.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// True when the value is finite and ≥ 0.
            #[inline]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:.4} {}", self.0, $suffix)
            }
        }
    };
}

unit!(
    /// Energy in joules.
    Joules, "J"
);
unit!(
    /// Power in watts.
    Watts, "W"
);
unit!(
    /// Time in seconds.
    Seconds, "s"
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// `P · t = E`.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    /// `t · P = E`.
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// `E / t = P̄`.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// `E / P = t`.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_algebra() {
        let e = Watts(100.0) * Seconds(3.0);
        assert_eq!(e, Joules(300.0));
        assert_eq!(e / Seconds(3.0), Watts(100.0));
        assert_eq!(e / Watts(100.0), Seconds(3.0));
        assert_eq!(Seconds(2.0) * Watts(5.0), Joules(10.0));
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Joules = [Joules(1.0), Joules(2.5), Joules(3.0)].into_iter().sum();
        assert_eq!(total, Joules(6.5));
        let mut acc = Joules::ZERO;
        acc += Joules(4.0);
        assert_eq!(acc - Joules(1.0), Joules(3.0));
        assert_eq!(acc * 2.0, Joules(8.0));
        assert_eq!(acc / 2.0, Joules(2.0));
    }

    #[test]
    fn validity() {
        assert!(Joules(1.0).is_valid());
        assert!(!Joules(-1.0).is_valid());
        assert!(!Joules(f64::NAN).is_valid());
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(Watts(12.5).to_string(), "12.5000 W");
        assert_eq!(Joules(1.0).to_string(), "1.0000 J");
    }
}
