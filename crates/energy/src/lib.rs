//! # eblcio-energy
//!
//! Energy measurement substrate for the reproduction of the paper's
//! RAPL/PAPI methodology (§IV-B).
//!
//! The paper samples Intel RAPL package counters through PAPI and
//! integrates `E = Σ P(tᵢ)·Δt` over each compression / I/O phase, on
//! three Xeon generations (Table I). This container has no RAPL, so the
//! crate provides both:
//!
//! * [`rapl::RaplMeter`] — a real `/sys/class/powercap` reader used
//!   automatically when the interface exists (wraparound-safe), and
//! * [`meter::ModeledMeter`] — the documented substitution: power is
//!   modeled from a per-CPU [`profile::CpuProfile`] (TDP, idle power,
//!   core scaling, memory power — derived from Table I) and integrated
//!   over the *measured wall time and thread activity* of the actual
//!   Rust workload, exactly the `E = Σ P(tᵢ)Δt` discretization the paper
//!   describes.
//!
//! Cross-CPU comparisons (Figs. 5/7/10) come from each profile's
//! throughput and power scaling; see `DESIGN.md` for the substitution
//! argument.

#![forbid(unsafe_code)]

pub mod dvfs;
pub mod measure;
pub mod meter;
pub mod profile;
pub mod rapl;
pub mod sampler;
pub mod units;

pub use dvfs::DvfsModel;
pub use measure::{measure_compute, modeled_compute_energy, Activity, Measurement};
pub use meter::{EnergyMeter, MeterKind, ModeledMeter};
pub use profile::{CpuGeneration, CpuProfile};
pub use units::{Joules, Seconds, Watts};
