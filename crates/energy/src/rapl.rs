//! Real RAPL readings via the Linux powercap interface.
//!
//! When `/sys/class/powercap/intel-rapl:*` exists (bare-metal Intel
//! hosts), this meter reads the same counters the paper samples through
//! PAPI: per-package `energy_uj`, summed over both zones (Eq. 6), with
//! wraparound correction via `max_energy_range_uj`.

use crate::units::Joules;
use std::fs;
use std::path::PathBuf;

/// One RAPL package zone.
#[derive(Clone, Debug)]
pub struct RaplZone {
    /// Zone name (e.g. `package-0`).
    pub name: String,
    energy_path: PathBuf,
    /// Counter wraparound range in microjoules.
    pub max_energy_range_uj: u64,
}

impl RaplZone {
    /// Current counter value in microjoules.
    pub fn read_uj(&self) -> std::io::Result<u64> {
        let s = fs::read_to_string(&self.energy_path)?;
        s.trim()
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A powercap-backed energy meter over all package zones.
#[derive(Clone, Debug)]
pub struct RaplMeter {
    zones: Vec<RaplZone>,
}

/// Snapshot of all zone counters.
#[derive(Clone, Debug)]
pub struct RaplSnapshot {
    counters_uj: Vec<u64>,
}

impl RaplMeter {
    /// Discovers package zones under the standard powercap root.
    ///
    /// Returns `None` when the interface is absent (VMs, containers,
    /// non-Intel hosts) — callers fall back to the modeled meter.
    pub fn discover() -> Option<Self> {
        Self::discover_at("/sys/class/powercap")
    }

    /// Discovery with an explicit root (testable).
    pub fn discover_at(root: &str) -> Option<Self> {
        let mut zones = Vec::new();
        let entries = fs::read_dir(root).ok()?;
        for e in entries.flatten() {
            let fname = e.file_name();
            let name = fname.to_string_lossy();
            // Top-level packages only: `intel-rapl:N` (subzones have a
            // second colon segment).
            if !name.starts_with("intel-rapl:") || name.matches(':').count() != 1 {
                continue;
            }
            let dir = e.path();
            let zone_name = fs::read_to_string(dir.join("name")).ok()?;
            if !zone_name.trim().starts_with("package") {
                continue;
            }
            let max: u64 = fs::read_to_string(dir.join("max_energy_range_uj"))
                .ok()?
                .trim()
                .parse()
                .ok()?;
            zones.push(RaplZone {
                name: zone_name.trim().to_string(),
                energy_path: dir.join("energy_uj"),
                max_energy_range_uj: max,
            });
        }
        if zones.is_empty() {
            None
        } else {
            zones.sort_by(|a, b| a.name.cmp(&b.name));
            Some(Self { zones })
        }
    }

    /// Number of package zones (paper Fig. 3 shows two).
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> std::io::Result<RaplSnapshot> {
        let mut counters_uj = Vec::with_capacity(self.zones.len());
        for z in &self.zones {
            counters_uj.push(z.read_uj()?);
        }
        Ok(RaplSnapshot { counters_uj })
    }

    /// Energy elapsed between two snapshots, wraparound-corrected and
    /// summed over zones (Eq. 6: `E_CPU = E_P0 + E_P1`).
    pub fn energy_between(&self, start: &RaplSnapshot, end: &RaplSnapshot) -> Joules {
        let mut total_uj = 0u64;
        for (i, z) in self.zones.iter().enumerate() {
            let (s, e) = (start.counters_uj[i], end.counters_uj[i]);
            let delta = if e >= s {
                e - s
            } else {
                // Counter wrapped.
                e + (z.max_energy_range_uj - s)
            };
            total_uj += delta;
        }
        Joules(total_uj as f64 * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_zone(dir: &std::path::Path, idx: usize, energy: u64, max: u64) {
        let z = dir.join(format!("intel-rapl:{idx}"));
        fs::create_dir_all(&z).unwrap();
        fs::write(z.join("name"), format!("package-{idx}\n")).unwrap();
        fs::write(z.join("energy_uj"), format!("{energy}\n")).unwrap();
        fs::write(z.join("max_energy_range_uj"), format!("{max}\n")).unwrap();
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eblcio-rapl-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn discovery_absent_root() {
        assert!(RaplMeter::discover_at("/nonexistent/powercap").is_none());
    }

    #[test]
    fn discovery_and_delta() {
        let d = tmpdir("delta");
        fake_zone(&d, 0, 1_000_000, u64::MAX / 2);
        fake_zone(&d, 1, 5_000_000, u64::MAX / 2);
        // A subzone that must be ignored.
        let sub = d.join("intel-rapl:0:0");
        fs::create_dir_all(&sub).unwrap();
        fs::write(sub.join("name"), "core\n").unwrap();

        let meter = RaplMeter::discover_at(d.to_str().unwrap()).unwrap();
        assert_eq!(meter.zone_count(), 2);
        let s0 = meter.snapshot().unwrap();
        fs::write(d.join("intel-rapl:0/energy_uj"), "3000000\n").unwrap();
        fs::write(d.join("intel-rapl:1/energy_uj"), "6000000\n").unwrap();
        let s1 = meter.snapshot().unwrap();
        // (3-1) + (6-5) = 3 J.
        assert!((meter.energy_between(&s0, &s1).value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wraparound_corrected() {
        let d = tmpdir("wrap");
        fake_zone(&d, 0, 999_000, 1_000_000);
        let meter = RaplMeter::discover_at(d.to_str().unwrap()).unwrap();
        let s0 = meter.snapshot().unwrap();
        fs::write(d.join("intel-rapl:0/energy_uj"), "500\n").unwrap();
        let s1 = meter.snapshot().unwrap();
        // 1500 µJ elapsed across the wrap.
        assert!((meter.energy_between(&s0, &s1).value() - 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn non_package_zones_ignored() {
        let d = tmpdir("psys");
        let z = d.join("intel-rapl:0");
        fs::create_dir_all(&z).unwrap();
        fs::write(z.join("name"), "psys\n").unwrap();
        fs::write(z.join("energy_uj"), "1\n").unwrap();
        fs::write(z.join("max_energy_range_uj"), "10\n").unwrap();
        assert!(RaplMeter::discover_at(d.to_str().unwrap()).is_none());
    }
}
