//! Energy-crate integration: meters, profiles, sampler, and DVFS model
//! working together.

use eblcio_energy::dvfs::DvfsModel;
use eblcio_energy::meter::{EnergyMeter, MeterKind, ModeledMeter};
use eblcio_energy::sampler::{PowerTrace, Sampler};
use eblcio_energy::{
    measure_compute, modeled_compute_energy, Activity, CpuGeneration, Seconds, Watts,
};
use std::time::Duration;

#[test]
fn meter_and_direct_measurement_agree() {
    // ModeledMeter and measure_compute use the same model; bracketing
    // the same busy-loop should land in the same ballpark.
    let profile = CpuGeneration::Skylake8160.profile();
    let meter = ModeledMeter::new(profile);
    let work = || {
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i).wrapping_mul(31));
        }
        std::hint::black_box(acc);
    };
    let m1 = meter.measure(Activity::serial_compute(), &mut { work });
    let (_, m2) = measure_compute(&profile, Activity::serial_compute(), work);
    let ratio = m1.total().value() / m2.total().value();
    assert!(
        (0.2..5.0).contains(&ratio),
        "meter {:.4} J vs direct {:.4} J",
        m1.total().value(),
        m2.total().value()
    );
}

#[test]
fn sampler_trace_integral_matches_constant_model() {
    // Sample a constant 100 W source for ~50 ms; the trace integral must
    // equal 100 W × span.
    let sampler = Sampler::start(Duration::from_millis(1), || Watts(100.0));
    let t0 = std::time::Instant::now();
    while t0.elapsed() < Duration::from_millis(50) {
        std::hint::black_box(0u8);
    }
    let trace: PowerTrace = sampler.finish();
    assert!(trace.len() >= 3);
    let span = trace.integrate().value() / 100.0; // seconds implied
    assert!(span > 0.0);
    assert!((trace.mean_power().value() - 100.0).abs() < 1e-9);
}

#[test]
fn cross_platform_energy_ordering_is_stable_under_threads() {
    // Sapphire Rapids is the cheapest platform at every thread count
    // (Fig. 7/10 rows). The 8160-vs-8260M order can legitimately flip
    // at high thread counts: 32 threads saturate 2/3 of the 48-core
    // 8160 but only 1/3 of the 96-core 8260M, so we pin the full
    // ordering only in the serial/low-thread regime the paper's Fig. 7
    // reports.
    for threads in [1u32, 8, 32] {
        let mut energies: Vec<(f64, CpuGeneration)> = CpuGeneration::ALL
            .iter()
            .map(|&g| {
                let m = modeled_compute_energy(
                    &g.profile(),
                    Activity::parallel_compute(threads),
                    50.0,
                    0.95,
                );
                (m.total().value(), g)
            })
            .collect();
        energies.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(
            energies[0].1,
            CpuGeneration::SapphireRapids9480,
            "threads {threads}"
        );
        if threads <= 8 {
            assert_eq!(
                energies[2].1,
                CpuGeneration::CascadeLake8260M,
                "threads {threads}"
            );
        }
    }
}

#[test]
fn dvfs_optimum_saves_versus_nominal_on_all_platforms() {
    for gen in CpuGeneration::ALL {
        let model = DvfsModel::from_profile(&gen.profile(), 16);
        let saving = model.optimal_saving(Seconds(10.0));
        // The optimum never loses; with realistic static shares it wins
        // a measurable amount.
        assert!(saving >= 0.0, "{gen:?}");
        let e_min = model.energy_at(Seconds(10.0), model.optimal_frequency());
        for f in [model.f_min_ghz, model.f_nominal_ghz, model.f_max_ghz] {
            assert!(model.energy_at(Seconds(10.0), f).value() >= e_min.value() - 1e-9);
        }
    }
}

#[test]
fn auto_meter_measures_something_sane() {
    let kind = MeterKind::auto(CpuGeneration::SapphireRapids9480.profile());
    let meter = kind.as_meter();
    let m = meter.measure(Activity::serial_compute(), &mut || {
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    });
    assert!(m.wall.value() > 0.0);
    assert!(m.total().value() >= 0.0);
    assert!(m.mean_power().value() < 2000.0, "implausible power");
}
