//! Property tests for the log-linear histogram: percentiles against a
//! sorted-vec oracle within the bucket error bound, merge
//! associativity (including a genuinely multi-threaded merge), and
//! saturation at the top bucket.

use eblcio_obs::{bucket_hi, bucket_index, bucket_lo, Histogram, BUCKETS, SUBBUCKETS};
use proptest::prelude::*;

/// Nearest-rank order statistic — the ground truth a histogram
/// approximates.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile lands in the same bucket as the true
    /// order statistic, and is never above the recorded maximum —
    /// i.e. the error is bounded by the bucket's relative width
    /// (exact below `SUBBUCKETS`, ≤ 1/SUBBUCKETS above).
    #[test]
    fn quantiles_match_sorted_vec_oracle(
        values in proptest::collection::vec(0u64..u64::MAX, 1..400),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.min(), values[0]);
        prop_assert_eq!(snap.max(), *values.last().unwrap());
        for &q in &qs {
            let truth = oracle_quantile(&values, q);
            let got = snap.value_at_quantile(q);
            prop_assert_eq!(
                bucket_index(got),
                bucket_index(truth),
                "q={} got={} truth={}", q, got, truth
            );
            prop_assert!(got <= snap.max());
            prop_assert!(got >= bucket_lo(bucket_index(truth)));
        }
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c) == one histogram fed everything —
    /// merging is bucket addition, so grouping cannot matter.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1 << 48, 0..120),
        b in proptest::collection::vec(0u64..1 << 48, 0..120),
        c in proptest::collection::vec(0u64..1 << 48, 0..120),
    ) {
        let fill = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // ((a ∪ b) ∪ c)
        let left = fill(&a);
        left.merge_from(&fill(&b));
        left.merge_from(&fill(&c));
        // (a ∪ (b ∪ c))
        let bc = fill(&b);
        bc.merge_from(&fill(&c));
        let right = fill(&a);
        right.merge_from(&bc);
        // one histogram fed everything
        let flat = fill(&a);
        for &v in b.iter().chain(&c) {
            flat.record(v);
        }
        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.snapshot(), flat.snapshot());
    }

    /// Shard-per-thread recording merged afterwards equals one shared
    /// histogram hammered by all threads — the "mergeable across
    /// threads" contract.
    #[test]
    fn threaded_shards_merge_to_the_same_distribution(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 40, 1..60),
            2..5
        ),
    ) {
        let shared = std::sync::Arc::new(Histogram::new());
        let shards: Vec<Histogram> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|vals| {
                    let shared = shared.clone();
                    s.spawn(move || {
                        let shard = Histogram::new();
                        for &v in vals {
                            shard.record(v);
                            shared.record(v);
                        }
                        shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let merged = Histogram::new();
        for shard in &shards {
            merged.merge_from(shard);
        }
        prop_assert_eq!(merged.snapshot(), shared.snapshot());
    }

    /// The top of the value range saturates into the last buckets
    /// instead of overflowing: every huge value maps to a valid index
    /// whose bounds still bracket it, and u64::MAX lands in the final
    /// bucket.
    #[test]
    fn top_bucket_saturates(huge in (u64::MAX / 2)..u64::MAX) {
        let idx = bucket_index(huge);
        prop_assert!(idx < BUCKETS);
        prop_assert!(bucket_lo(idx) <= huge && huge <= bucket_hi(idx));
        let h = Histogram::new();
        h.record(huge);
        h.record(u64::MAX);
        prop_assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        prop_assert_eq!(bucket_hi(BUCKETS - 1), u64::MAX);
        let snap = h.snapshot();
        prop_assert_eq!(snap.max(), u64::MAX);
        prop_assert_eq!(snap.value_at_quantile(1.0), u64::MAX);
        prop_assert_eq!(snap.count, 2);
    }
}

/// Exactness below the linear/log boundary deserves a deterministic
/// pin alongside the probabilistic oracle.
#[test]
fn linear_prefix_is_exact() {
    let h = Histogram::new();
    for v in 0..SUBBUCKETS as u64 {
        for _ in 0..3 {
            h.record(v);
        }
    }
    let snap = h.snapshot();
    for v in 0..SUBBUCKETS as u64 {
        assert_eq!(bucket_lo(bucket_index(v)), v);
        assert_eq!(bucket_hi(bucket_index(v)), v);
    }
    assert_eq!(snap.value_at_quantile(0.5), (SUBBUCKETS as u64 - 1) / 2);
}
