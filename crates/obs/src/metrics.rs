//! [`MetricsRegistry`]: named handles to lock-cheap atomic metrics.
//!
//! The registry is a name → handle map behind a `parking_lot::RwLock`
//! that is touched only at registration and export time. Instrumented
//! code resolves its handles **once** at construction (an `Arc` clone
//! per metric) and from then on the hot path pays exactly one relaxed
//! atomic op per event — no map lookup, no lock, no allocation.
//!
//! Naming follows `eblcio_<layer>_<name>_<unit>` (see the README's
//! Observability section): `eblcio_serve_request_ns`,
//! `eblcio_storage_get_bytes`, `eblcio_codec_sz3_encode_ns`. Counters
//! end in `_total`, histograms in their sample unit.

use crate::hist::{Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` (resettable for test harnesses and
/// per-phase accounting).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (registered or free-standing).
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the value back to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An `f64` gauge/accumulator stored as bits in an `AtomicU64` —
/// lock-free float accumulation for simulated seconds and dollar bills.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` via a compare-exchange loop (contention on a gauge is
    /// registration-rare, so the loop settles in one or two rounds).
    #[inline]
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Sets the value back to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// One registered metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one metric (see
/// [`MetricsRegistry::snapshot`]).
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// A named snapshot entry.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// The name → handle map, documented in this file's module comment.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: RwLock<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lookup(&self, name: &str) -> Option<Metric> {
        self.entries
            .read()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m.clone())
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.lookup(name) {
            return m;
        }
        let mut entries = self.entries.write();
        // Re-check under the write lock: another thread may have
        // registered the name between our read and write.
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        entries.push((name.to_owned(), m.clone()));
        m
    }

    /// The counter registered under `name`, created on first use. If
    /// the name is already taken by a different metric kind the caller
    /// gets a fresh free-standing counter (never a panic; the name
    /// collision is a bug the exposition makes visible by omission).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge registered under `name`, created on first use (same
    /// collision policy as [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram registered under `name`, created on first use
    /// (same collision policy as [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Registers an existing counter handle under `name` — the way a
    /// component that owns its counters (e.g. the decoded-chunk cache)
    /// exposes them through a registry it does not own. First
    /// registration wins; the returned handle is the registered one.
    pub fn register_counter(&self, name: &str, handle: Arc<Counter>) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(handle.clone())) {
            Metric::Counter(c) => c,
            _ => handle,
        }
    }

    /// Registers an existing histogram handle under `name` (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_histogram(&self, name: &str, handle: Arc<Histogram>) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(handle.clone())) {
            Metric::Histogram(h) => h,
            _ => handle,
        }
    }

    /// Registers an existing gauge handle under `name` (see
    /// [`MetricsRegistry::register_counter`]).
    pub fn register_gauge(&self, name: &str, handle: Arc<Gauge>) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(handle.clone())) {
            Metric::Gauge(g) => g,
            _ => handle,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// — the single input every exporter renders from. Each metric is
    /// read exactly once, in name order, so two snapshots bracket each
    /// other deterministically.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let mut entries: Vec<(String, Metric)> = self.entries.read().clone();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
            .into_iter()
            .map(|(name, m)| MetricSnapshot {
                name,
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Resets every registered metric to zero. Meant for bench phases
    /// and tests; concurrent recorders keep recording (their updates
    /// land before or after the reset per-metric, never half-applied
    /// within one atomic).
    pub fn reset_all(&self) {
        for (_, m) in self.entries.read().iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("eblcio_test_events_total");
        let b = r.counter("eblcio_test_events_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_collision_yields_detached_handle() {
        let r = MetricsRegistry::new();
        let _h = r.histogram("eblcio_test_mixed");
        let c = r.counter("eblcio_test_mixed");
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(r.len(), 1, "collision must not shadow the original");
    }

    #[test]
    fn gauge_accumulates_floats() {
        let g = Gauge::new();
        g.add(0.25);
        g.add(1.5);
        assert!((g.get() - 1.75).abs() < 1e-12);
        g.set(3.0);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("eblcio_b_total").add(7);
        r.gauge("eblcio_a_ratio").set(0.5);
        r.histogram("eblcio_c_ns").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["eblcio_a_ratio", "eblcio_b_total", "eblcio_c_ns"]);
        assert!(matches!(snap[1].value, MetricValue::Counter(7)));
    }

    #[test]
    fn register_existing_handle() {
        let r = MetricsRegistry::new();
        let mine = Arc::new(Counter::new());
        mine.add(5);
        let reg = r.register_counter("eblcio_test_shared_total", mine.clone());
        assert_eq!(reg.get(), 5);
        mine.inc();
        match &r.snapshot()[0].value {
            MetricValue::Counter(v) => assert_eq!(*v, 6),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
