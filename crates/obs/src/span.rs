//! Spans, per-request ids, and the shared timing helpers
//! ([`Stopwatch`], [`Timed`]) that replace the five hand-rolled
//! `Instant::now()` / atomic-nanos idioms scattered across the stack.
//!
//! A span is a scope guard: [`crate::span`] starts the clock, and the
//! guard's drop records one event — interned name, per-request id,
//! start offset, duration — into the global
//! [flight recorder](crate::recorder). Spans carry causality through
//! layers with a **thread-ambient request id**: a root span
//! ([`crate::root_span`]) allocates a fresh id and installs it for its
//! scope, and every child span opened on the same thread inherits it,
//! so a flight-recorder dump groups `serve.read_region` with the
//! `store.decode` and `storage.get` work it caused. (Work handed to a
//! pool thread does not inherit the ambient id automatically — the
//! fan-out sites pass it explicitly via [`SpanGuard`]'s `*_on`
//! constructors.)
//!
//! Everything is allocation-free after the name is interned once:
//! hot paths pre-intern their [`NameId`]s at construction and open
//! spans by id.

use crate::recorder;
use parking_lot::RwLock;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// An interned span-name handle — a dense index into the global name
/// table, cheap to copy and to store in atomic flight-recorder slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NameId(pub(crate) u32);

fn names() -> &'static RwLock<Vec<String>> {
    static NAMES: OnceLock<RwLock<Vec<String>>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(Vec::new()))
}

/// Interns `name`, returning a stable [`NameId`]. Call once per site
/// (construction time), not per event — the lookup takes a read lock.
pub fn intern(name: &str) -> NameId {
    {
        let table = names().read();
        if let Some(pos) = table.iter().position(|n| n == name) {
            return NameId(pos as u32);
        }
    }
    let mut table = names().write();
    if let Some(pos) = table.iter().position(|n| n == name) {
        return NameId(pos as u32);
    }
    table.push(name.to_owned());
    NameId((table.len() - 1) as u32)
}

/// The name behind an id (empty string for an id from another process
/// or a corrupted slot — never a panic).
pub fn name_of(id: NameId) -> String {
    names()
        .read()
        .get(id.0 as usize)
        .cloned()
        .unwrap_or_default()
}

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    /// The request id ambient on this thread (0 = outside any root
    /// span).
    static AMBIENT_REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Allocates a fresh process-unique request id (root spans do this
/// automatically).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed)
}

/// The request id ambient on the current thread (0 when no root span
/// is open here).
pub fn current_request_id() -> u64 {
    AMBIENT_REQUEST.with(Cell::get)
}

/// A live span: started at construction, recorded to the flight
/// recorder on drop. Obtain via [`crate::span`]/[`crate::root_span`]
/// (by name) or [`SpanGuard::enter`]/[`SpanGuard::enter_root`]/
/// [`SpanGuard::enter_on`] (by pre-interned id, allocation-free).
#[derive(Debug)]
pub struct SpanGuard {
    name: NameId,
    request: u64,
    start: Instant,
    /// `Some(previous)` when this span installed the ambient request id
    /// and must restore it (root spans only).
    restore: Option<u64>,
}

impl SpanGuard {
    /// Opens a child span under the thread's ambient request id.
    pub fn enter(name: NameId) -> Self {
        Self {
            name,
            request: current_request_id(),
            start: Instant::now(),
            restore: None,
        }
    }

    /// Opens a root span: allocates a fresh request id and makes it
    /// ambient on this thread until the guard drops.
    pub fn enter_root(name: NameId) -> Self {
        Self::enter_root_at(name, Instant::now())
    }

    /// [`SpanGuard::enter`] anchored to an already-taken `start` — the
    /// hot-path variant for call sites that just started a
    /// [`Stopwatch`], sparing the span its own clock read.
    pub fn enter_at(name: NameId, start: Instant) -> Self {
        Self {
            name,
            request: current_request_id(),
            start,
            restore: None,
        }
    }

    /// [`SpanGuard::enter_root`] anchored to an already-taken `start`.
    pub fn enter_root_at(name: NameId, start: Instant) -> Self {
        let request = next_request_id();
        let prev = AMBIENT_REQUEST.with(|c| c.replace(request));
        Self {
            name,
            request,
            start,
            restore: Some(prev),
        }
    }

    /// Opens a child span under an explicit request id — for work
    /// fanned out to pool threads that cannot inherit the ambient id.
    pub fn enter_on(name: NameId, request: u64) -> Self {
        Self {
            name,
            request,
            start: Instant::now(),
            restore: None,
        }
    }

    /// The request id this span records under.
    pub fn request_id(&self) -> u64 {
        self.request
    }

    /// Nanoseconds since the span opened.
    pub fn elapsed_ns(&self) -> u64 {
        saturating_ns(self.start.elapsed())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = saturating_ns(self.start.elapsed());
        recorder::global().record(self.name, self.request, self.start, dur);
        if let Some(prev) = self.restore {
            AMBIENT_REQUEST.with(|c| c.set(prev));
        }
    }
}

#[inline]
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The one way this workspace measures elapsed time: start it, read
/// nanoseconds. Replaces the per-call-site
/// `let t0 = Instant::now(); ... t0.elapsed().as_nanos() as u64`
/// idiom (clamped at `u64::MAX` instead of silently truncated).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock.
    #[inline]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// The instant the clock started — lets a span share this
    /// stopwatch's clock read ([`SpanGuard::enter_at`]).
    #[inline]
    pub fn started_at(&self) -> Instant {
        self.0
    }

    /// Nanoseconds since start.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        saturating_ns(self.0.elapsed())
    }

    /// Seconds since start.
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// The underlying [`Duration`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// A scope guard that records its lifetime, in nanoseconds, into a
/// [`Histogram`](crate::Histogram) on drop — the zero-boilerplate way
/// to time a block:
///
/// ```
/// let h = std::sync::Arc::new(eblcio_obs::Histogram::new());
/// {
///     let _t = eblcio_obs::Timed::new(&h);
///     std::hint::black_box(40 + 2);
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct Timed<'a> {
    hist: &'a crate::Histogram,
    sw: Stopwatch,
}

impl<'a> Timed<'a> {
    /// Starts timing into `hist`.
    #[inline]
    pub fn new(hist: &'a crate::Histogram) -> Self {
        Self { hist, sw: Stopwatch::start() }
    }
}

impl Drop for Timed<'_> {
    fn drop(&mut self) {
        self.hist.record(self.sw.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_reversible() {
        let a = intern("test.alpha");
        let b = intern("test.beta");
        assert_ne!(a, b);
        assert_eq!(intern("test.alpha"), a);
        assert_eq!(name_of(a), "test.alpha");
        assert_eq!(name_of(NameId(u32::MAX)), "");
    }

    #[test]
    fn root_span_installs_and_restores_request_id() {
        assert_eq!(current_request_id(), 0);
        let outer = SpanGuard::enter_root(intern("test.outer"));
        let outer_id = outer.request_id();
        assert!(outer_id > 0);
        assert_eq!(current_request_id(), outer_id);
        {
            let inner = SpanGuard::enter(intern("test.inner"));
            assert_eq!(inner.request_id(), outer_id);
        }
        assert_eq!(current_request_id(), outer_id);
        drop(outer);
        assert_eq!(current_request_id(), 0);
    }

    #[test]
    fn stopwatch_and_timed_record_monotonic_time() {
        let sw = Stopwatch::start();
        let h = crate::Histogram::new();
        {
            let _t = Timed::new(&h);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(sw.elapsed_ns() >= 1_000_000);
        assert_eq!(h.count(), 1);
        assert!(h.snapshot().max() >= 1_000_000);
    }
}
