//! `eblcio_obs` — the unified telemetry substrate for the eblcio
//! stack: one metrics registry, log-linear latency/size histograms,
//! spans with per-request causality, and a lock-free flight recorder,
//! all dependency-free (std + the vendored `parking_lot` stub) and
//! allocation-free on every hot path.
//!
//! Before this crate each layer kept its own ad-hoc totals
//! (`ReaderStats`, `ObjectStoreStats`, …) with no distributions, no
//! cross-layer causality, and no machine-readable export. Now:
//!
//! * **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]) — handles are resolved once at construction and
//!   the hot path pays one relaxed atomic op per event. Histograms are
//!   HDR-style log-linear buckets: mergeable across threads, ≤ 6.25%
//!   relative bucket error on p50/p90/p99, exact min/max.
//! * **Spans** ([`span`], [`root_span`], [`SpanGuard`]) — scope guards
//!   that stamp events with a per-request id carried thread-ambiently
//!   from serve through store/codec down to storage.
//! * **Flight recorder** ([`FlightRecorder`]) — a fixed-capacity
//!   lock-free ring of recent span events, dumpable on demand.
//! * **Exporters** ([`prometheus`], [`events_jsonl`], [`report`]) —
//!   all render to `String`; persistence goes through the sanctioned
//!   `core::dump`/`Storage` sinks, never through this crate.
//!
//! Span/recorder capture is **off** unless [`enabled`] says otherwise
//! (env `EBLCIO_METRICS=1` or a programmatic [`set_enabled`]); metric
//! counters and histograms always record, because the per-layer stats
//! views are built on them. Layer-owned registries (one per
//! `ArrayReader`, one per simulated object store) keep multi-instance
//! accounting honest; cross-cutting singletons (codec stages, store
//! timings, metered storage by default) report into [`global`].
//!
//! Metric names follow `eblcio_<layer>_<name>_<unit>` — see the
//! README's Observability section for the full scheme.

#![forbid(unsafe_code)]

mod export;
mod hist;
mod metrics;
mod recorder;
mod span;

pub use export::{events_jsonl, prometheus, report};
pub use hist::{bucket_hi, bucket_index, bucket_lo, Histogram, HistogramSnapshot, BUCKETS, SUBBUCKETS};
pub use metrics::{Counter, Gauge, Metric, MetricSnapshot, MetricValue, MetricsRegistry};
pub use recorder::{FlightRecorder, SpanEvent, DEFAULT_CAPACITY};
pub use span::{current_request_id, intern, name_of, next_request_id, NameId, SpanGuard, Stopwatch, Timed};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The process-wide registry for cross-cutting metrics (codec stages,
/// store timings, metered storage without an explicit registry).
/// Arc-backed so decorators that hold a shareable registry handle can
/// adopt the global one.
pub fn global() -> &'static std::sync::Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<std::sync::Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| std::sync::Arc::new(MetricsRegistry::new()))
}

/// The process-wide flight recorder (every span reports here).
pub fn flight_recorder() -> &'static FlightRecorder {
    recorder::global()
}

/// 0 = follow the environment, 1 = forced off, 2 = forced on.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("EBLCIO_METRICS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// Whether span/flight-recorder capture (and the CLI/bench telemetry
/// surfaces) are on: `EBLCIO_METRICS=1` in the environment, unless
/// overridden by [`set_enabled`]. Metric counters/histograms record
/// regardless — this flag only gates the optional capture paths.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Programmatically forces telemetry capture on or off, overriding the
/// environment — benches use this to compare both sides in one
/// process.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Opens a child span under the current thread's ambient request id.
/// Returns `None` (and records nothing, at the cost of one relaxed
/// load) when telemetry is disabled — bind the result to a `_guard`
/// either way:
///
/// ```
/// eblcio_obs::set_enabled(true);
/// {
///     let _guard = eblcio_obs::span("doc.example");
/// }
/// assert!(eblcio_obs::flight_recorder().recorded() >= 1);
/// ```
///
/// Hot paths should pre-intern with [`intern`] and use [`span_id`].
pub fn span(name: &str) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter(intern(name)))
}

/// Opens a root span: allocates a fresh request id, ambient on this
/// thread for the guard's scope, under which child [`span`]s nest.
pub fn root_span(name: &str) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter_root(intern(name)))
}

/// [`span`] by pre-interned id — allocation-free.
#[inline]
pub fn span_id(name: NameId) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter(name))
}

/// [`root_span`] by pre-interned id — allocation-free.
#[inline]
pub fn root_span_id(name: NameId) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter_root(name))
}

/// [`span_id`] anchored to an already-running [`Stopwatch`] — the span
/// shares the stopwatch's clock read instead of taking its own.
#[inline]
pub fn span_id_from(name: NameId, sw: Stopwatch) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter_at(name, sw.started_at()))
}

/// [`root_span_id`] anchored to an already-running [`Stopwatch`].
#[inline]
pub fn root_span_id_from(name: NameId, sw: Stopwatch) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter_root_at(name, sw.started_at()))
}

/// A child span under an explicit request id — for work fanned out to
/// pool threads where the ambient id does not follow.
#[inline]
pub fn span_on(name: NameId, request: u64) -> Option<SpanGuard> {
    enabled().then(|| SpanGuard::enter_on(name, request))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _g = span("lib.off");
            let _r = root_span("lib.off.root");
        }
        // Other tests share the global recorder, so assert on our own
        // names rather than the global event count.
        assert!(flight_recorder()
            .events()
            .iter()
            .all(|e| !e.span.starts_with("lib.off")));
        set_enabled(true);
        let before = flight_recorder().recorded();
        {
            let _g = root_span("lib.on");
        }
        assert!(flight_recorder().recorded() > before);
        set_enabled(false);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("eblcio_test_lib_total");
        c.inc();
        assert_eq!(global().counter("eblcio_test_lib_total").get(), 1);
    }
}
