//! Exporters: Prometheus text exposition, JSON-lines event dumps, and
//! the human [`report`] table.
//!
//! Everything here renders to a `String` — this crate never touches
//! the filesystem. Persisting an exposition goes through the sanctioned
//! sinks (`eblcio_core::dump` or a [`Storage`] backend), which is what
//! keeps the `eblcio-analyze` `storage-boundary` rule clean with the
//! telemetry layer in the tree.

use crate::hist::HistogramSnapshot;
use crate::metrics::{MetricSnapshot, MetricValue, MetricsRegistry};
use crate::recorder::FlightRecorder;
use std::fmt::Write as _;

/// Renders a registry snapshot in the Prometheus text exposition
/// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
/// histograms as `histogram` with cumulative `_bucket{le="…"}` series
/// over the non-empty buckets plus `+Inf`, `_sum`, and `_count`.
pub fn prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for MetricSnapshot { name, value } in registry.snapshot() {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                for (le, cum) in h.cumulative_buckets() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Renders the flight recorder's retained events as JSON lines, oldest
/// first: one `{"span":…,"request":…,"start_ns":…,"dur_ns":…}` object
/// per line.
pub fn events_jsonl(recorder: &FlightRecorder) -> String {
    let mut out = String::new();
    for e in recorder.events() {
        let _ = writeln!(
            out,
            "{{\"span\":\"{}\",\"request\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            escape_json(&e.span),
            e.request,
            e.start_ns,
            e.duration_ns,
        );
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Scales a nanosecond value to a human unit.
fn human_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}µs", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The percentile row every human-facing surface prints: count, p50,
/// p90, p99, max, mean — formatted as latencies when the metric name
/// ends in `_ns`, raw integers otherwise.
fn hist_row(name: &str, h: &HistogramSnapshot) -> [String; 6] {
    let fmt = |v: u64| {
        if name.ends_with("_ns") {
            human_ns(v)
        } else {
            v.to_string()
        }
    };
    [
        h.count.to_string(),
        fmt(h.value_at_quantile(0.5)),
        fmt(h.value_at_quantile(0.9)),
        fmt(h.value_at_quantile(0.99)),
        fmt(h.max()),
        if name.ends_with("_ns") {
            human_ns(h.mean() as u64)
        } else {
            format!("{:.1}", h.mean())
        },
    ]
}

/// Renders a registry as an aligned human-readable table: one line per
/// counter/gauge, one percentile row per histogram.
pub fn report(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut rows: Vec<Vec<String>> = vec![vec![
        "metric".into(),
        "count".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "max".into(),
        "mean".into(),
    ]];
    for MetricSnapshot { name, value } in snap {
        match value {
            MetricValue::Counter(v) => {
                rows.push(vec![name, v.to_string(), String::new(), String::new(), String::new(), String::new(), String::new()]);
            }
            MetricValue::Gauge(v) => {
                rows.push(vec![name, format!("{v:.6}"), String::new(), String::new(), String::new(), String::new(), String::new()]);
            }
            MetricValue::Histogram(h) => {
                let [count, p50, p90, p99, max, mean] = hist_row(&name, &h);
                rows.push(vec![name, count, p50, p90, p99, max, mean]);
            }
        }
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for row in &rows {
        let mut line = String::new();
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            if i == 0 {
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
            } else {
                line.extend(std::iter::repeat_n(' ', pad));
                line.push_str(cell);
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use crate::span::intern;
    use std::time::Instant;

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let r = MetricsRegistry::new();
        r.counter("eblcio_test_requests_total").add(3);
        r.gauge("eblcio_test_cost_usd").set(0.125);
        let h = r.histogram("eblcio_test_latency_ns");
        h.record(500);
        h.record(1500);
        let text = prometheus(&r);
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                assert!(
                    name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad metric name {name:?}"
                );
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{kind}");
                assert!(parts.next().is_none());
            }
        }
        assert!(text.contains("eblcio_test_requests_total 3"));
        assert!(text.contains("eblcio_test_cost_usd 0.125"));
        assert!(text.contains("eblcio_test_latency_ns_count 2"));
        assert!(text.contains("eblcio_test_latency_ns_sum 2000"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn jsonl_escapes_and_lines_up() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(intern("a\"b"), 7, Instant::now(), 42);
        let text = events_jsonl(&rec);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"span\":\"a\\\"b\""));
        assert!(text.contains("\"request\":7"));
        assert!(text.contains("\"dur_ns\":42"));
    }

    #[test]
    fn report_renders_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter("eblcio_test_ops_total").add(9);
        r.histogram("eblcio_test_wait_ns").record(2_000_000);
        let table = report(&r);
        assert!(table.contains("eblcio_test_ops_total"));
        assert!(table.contains("9"));
        assert!(table.contains("ms"), "{table}");
    }
}
