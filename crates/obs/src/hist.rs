//! [`Histogram`]: a lock-free log-linear-bucket histogram in the
//! HDR-histogram family, sized for latencies (nanoseconds) and byte
//! counts.
//!
//! The bucket layout is the classic log-linear compromise: values below
//! [`SUBBUCKETS`] get one bucket each (exact), and every power-of-two
//! range above that is split into [`SUBBUCKETS`] linear sub-buckets, so
//! the relative width of any bucket is at most `1/SUBBUCKETS` (6.25%).
//! That bounds every reported percentile to within one bucket of the
//! true order statistic — precise enough to tell a 1.0 ms p99 from a
//! 1.1 ms p99 — while the whole `u64` range fits in [`BUCKETS`] slots
//! and recording is branch-light integer arithmetic plus one relaxed
//! `fetch_add`.
//!
//! Every mutator takes `&self` and touches only atomics, so one
//! histogram can be shared by any number of recording threads with no
//! lock; [`Histogram::merge_from`] additionally folds whole histograms
//! together (shard-per-thread then merge, if contention ever warrants
//! it). Readers take [`Histogram::snapshot`] — a plain-`u64` copy that
//! supports percentiles, deltas between two snapshots (per-phase
//! percentiles without resetting the live histogram), and exposition.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range (and the count of exact
/// one-value buckets at the bottom). 16 sub-buckets bound the relative
/// bucket width at 6.25%.
pub const SUBBUCKETS: usize = 16;

/// Number of low bits that index within one power-of-two range.
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Total bucket count covering the full `u64` value range: the exact
/// linear prefix plus `SUBBUCKETS` buckets for each exponent from
/// `SUB_BITS` to 63.
pub const BUCKETS: usize = SUBBUCKETS + SUBBUCKETS * (64 - SUB_BITS as usize);

/// Bucket index for a recorded value (total order, saturating only in
/// the sense that the top bucket's upper bound is `u64::MAX`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        v as usize
    } else {
        // `v >= SUBBUCKETS` so the leading-zero count is at most
        // `63 - SUB_BITS` and the shift below never underflows.
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
        SUBBUCKETS + ((exp - SUB_BITS) as usize) * SUBBUCKETS + sub
    }
}

/// Smallest value mapping to bucket `idx`.
#[inline]
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < SUBBUCKETS {
        idx as u64
    } else {
        let group = (idx - SUBBUCKETS) / SUBBUCKETS;
        let sub = ((idx - SUBBUCKETS) % SUBBUCKETS) as u64;
        (SUBBUCKETS as u64 + sub) << group
    }
}

/// Largest value mapping to bucket `idx` (the top bucket ends at
/// `u64::MAX`).
#[inline]
pub fn bucket_hi(idx: usize) -> u64 {
    if idx < SUBBUCKETS {
        idx as u64
    } else {
        let group = (idx - SUBBUCKETS) / SUBBUCKETS;
        bucket_lo(idx) + ((1u64 << group) - 1)
    }
}

/// A concurrent log-linear histogram, documented in this file's module comment.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("min", &s.min())
            .field("max", &s.max())
            .finish()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: one relaxed `fetch_add` on the bucket plus
    /// the count/sum/min/max upkeep — no locks, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // Count last: a reader that loads `count` first then `sum` sees
        // a sum covering at least `count` records (see `snapshot`).
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Records `n` occurrences of one value in O(1) (merge helper).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Release);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Sum of all recorded values (wrapping at `u64::MAX`, which a
    /// nanosecond total reaches after ~584 years of busy time).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds every record of `other` into `self`. Merging is bucket
    /// addition, so it is associative and commutative up to min/max,
    /// which fold exactly.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Acquire), Ordering::Release);
    }

    /// Copies the current state into a plain snapshot.
    ///
    /// Load order is fixed and documented so derived views stay sane
    /// under concurrency: `count` is loaded first (acquire, recorded
    /// last by writers), then buckets/sum/min/max — so the snapshot's
    /// aggregates cover at least `count` records and percentile walks
    /// stop after `count` entries even while writers keep recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Value at quantile `q` of the live histogram — see
    /// [`HistogramSnapshot::value_at_quantile`].
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        self.snapshot().value_at_quantile(q)
    }

    /// Sets every bucket and aggregate back to zero. Not atomic as a
    /// whole: values recorded concurrently with a reset may be kept or
    /// dropped per-field (bench phases prefer snapshot deltas —
    /// [`HistogramSnapshot::delta_from`] — over resets for exactly
    /// that reason).
    pub fn reset(&self) {
        // Count first (inverse of `record`'s order): a concurrent
        // percentile walk sees count = 0 before buckets drain, so it
        // terminates immediately instead of reading half-cleared
        // buckets as a plausible distribution.
        self.count.store(0, Ordering::Release);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`] — plain integers, cheap to
/// diff and query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, [`BUCKETS`] entries.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`HistogramSnapshot::delta_from`]).
    pub fn empty() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: vec![0; BUCKETS] }
    }

    /// Smallest recorded value, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank value at quantile `q ∈ [0, 1]`: the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` record, clamped to the
    /// recorded maximum. Values below [`SUBBUCKETS`] are exact; above
    /// that the result is within one sub-bucket (≤ 6.25% relative) of
    /// the true order statistic.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                return bucket_hi(idx).min(self.max);
            }
        }
        self.max
    }

    /// The records added between `earlier` and `self` — per-phase
    /// percentiles without resetting the live histogram. Counts
    /// subtract saturating, so a torn pair degrades to smaller deltas,
    /// never underflow; min/max are the later snapshot's (the interval
    /// extremes are not recoverable from totals).
    pub fn delta_from(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Cumulative `(upper_bound, count_at_or_below)` pairs for every
    /// non-empty bucket — the Prometheus histogram exposition shape
    /// (the `+Inf` bucket is the caller's `count`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                cum = cum.saturating_add(n);
                out.push((bucket_hi(idx), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotonic_and_self_inverse() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1023,
            1024,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            assert!(bucket_lo(idx) <= v && v <= bucket_hi(idx), "{v} outside bucket {idx}");
            if let Some(prev) = last {
                assert!(idx >= prev, "bucket order broke at {v}");
            }
            last = Some(idx);
        }
        // Buckets tile the range: each hi + 1 == next lo.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(idx).wrapping_add(1), bucket_lo(idx + 1), "gap after {idx}");
        }
        assert_eq!(bucket_hi(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUBBUCKETS as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for p in 1..=SUBBUCKETS {
            let q = p as f64 / SUBBUCKETS as f64;
            assert_eq!(s.value_at_quantile(q), p as u64 - 1);
        }
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 15);
        assert_eq!(s.sum, (0..16).sum::<u64>());
    }

    #[test]
    fn quantiles_track_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        let s = h.snapshot();
        let p50 = s.value_at_quantile(0.5);
        let p99 = s.value_at_quantile(0.99);
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.07, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.07, "{p99}");
        assert_eq!(s.value_at_quantile(1.0), 1_000_000);
        assert_eq!(s.max(), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 99, 1_000_000, 17, 42, 8_000_000_000] {
            all.record(v);
        }
        for v in [3u64, 99, 1_000_000] {
            a.record(v);
        }
        for v in [17u64, 42, 8_000_000_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn delta_isolates_a_phase() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        for _ in 0..100 {
            h.record(5000);
        }
        let phase = h.snapshot().delta_from(&before);
        assert_eq!(phase.count, 100);
        let p50 = phase.value_at_quantile(0.5);
        assert!(bucket_index(p50) == bucket_index(5000), "{p50}");
    }

    #[test]
    fn empty_histogram_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.value_at_quantile(0.99), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }
}
