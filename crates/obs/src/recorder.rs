//! [`FlightRecorder`]: a fixed-capacity, lock-free ring of the most
//! recent span events, dumpable on demand for postmortems.
//!
//! Writers claim a slot with one `fetch_add` on the head and publish
//! the event through a seqlock-style stamp: the slot's sequence word
//! goes **odd** while the fields are being stored and **even** (equal
//! to the claiming ticket) when stable. Readers sample the sequence
//! before and after copying the fields and keep the event only when
//! both samples are the same even stamp — a torn slot (a writer lapped
//! the reader) is simply skipped. No locks, no allocation on the
//! record path, and no `unsafe`: every field is its own atomic.
//!
//! The ring keeps the last [`FlightRecorder::capacity`] events;
//! recording the `n+1`-th overwrites the oldest. That bounded-memory
//! "what just happened" property is the whole point — leave it running
//! forever, dump it after the incident.

use crate::span::{name_of, NameId};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Events kept by the global recorder.
pub const DEFAULT_CAPACITY: usize = 1024;

struct Slot {
    /// Seqlock stamp: `2·ticket + 1` while writing, `2·ticket + 2`
    /// once the fields below are stable, 0 = never written.
    seq: AtomicU64,
    name: AtomicU32,
    request: AtomicU64,
    start_ns: AtomicU64,
    duration_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            name: AtomicU32::new(0),
            request: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            duration_ns: AtomicU64::new(0),
        }
    }
}

/// One recorded span occurrence, resolved to its name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Interned span name, resolved.
    pub span: String,
    /// Request id the span ran under (0 = outside any root span).
    pub request: u64,
    /// Span start, nanoseconds since the recorder's epoch (its
    /// construction).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

/// The ring buffer, documented in this file's module comment.
pub struct FlightRecorder {
    epoch: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (rounded up to a
    /// power of two, minimum 2, so slot selection is a mask).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            epoch: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::empty()).collect(),
        }
    }

    /// Number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event. Lock-free and allocation-free. When a writer
    /// laps the ring so fast that another writer is still mid-store on
    /// the claimed slot, the newcomer drops its event instead of
    /// interleaving with the owner — readers therefore only ever see
    /// whole events, and a recorder under overrun degrades by losing
    /// events, never by corrupting them.
    pub fn record(&self, name: NameId, request: u64, start: Instant, duration_ns: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        let prev = slot.seq.load(Ordering::Relaxed);
        if prev % 2 == 1 {
            return; // owner mid-write: we lapped a full ring
        }
        if slot
            .seq
            .compare_exchange(prev, 2 * ticket + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return; // lost the claim race to another lapping writer
        }
        let start_ns = u64::try_from(
            start
                .saturating_duration_since(self.epoch)
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        slot.name.store(name.0, Ordering::Relaxed);
        slot.request.store(request, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.duration_ns.store(duration_ns, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Copies out every stable retained event, oldest first. Slots
    /// being overwritten while we read (torn stamps) are skipped.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let name = NameId(slot.name.load(Ordering::Relaxed));
            let request = slot.request.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let duration_ns = slot.duration_ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            out.push((
                before,
                SpanEvent { span: name_of(name), request, start_ns, duration_ns },
            ));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, e)| e).collect()
    }
}

/// The process-wide recorder every [`SpanGuard`](crate::SpanGuard)
/// reports into, sized [`DEFAULT_CAPACITY`].
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::intern;

    #[test]
    fn records_and_replays_in_order() {
        let r = FlightRecorder::with_capacity(8);
        let t0 = Instant::now();
        let a = intern("rec.a");
        let b = intern("rec.b");
        r.record(a, 1, t0, 100);
        r.record(b, 1, t0, 200);
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].span, "rec.a");
        assert_eq!(ev[1].span, "rec.b");
        assert_eq!(ev[1].duration_ns, 200);
    }

    #[test]
    fn ring_keeps_only_the_most_recent() {
        let r = FlightRecorder::with_capacity(4);
        let t0 = Instant::now();
        let n = intern("rec.wrap");
        for i in 0..10u64 {
            r.record(n, i, t0, i);
        }
        let ev = r.events();
        assert_eq!(ev.len(), 4);
        let requests: Vec<u64> = ev.iter().map(|e| e.request).collect();
        assert_eq!(requests, [6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let n = intern("rec.mt");
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    r.record(n, t, t0, t * 10_000 + i);
                }
            }));
        }
        let mut seen_any = false;
        for _ in 0..50 {
            for e in r.events() {
                seen_any = true;
                // A torn event would pair a request with another
                // thread's duration; stable events always agree.
                assert_eq!(e.duration_ns / 10_000, e.request, "{e:?}");
            }
        }
        for h in handles {
            h.join().ok();
        }
        // The concurrent passes above can race an empty ring if the
        // writer threads are slow to schedule; after join the retained
        // slots are all stable, so this pass always observes events.
        for e in r.events() {
            seen_any = true;
            assert_eq!(e.duration_ns / 10_000, e.request, "{e:?}");
        }
        assert!(seen_any);
        assert_eq!(r.recorded(), 4000);
    }
}
