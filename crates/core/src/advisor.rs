//! The "to compress or not to compress" advisor (§VII's actionable
//! takeaway, built on §III).
//!
//! Given a data set, an I/O tool, a PFS, a platform, and a quality floor,
//! the advisor sweeps codec chains × error bounds, evaluates Eqs. 3–5
//! for each cell, and recommends the best beneficial configuration
//! (maximum energy saving by default). Since the chain refactor the
//! sweep space is open: the paper's five presets by default, any
//! [`ChainSpec`] (custom lossless backends, stacked filters) on demand.

use crate::campaign::CampaignRunner;
use crate::conditions::{BenefitInputs, Decision};
use eblcio_codec::{ChainSpec, CodecError, ErrorBound};
use eblcio_data::Dataset;
use eblcio_energy::CpuGeneration;
use eblcio_pfs::{IoToolKind, PfsSim};
use serde::Serialize;

/// One evaluated configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Recommendation {
    /// Codec chain.
    pub chain: ChainSpec,
    /// Value-range relative bound ε.
    pub epsilon: f64,
    /// Achieved compression ratio.
    pub cr: f64,
    /// Achieved PSNR (dB).
    pub psnr_db: f64,
    /// Eq. 3–5 inputs for transparency.
    pub inputs: BenefitInputs,
    /// The decision for this cell.
    pub decision: Decision,
}

impl Recommendation {
    /// Net energy saving of this configuration.
    pub fn energy_saving(&self) -> f64 {
        self.inputs.energy_saving().value()
    }
}

/// Advisor configuration.
#[derive(Clone, Debug)]
pub struct Advisor {
    /// Codec chains to consider.
    pub chains: Vec<ChainSpec>,
    /// Relative bounds to sweep (paper: 1e-5…1e-1).
    pub epsilons: Vec<f64>,
    /// Application quality floor (Eq. 5's PSNR_min).
    pub psnr_min_db: f64,
    /// Concurrent writers assumed for the write phases.
    pub writers: u32,
    /// Measurement protocol.
    pub runner: CampaignRunner,
}

impl Advisor {
    /// The paper's sweep: all five preset chains × ε ∈ {1e-1 … 1e-5}.
    pub fn paper_sweep(psnr_min_db: f64) -> Self {
        Self {
            chains: ChainSpec::presets(),
            epsilons: vec![1e-1, 1e-2, 1e-3, 1e-4, 1e-5],
            psnr_min_db,
            writers: 1,
            runner: CampaignRunner::quick(),
        }
    }

    /// Evaluates every configuration, returning all cells (sorted by
    /// energy saving, best first).
    pub fn evaluate_all(
        &self,
        data: &Dataset,
        tool: IoToolKind,
        pfs: &PfsSim,
        generation: CpuGeneration,
    ) -> Result<Vec<Recommendation>, CodecError> {
        // Baseline: writing the original data.
        let original_bytes = match data {
            Dataset::F32(a) => a.to_le_bytes(),
            Dataset::F64(a) => a.to_le_bytes(),
        };
        let baseline = self.runner.measure_write(
            original_bytes,
            "original",
            tool,
            pfs,
            generation,
            self.writers,
        );

        let mut out = Vec::new();
        for chain in &self.chains {
            let codec = chain.build_boxed()?;
            for &eps in &self.epsilons {
                let cell = self.runner.measure_cell(
                    data,
                    codec.as_ref(),
                    ErrorBound::Relative(eps),
                    generation,
                    1,
                )?;
                let write = self.runner.measure_write(
                    cell.stream.clone(),
                    "compressed",
                    tool,
                    pfs,
                    generation,
                    self.writers,
                );
                let inputs = BenefitInputs {
                    compress_time: cell.compress_seconds,
                    write_time_compressed: write.seconds,
                    write_time_original: baseline.seconds,
                    compress_energy: cell.compress_joules,
                    write_energy_compressed: write.joules,
                    write_energy_original: baseline.joules,
                    psnr_db: cell.quality.psnr_db,
                    psnr_min_db: self.psnr_min_db,
                };
                out.push(Recommendation {
                    chain: chain.clone(),
                    epsilon: eps,
                    cr: cell.cr(),
                    psnr_db: cell.quality.psnr_db,
                    decision: inputs.evaluate().decision(),
                    inputs,
                });
            }
        }
        out.sort_by(|a, b| b.energy_saving().total_cmp(&a.energy_saving()));
        Ok(out)
    }

    /// The best beneficial configuration, if any exists.
    pub fn recommend(
        &self,
        data: &Dataset,
        tool: IoToolKind,
        pfs: &PfsSim,
        generation: CpuGeneration,
    ) -> Result<Option<Recommendation>, CodecError> {
        Ok(self
            .evaluate_all(data, tool, pfs, generation)?
            .into_iter()
            .find(|r| r.decision == Decision::Compress))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_codec::CompressorId;
    use eblcio_data::generators::Scale;
    use eblcio_data::{DatasetKind, DatasetSpec};

    fn advisor() -> Advisor {
        Advisor {
            chains: vec![
                ChainSpec::preset(CompressorId::Szx),
                ChainSpec::preset(CompressorId::Sz3),
            ],
            epsilons: vec![1e-2, 1e-3],
            psnr_min_db: 40.0,
            writers: 1,
            runner: CampaignRunner {
                min_runs: 1,
                max_runs: 2,
                ci_tol: 0.5,
            },
        }
    }

    #[test]
    fn recommends_compression_for_large_smooth_data() {
        // NYX written through a bandwidth-starved PFS share: compression
        // must win on energy (the paper's headline result). A slow share
        // keeps the debug-build codec/IO speed ratio representative of
        // the paper's fast-C-codec / contended-Lustre ratio.
        let data = DatasetSpec::new(DatasetKind::Nyx, Scale::Tiny).generate();
        let pfs = PfsSim::new(1, 0.002);
        let rec = advisor()
            .recommend(&data, IoToolKind::Hdf5Lite, &pfs, CpuGeneration::Skylake8160)
            .unwrap();
        let rec = rec.expect("compression should be beneficial");
        assert!(rec.cr > 2.0);
        assert!(rec.psnr_db >= 40.0);
        assert_eq!(rec.inputs.evaluate().decision(), Decision::Compress);
    }

    #[test]
    fn decision_consistency_invariant() {
        // Decision::Compress ⇔ all three conditions hold, for every cell.
        let data = DatasetSpec::new(DatasetKind::Cesm, Scale::Tiny).generate();
        let pfs = PfsSim::testbed();
        let cells = advisor()
            .evaluate_all(&data, IoToolKind::NetCdfLite, &pfs, CpuGeneration::Skylake8160)
            .unwrap();
        assert!(!cells.is_empty());
        for c in &cells {
            let v = c.inputs.evaluate();
            let expect = v.time_ok && v.energy_ok && v.quality_ok;
            assert_eq!(c.decision == Decision::Compress, expect);
        }
    }

    #[test]
    fn impossible_quality_floor_rejects_everything() {
        let data = DatasetSpec::new(DatasetKind::Hacc, Scale::Tiny).generate();
        let pfs = PfsSim::testbed();
        let mut a = advisor();
        a.psnr_min_db = 1e9;
        let rec = a
            .recommend(&data, IoToolKind::Hdf5Lite, &pfs, CpuGeneration::Skylake8160)
            .unwrap();
        assert!(rec.is_none());
    }
}
