//! §VII storage-fleet extrapolation: device counts and embodied carbon.
//!
//! The paper's discussion argues that EBLC's 10–100× compression ratios
//! cut storage *device counts* by up to two orders of magnitude, and —
//! citing McAllister et al. (HotCarbon'24) — that storage devices embody
//! 80 % of an SSD rack's and 41 % of an HDD rack's total embodied
//! emissions, so the fleet-level embodied-carbon reduction lands around
//! 70–75 %. This module implements that arithmetic as a small model so
//! the claim is reproducible (and sweepable).

use serde::{Deserialize, Serialize};

/// Storage media class, with the embodied-emission split of the rack.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MediaClass {
    /// Flash rack: devices are 80 % of rack embodied emissions.
    Ssd,
    /// Disk rack: devices are 41 % of rack embodied emissions.
    Hdd,
}

impl MediaClass {
    /// Fraction of rack embodied emissions attributable to the storage
    /// devices themselves (McAllister et al., HotCarbon 2024).
    pub fn device_emission_fraction(self) -> f64 {
        match self {
            MediaClass::Ssd => 0.80,
            MediaClass::Hdd => 0.41,
        }
    }
}

/// A storage fleet sized for an uncompressed capacity requirement.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StorageFleet {
    /// Required logical capacity in bytes (uncompressed).
    pub capacity_bytes: f64,
    /// Per-device capacity in bytes.
    pub device_bytes: f64,
    /// Media class of the rack.
    pub media: MediaClass,
}

impl StorageFleet {
    /// Devices needed to hold the uncompressed data.
    pub fn devices_uncompressed(&self) -> f64 {
        (self.capacity_bytes / self.device_bytes).ceil().max(1.0)
    }

    /// Devices needed after compressing everything at ratio `cr`.
    pub fn devices_compressed(&self, cr: f64) -> f64 {
        assert!(cr >= 1.0, "compression ratio must be >= 1");
        (self.capacity_bytes / cr / self.device_bytes).ceil().max(1.0)
    }

    /// Device-count reduction factor at ratio `cr`.
    pub fn device_reduction(&self, cr: f64) -> f64 {
        self.devices_uncompressed() / self.devices_compressed(cr)
    }

    /// Fractional reduction of the rack's *total* embodied emissions
    /// when the device count shrinks by `device_reduction`:
    /// `f_dev · (1 − 1/reduction)`.
    pub fn embodied_emission_reduction(&self, cr: f64) -> f64 {
        let f = self.media.device_emission_fraction();
        f * (1.0 - 1.0 / self.device_reduction(cr))
    }
}

/// The paper's headline scenario: a mixed SSD/HDD fleet compressed at
/// two orders of magnitude. Returns `(ssd_reduction, hdd_reduction)`
/// fractions.
pub fn paper_headline_reductions(cr: f64) -> (f64, f64) {
    let base = StorageFleet {
        capacity_bytes: 100e15, // 100 PB archive
        device_bytes: 16e12,    // 16 TB devices
        media: MediaClass::Ssd,
    };
    let ssd = base.embodied_emission_reduction(cr);
    let hdd = StorageFleet {
        media: MediaClass::Hdd,
        ..base
    }
    .embodied_emission_reduction(cr);
    (ssd, hdd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(media: MediaClass) -> StorageFleet {
        StorageFleet {
            capacity_bytes: 1e15,
            device_bytes: 1e13,
            media,
        }
    }

    #[test]
    fn device_counts() {
        let f = fleet(MediaClass::Ssd);
        assert_eq!(f.devices_uncompressed(), 100.0);
        assert_eq!(f.devices_compressed(10.0), 10.0);
        assert_eq!(f.device_reduction(10.0), 10.0);
        // Cannot go below one device.
        assert_eq!(f.devices_compressed(1e6), 1.0);
    }

    #[test]
    fn paper_70_75_percent_claim() {
        // At two orders of magnitude of CR, an SSD rack's embodied
        // emissions drop by ≈ 79 % of the 80 % device share ⇒ ~0.79·0.80;
        // the paper quotes "approximately 70-75 %" for realistic SSD/HDD
        // mixes — the SSD bound must exceed 0.70.
        let (ssd, hdd) = paper_headline_reductions(100.0);
        assert!(ssd > 0.70 && ssd <= 0.80, "ssd {ssd}");
        assert!(hdd > 0.35 && hdd <= 0.41, "hdd {hdd}");
        // A 50/50 mix sits in the quoted band's neighbourhood.
        let mix = 0.5 * (ssd + hdd);
        assert!(mix > 0.55 && mix < 0.65, "mix {mix}");
    }

    #[test]
    fn reduction_monotone_in_cr() {
        let f = fleet(MediaClass::Hdd);
        let mut prev = -1.0;
        for cr in [1.0, 2.0, 10.0, 50.0, 100.0] {
            let r = f.embodied_emission_reduction(cr);
            assert!(r >= prev);
            assert!((0.0..=f.media.device_emission_fraction()).contains(&r));
            prev = r;
        }
    }

    #[test]
    #[should_panic]
    fn sub_unit_cr_rejected() {
        let _ = fleet(MediaClass::Ssd).devices_compressed(0.5);
    }
}
