//! The §III benefit conditions (Eqs. 3–5).
//!
//! Compression is beneficial for writing data set `Dᵢ` with compressor
//! `Cⱼ`, bound ε, and I/O tool `I_k` iff all three hold:
//!
//! * Eq. 3 (time):    `T_c + T_w(D′) < T_w(D)`
//! * Eq. 4 (energy):  `E_c + E_w(D′) < E_w(D)`
//! * Eq. 5 (quality): `PSNR(D, D̂) ≥ PSNR_min`

use eblcio_energy::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// Everything the three conditions consume, in the paper's notation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BenefitInputs {
    /// `T_c`: compression time.
    pub compress_time: Seconds,
    /// `T_w(D′)`: write time of the compressed stream.
    pub write_time_compressed: Seconds,
    /// `T_w(D)`: write time of the original data.
    pub write_time_original: Seconds,
    /// `E_c`: compression energy.
    pub compress_energy: Joules,
    /// `E_w(D′)`: write energy of the compressed stream.
    pub write_energy_compressed: Joules,
    /// `E_w(D)`: write energy of the original data.
    pub write_energy_original: Joules,
    /// `PSNR(Dᵢ, D̂)` of the reconstruction, in dB.
    pub psnr_db: f64,
    /// `PSNR_min`: the application's quality floor, in dB.
    pub psnr_min_db: f64,
}

/// Per-condition outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenefitVerdict {
    /// Eq. 3 satisfied.
    pub time_ok: bool,
    /// Eq. 4 satisfied.
    pub energy_ok: bool,
    /// Eq. 5 satisfied.
    pub quality_ok: bool,
}

impl BenefitVerdict {
    /// The conjunction the paper requires.
    pub fn decision(&self) -> Decision {
        if self.time_ok && self.energy_ok && self.quality_ok {
            Decision::Compress
        } else {
            Decision::WriteOriginal
        }
    }
}

/// The answer to the paper's title question for one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Compress, then write (all three conditions hold).
    Compress,
    /// Write the original data (some condition failed).
    WriteOriginal,
}

impl BenefitInputs {
    /// Evaluates Eqs. 3–5.
    pub fn evaluate(&self) -> BenefitVerdict {
        BenefitVerdict {
            time_ok: (self.compress_time + self.write_time_compressed).value()
                < self.write_time_original.value(),
            energy_ok: (self.compress_energy + self.write_energy_compressed).value()
                < self.write_energy_original.value(),
            quality_ok: self.psnr_db >= self.psnr_min_db,
        }
    }

    /// Energy saved by compressing (negative when compression loses).
    pub fn energy_saving(&self) -> Joules {
        self.write_energy_original - (self.compress_energy + self.write_energy_compressed)
    }

    /// The "weak" condition the paper notes holds almost everywhere:
    /// `E_w(D′) ≤ E_w(D)` (ignoring the compression cost itself).
    pub fn write_only_energy_ok(&self) -> bool {
        self.write_energy_compressed.value() <= self.write_energy_original.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> BenefitInputs {
        BenefitInputs {
            compress_time: Seconds(1.0),
            write_time_compressed: Seconds(0.2),
            write_time_original: Seconds(10.0),
            compress_energy: Joules(100.0),
            write_energy_compressed: Joules(20.0),
            write_energy_original: Joules(1000.0),
            psnr_db: 80.0,
            psnr_min_db: 60.0,
        }
    }

    #[test]
    fn all_conditions_met_means_compress() {
        let v = inputs().evaluate();
        assert_eq!(
            v,
            BenefitVerdict {
                time_ok: true,
                energy_ok: true,
                quality_ok: true
            }
        );
        assert_eq!(v.decision(), Decision::Compress);
    }

    #[test]
    fn each_condition_can_individually_fail() {
        let mut i = inputs();
        i.compress_time = Seconds(100.0);
        assert_eq!(i.evaluate().decision(), Decision::WriteOriginal);
        assert!(!i.evaluate().time_ok && i.evaluate().energy_ok);

        let mut i = inputs();
        i.compress_energy = Joules(5000.0);
        assert!(!i.evaluate().energy_ok && i.evaluate().time_ok);
        assert_eq!(i.evaluate().decision(), Decision::WriteOriginal);

        let mut i = inputs();
        i.psnr_db = 40.0;
        assert!(!i.evaluate().quality_ok);
        assert_eq!(i.evaluate().decision(), Decision::WriteOriginal);
    }

    #[test]
    fn boundary_cases() {
        // Strict inequalities for time/energy; ≥ for quality.
        let mut i = inputs();
        i.compress_time = Seconds(9.8);
        i.write_time_compressed = Seconds(0.2);
        assert!(!i.evaluate().time_ok, "equality must not count as better");
        let mut i = inputs();
        i.psnr_db = i.psnr_min_db;
        assert!(i.evaluate().quality_ok, "PSNR equality meets Eq. 5");
    }

    #[test]
    fn savings_and_weak_condition() {
        let i = inputs();
        assert_eq!(i.energy_saving(), Joules(880.0));
        assert!(i.write_only_energy_ok());
        let mut bad = i;
        bad.write_energy_compressed = Joules(2000.0);
        assert!(!bad.write_only_energy_ok());
        assert!(bad.energy_saving().value() < 0.0);
    }
}
