//! Measurement campaigns (§IV-C protocol).
//!
//! Every cell of every figure in the paper is "mean of up to 25 runs,
//! or until a 95 % confidence interval about the mean is achieved".
//! [`CampaignRunner`] implements that protocol around the codecs and the
//! energy meter, producing [`MeasuredCell`] rows the bench binaries
//! print.

use eblcio_codec::{compress_dataset, decompress_any, CodecError, Compressor, ErrorBound};
use eblcio_data::{metrics::QualityReport, stats::repeat_until_ci, Dataset};
use eblcio_energy::{
    measure::energy_for_wall, Activity, CpuGeneration, Joules, Seconds,
};
use eblcio_pfs::format::DataObject;
use eblcio_pfs::{tool::write_objects, IoToolKind, PfsSim};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Campaign repetition policy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignRunner {
    /// Minimum repetitions per cell.
    pub min_runs: u64,
    /// Maximum repetitions (paper: 25).
    pub max_runs: u64,
    /// Relative CI half-width target (paper: 95 % CI ⇒ we stop at 5 %).
    pub ci_tol: f64,
}

impl CampaignRunner {
    /// The paper's §IV-C protocol.
    pub fn paper() -> Self {
        Self {
            min_runs: 3,
            max_runs: 25,
            ci_tol: 0.05,
        }
    }

    /// A fast protocol for CI-friendly bench runs.
    pub fn quick() -> Self {
        Self {
            min_runs: 2,
            max_runs: 5,
            ci_tol: 0.15,
        }
    }

    /// Measures one (data set, codec, ε, CPU) cell: repeated compression
    /// and decompression with energy accounting, plus quality metrics.
    pub fn measure_cell(
        &self,
        data: &Dataset,
        codec: &dyn Compressor,
        bound: ErrorBound,
        generation: CpuGeneration,
        threads: u32,
    ) -> Result<MeasuredCell, CodecError> {
        let profile = generation.profile();
        // Threads beyond this host's parallelism cannot execute
        // concurrently, so both the run and the power model use the
        // capped count — wall time and power then plateau together,
        // which is exactly the high-thread-count plateau of Fig. 10.
        let host = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(4);
        let threads_exec = threads.clamp(1, host);
        let activity = if threads_exec <= 1 {
            Activity::serial_compute()
        } else {
            Activity::parallel_compute(threads_exec)
        };

        // One pilot run for the stream + quality numbers.
        let stream = run_compress(data, codec, bound, threads_exec)?;
        let recon = run_decompress(codec, &stream, threads_exec)?;
        let quality = quality_of(data, &recon, stream.len())?;

        // Repeated timed runs (§IV-C stopping rule) for compression.
        // The pilot run above already succeeded with these exact
        // arguments, so a failing repeat is an invariant break; the
        // closure cannot return `Result`, so the first error is parked
        // and surfaced after the loop.
        let mut repeat_err: Option<CodecError> = None;
        let mut compress_wall = eblcio_data::RunningStats::new();
        let c_stats = repeat_until_ci(self.min_runs, self.max_runs, self.ci_tol, || {
            let t0 = Instant::now();
            match run_compress(data, codec, bound, threads_exec) {
                Ok(s) => std::hint::black_box(&s.len()),
                Err(e) => {
                    repeat_err.get_or_insert(e);
                    &0
                }
            };
            let dt = t0.elapsed().as_secs_f64();
            compress_wall.push(dt);
            let m = energy_for_wall(&profile, activity, Seconds(dt));
            m.total().value()
        });
        if let Some(e) = repeat_err.take() {
            return Err(e);
        }

        // ...and decompression.
        let mut decompress_wall = eblcio_data::RunningStats::new();
        let d_stats = repeat_until_ci(self.min_runs, self.max_runs, self.ci_tol, || {
            let t0 = Instant::now();
            match run_decompress(codec, &stream, threads_exec) {
                Ok(r) => std::hint::black_box(&r.len()),
                Err(e) => {
                    repeat_err.get_or_insert(e);
                    &0
                }
            };
            let dt = t0.elapsed().as_secs_f64();
            decompress_wall.push(dt);
            let m = energy_for_wall(&profile, activity, Seconds(dt));
            m.total().value()
        });
        if let Some(e) = repeat_err {
            return Err(e);
        }

        Ok(MeasuredCell {
            codec: codec.name().to_string(),
            generation,
            threads,
            bound,
            compressed_bytes: stream.len() as u64,
            original_bytes: data.nbytes() as u64,
            quality,
            compress_joules: Joules(c_stats.mean()),
            compress_ci_half: Joules(c_stats.ci95().half_width),
            compress_seconds: Seconds(
                compress_wall.mean() / profile.throughput_factor,
            ),
            decompress_joules: Joules(d_stats.mean()),
            decompress_ci_half: Joules(d_stats.ci95().half_width),
            decompress_seconds: Seconds(
                decompress_wall.mean() / profile.throughput_factor,
            ),
            runs: c_stats.count(),
            stream,
        })
    }

    /// Measures the write phase of a cell's stream (or any payload) via
    /// the PFS model.
    pub fn measure_write(
        &self,
        payload: Vec<u8>,
        label: &str,
        tool: IoToolKind,
        pfs: &PfsSim,
        generation: CpuGeneration,
        writers: u32,
    ) -> WriteCost {
        let profile = generation.profile();
        let obj = DataObject::opaque(label, payload);
        let w = write_objects(tool, std::slice::from_ref(&obj), pfs, &profile, writers);
        WriteCost {
            seconds: w.io.seconds,
            joules: w.io.cpu_energy,
            bytes: obj.payload.len() as u64,
            bandwidth_bps: w.io.bandwidth_bps,
        }
    }
}

fn run_compress(
    data: &Dataset,
    codec: &dyn Compressor,
    bound: ErrorBound,
    threads: u32,
) -> Result<Vec<u8>, CodecError> {
    if threads <= 1 {
        compress_dataset(codec, data, bound)
    } else {
        match data {
            Dataset::F32(a) => {
                eblcio_codec::compress_parallel(codec, a, bound, threads as usize)
            }
            Dataset::F64(a) => {
                eblcio_codec::compress_parallel(codec, a, bound, threads as usize)
            }
        }
    }
}

fn run_decompress(
    codec: &dyn Compressor,
    stream: &[u8],
    threads: u32,
) -> Result<Dataset, CodecError> {
    if threads <= 1 {
        decompress_any(stream)
    } else {
        // The parallel container is typed; probe f32 first.
        match eblcio_codec::decompress_parallel::<f32>(codec, stream, threads as usize) {
            Ok(a) => Ok(Dataset::F32(a)),
            Err(CodecError::DtypeMismatch { .. }) => Ok(Dataset::F64(
                eblcio_codec::decompress_parallel::<f64>(codec, stream, threads as usize)?,
            )),
            Err(e) => Err(e),
        }
    }
}

fn quality_of(
    original: &Dataset,
    recon: &Dataset,
    compressed: usize,
) -> Result<QualityReport, CodecError> {
    match (original, recon) {
        (Dataset::F32(a), Dataset::F32(b)) => Ok(QualityReport::evaluate(a, b, compressed)),
        (Dataset::F64(a), Dataset::F64(b)) => Ok(QualityReport::evaluate(a, b, compressed)),
        // decompress mirrors the input precision; a mismatch is a
        // workspace bug surfaced as a typed error.
        _ => Err(CodecError::Internal { context: "reconstruction precision mismatch" }),
    }
}

/// One measured figure cell.
#[derive(Clone, Debug, Serialize)]
pub struct MeasuredCell {
    /// Codec display name.
    pub codec: String,
    /// CPU platform.
    pub generation: CpuGeneration,
    /// Thread count (1 = serial mode).
    pub threads: u32,
    /// The requested bound.
    pub bound: ErrorBound,
    /// Compressed stream size.
    pub compressed_bytes: u64,
    /// Original size.
    pub original_bytes: u64,
    /// CR / PSNR / bound verification.
    pub quality: QualityReport,
    /// Mean compression energy.
    pub compress_joules: Joules,
    /// 95 % CI half-width of the compression energy.
    pub compress_ci_half: Joules,
    /// Mean compression runtime (scaled to the platform).
    pub compress_seconds: Seconds,
    /// Mean decompression energy.
    pub decompress_joules: Joules,
    /// 95 % CI half-width of the decompression energy.
    pub decompress_ci_half: Joules,
    /// Mean decompression runtime (scaled to the platform).
    pub decompress_seconds: Seconds,
    /// Repetitions actually taken (§IV-C stopping rule).
    pub runs: u64,
    /// The compressed stream (for the downstream write phase).
    #[serde(skip)]
    pub stream: Vec<u8>,
}

impl MeasuredCell {
    /// Compression ratio.
    pub fn cr(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Total (compress + decompress) energy — the y-axis of Figs. 7–10.
    pub fn total_joules(&self) -> Joules {
        self.compress_joules + self.decompress_joules
    }
}

/// A measured write phase.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WriteCost {
    /// Write wall time.
    pub seconds: Seconds,
    /// CPU-side write energy (what Fig. 11 plots).
    pub joules: Joules,
    /// Payload bytes written.
    pub bytes: u64,
    /// Achieved bandwidth.
    pub bandwidth_bps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_codec::CompressorId;
    use eblcio_data::generators::Scale;
    use eblcio_data::{DatasetKind, DatasetSpec};

    fn tiny_nyx() -> Dataset {
        DatasetSpec::new(DatasetKind::Nyx, Scale::Tiny).generate()
    }

    #[test]
    fn measure_cell_produces_consistent_row() {
        let runner = CampaignRunner::quick();
        let data = tiny_nyx();
        let codec = CompressorId::Szx.instance();
        let cell = runner
            .measure_cell(
                &data,
                codec.as_ref(),
                ErrorBound::Relative(1e-3),
                CpuGeneration::Skylake8160,
                1,
            )
            .unwrap();
        assert!(cell.quality.within_bound(1e-3));
        assert!(cell.cr() > 1.0);
        assert!(cell.compress_joules.value() > 0.0);
        assert!(cell.decompress_joules.value() > 0.0);
        assert!(cell.runs >= runner.min_runs);
        assert_eq!(cell.compressed_bytes as usize, cell.stream.len());
    }

    #[test]
    fn parallel_cell_also_bounded() {
        let runner = CampaignRunner::quick();
        let data = tiny_nyx();
        let codec = CompressorId::Sz3.instance();
        let cell = runner
            .measure_cell(
                &data,
                codec.as_ref(),
                ErrorBound::Relative(1e-2),
                CpuGeneration::SapphireRapids9480,
                4,
            )
            .unwrap();
        assert!(cell.quality.within_bound(1e-2));
        assert_eq!(cell.threads, 4);
    }

    #[test]
    fn f64_dataset_cell() {
        let runner = CampaignRunner::quick();
        let data = DatasetSpec::new(DatasetKind::S3d, Scale::Tiny).generate();
        let codec = CompressorId::Zfp.instance();
        let cell = runner
            .measure_cell(
                &data,
                codec.as_ref(),
                ErrorBound::Relative(1e-3),
                CpuGeneration::CascadeLake8260M,
                1,
            )
            .unwrap();
        assert!(cell.quality.within_bound(1e-3));
    }

    #[test]
    fn write_phase_scales_with_bytes() {
        let runner = CampaignRunner::quick();
        let pfs = PfsSim::testbed();
        let small = runner.measure_write(
            vec![0; 1 << 16],
            "s",
            IoToolKind::Hdf5Lite,
            &pfs,
            CpuGeneration::Skylake8160,
            1,
        );
        let large = runner.measure_write(
            vec![0; 1 << 28],
            "l",
            IoToolKind::Hdf5Lite,
            &pfs,
            CpuGeneration::Skylake8160,
            1,
        );
        assert!(large.joules.value() > 50.0 * small.joules.value());
    }
}
