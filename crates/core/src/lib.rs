//! # eblcio-core
//!
//! The paper's primary intellectual contribution, §III: a formal
//! framework deciding when error-bounded lossy compression is beneficial
//! for data writing — and the measurement campaign machinery (§IV) that
//! answers it empirically.
//!
//! * [`conditions`] — Eqs. 3–5: the time, energy, and quality conditions
//!   that must hold simultaneously,
//! * [`advisor`] — "to compress or not": sweeps codecs × bounds for a
//!   data set and I/O tool and recommends a configuration,
//! * [`campaign`] — repeated measurements with the paper's 25-run /
//!   95 %-CI protocol, emitting the rows behind every figure,
//! * [`experiment`] — declarative experiment configurations shared by
//!   the bench binaries.

#![forbid(unsafe_code)]

pub mod advisor;
pub mod campaign;
pub mod carbon;
pub mod conditions;
pub mod dump;
pub mod experiment;
pub mod workflow;

pub use advisor::{Advisor, Recommendation};
pub use campaign::{CampaignRunner, MeasuredCell};
pub use carbon::{MediaClass, StorageFleet};
pub use conditions::{BenefitInputs, BenefitVerdict, Decision};
pub use experiment::{ExperimentConfig, SweepAxis};
pub use workflow::{Campaign, CampaignTotals, DumpCost};
