//! Declarative experiment configurations shared by the bench binaries.
//!
//! Each paper table/figure is a sweep over some axes; these types give
//! the bench crate one vocabulary for all of them and a CSV emitter for
//! `bench_results/`.

use crate::campaign::MeasuredCell;
use eblcio_codec::CompressorId;
use eblcio_data::generators::Scale;
use eblcio_data::DatasetKind;
use eblcio_energy::CpuGeneration;
use eblcio_pfs::IoToolKind;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Which axis a sweep varies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Relative error bounds (Figs. 5, 7, 11).
    Epsilon(Vec<f64>),
    /// Thread counts (Fig. 10).
    Threads(Vec<u32>),
    /// Total core counts (Fig. 12).
    Cores(Vec<u32>),
    /// Inflation factors (Fig. 13).
    Inflation(Vec<usize>),
}

/// One experiment (≈ one paper figure/table).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Experiment id, e.g. `"fig07"`.
    pub id: String,
    /// Data sets involved.
    pub datasets: Vec<DatasetKind>,
    /// Data scale (Tiny for smoke tests, Small for bench runs).
    pub scale: Scale,
    /// Compressors involved.
    pub codecs: Vec<CompressorId>,
    /// CPU platforms.
    pub generations: Vec<CpuGeneration>,
    /// I/O tools (empty = no write phase).
    pub tools: Vec<IoToolKind>,
    /// The varied axis.
    pub axis: SweepAxis,
}

impl ExperimentConfig {
    /// Default ε sweep of the paper (1e-1 … 1e-5).
    pub fn paper_epsilons() -> Vec<f64> {
        vec![1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
    }

    /// Default thread sweep of Fig. 10.
    pub fn paper_threads() -> Vec<u32> {
        vec![1, 2, 4, 8, 16, 32, 64]
    }
}

/// Writes measured cells to a CSV file under `dir` as `<id>.csv`.
pub fn write_cells_csv(
    dir: &Path,
    id: &str,
    cells: &[(String, MeasuredCell)],
) -> std::io::Result<std::path::PathBuf> {
    let (path, mut f) = crate::dump::create(dir, &format!("{id}.csv"))?;
    writeln!(
        f,
        "context,codec,cpu,threads,bound,compressed_bytes,cr,psnr_db,max_rel_err,\
         compress_j,compress_ci_j,compress_s,decompress_j,decompress_ci_j,decompress_s,runs"
    )?;
    for (context, c) in cells {
        let bound = match c.bound {
            eblcio_codec::ErrorBound::Relative(e) => format!("rel:{e:e}"),
            eblcio_codec::ErrorBound::Absolute(e) => format!("abs:{e:e}"),
        };
        writeln!(
            f,
            "{context},{},{:?},{},{bound},{},{:.4},{:.3},{:.3e},{:.4},{:.4},{:.6},{:.4},{:.4},{:.6},{}",
            c.codec,
            c.generation,
            c.threads,
            c.compressed_bytes,
            c.cr(),
            c.quality.psnr_db,
            c.quality.max_rel_error,
            c.compress_joules.value(),
            c.compress_ci_half.value(),
            c.compress_seconds.value(),
            c.decompress_joules.value(),
            c.decompress_ci_half.value(),
            c.decompress_seconds.value(),
            c.runs,
        )?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRunner;
    use eblcio_codec::ErrorBound;
    use eblcio_data::DatasetSpec;

    #[test]
    fn sweep_defaults_match_paper() {
        assert_eq!(ExperimentConfig::paper_epsilons().len(), 5);
        assert_eq!(ExperimentConfig::paper_threads(), [1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn csv_emission() {
        let data = DatasetSpec::new(DatasetKind::Nyx, Scale::Tiny).generate();
        let runner = CampaignRunner {
            min_runs: 1,
            max_runs: 1,
            ci_tol: 1.0,
        };
        let codec = CompressorId::Szx.instance();
        let cell = runner
            .measure_cell(
                &data,
                codec.as_ref(),
                ErrorBound::Relative(1e-3),
                CpuGeneration::Skylake8160,
                1,
            )
            .unwrap();
        let dir = std::env::temp_dir().join(format!("eblcio-csv-{}", std::process::id()));
        let path = write_cells_csv(&dir, "test", &[("NYX".to_string(), cell)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.lines().count() == 2);
        assert!(content.contains("SZx"));
        assert!(content.contains("rel:1e-3"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn config_serializes() {
        let cfg = ExperimentConfig {
            id: "fig07".into(),
            datasets: vec![DatasetKind::Cesm],
            scale: Scale::Tiny,
            codecs: vec![CompressorId::Sz3],
            generations: vec![CpuGeneration::Skylake8160],
            tools: vec![],
            axis: SweepAxis::Epsilon(ExperimentConfig::paper_epsilons()),
        };
        let j = serde_json::to_string(&cfg).unwrap();
        assert!(j.contains("fig07"));
        let back: ExperimentConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back.id, "fig07");
    }
}
