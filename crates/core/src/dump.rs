//! The one sanctioned filesystem dump point for experiment results.
//!
//! Array data always moves through `Arc<dyn Storage>` (the
//! storage-boundary architecture rule), but measurement campaigns also
//! emit small human-facing artifacts — CSV tables and JSON summaries
//! for `bench_results/` — that are not array data and do not belong in
//! a store. Those writes are centralized here so `eblcio-analyze` can
//! allowlist exactly one file instead of scattering `std::fs` calls
//! across the core crate.
//!
//! Keep this module boring: create a directory, create a file, return
//! the handle. Anything smarter (formats, schemas, layout) lives with
//! the caller.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// Creates `dir` (and parents) and opens `dir/<name>` for writing,
/// truncating any previous dump. Returns the full path and the open
/// file handle.
pub fn create(dir: &Path, name: &str) -> io::Result<(PathBuf, File)> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let file = File::create(&path)?;
    Ok((path, file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn create_makes_parents_and_truncates() {
        let dir = std::env::temp_dir().join("eblcio_dump_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (path, mut f) = create(&dir.join("nested"), "out.csv").unwrap();
        writeln!(f, "first,longer,line").unwrap();
        drop(f);
        let (path2, mut f) = create(&dir.join("nested"), "out.csv").unwrap();
        assert_eq!(path, path2);
        writeln!(f, "x").unwrap();
        drop(f);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
