//! Continuous-checkpoint workflows (§I / §VII extrapolation).
//!
//! The paper motivates EBLC with simulations that dump state
//! continuously (CESM petabytes per run, "an exascale system with
//! continuous data dumps"). This module models that campaign: a
//! simulation alternates compute phases with data dumps over many
//! timesteps; each dump either writes the original data or compresses
//! first. The accumulated energy difference — and the fraction of
//! machine time spent in I/O — is what a facility operator actually
//! budgets.

use crate::campaign::WriteCost;
use eblcio_energy::{CpuProfile, Joules, Seconds};
use serde::{Deserialize, Serialize};

/// One dump strategy's per-step costs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DumpCost {
    /// Compression time per dump (0 for the original path).
    pub compress_seconds: Seconds,
    /// Compression energy per dump.
    pub compress_joules: Joules,
    /// Write phase per dump.
    pub write: WriteCost,
}

impl DumpCost {
    /// The uncompressed baseline.
    pub fn original(write: WriteCost) -> Self {
        Self {
            compress_seconds: Seconds::ZERO,
            compress_joules: Joules::ZERO,
            write,
        }
    }

    /// Total time per dump.
    pub fn seconds(&self) -> Seconds {
        self.compress_seconds + self.write.seconds
    }

    /// Total energy per dump.
    pub fn joules(&self) -> Joules {
        self.compress_joules + self.write.joules
    }
}

/// A campaign of `steps` timesteps, each computing for
/// `compute_seconds` and then dumping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Campaign {
    /// Number of timesteps that dump data.
    pub steps: u64,
    /// Simulation compute time between dumps.
    pub compute_seconds: Seconds,
}

/// Accumulated campaign totals for one strategy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignTotals {
    /// End-to-end wall time (compute + dumps).
    pub wall: Seconds,
    /// Total dump (compress + write) energy.
    pub dump_joules: Joules,
    /// Total compute-phase energy.
    pub compute_joules: Joules,
    /// Fraction of wall time spent dumping.
    pub io_fraction: f64,
    /// Bytes shipped to storage over the campaign.
    pub bytes_written: u64,
}

impl Campaign {
    /// Evaluates the campaign under one dump strategy on `profile`.
    pub fn run(&self, dump: &DumpCost, profile: &CpuProfile) -> CampaignTotals {
        let n = self.steps as f64;
        let dump_time = dump.seconds() * n;
        let compute_time = self.compute_seconds * n;
        let wall = compute_time + dump_time;
        // Compute phases run near TDP.
        let compute_power = profile.package_power(profile.cores, 0.85);
        CampaignTotals {
            wall,
            dump_joules: dump.joules() * n,
            compute_joules: compute_power * compute_time,
            io_fraction: if wall.value() > 0.0 {
                dump_time.value() / wall.value()
            } else {
                0.0
            },
            bytes_written: dump.write.bytes * self.steps,
        }
    }

    /// Break-even dump count: after how many steps does the compressed
    /// strategy's cumulative energy fall below the original's?
    /// (1 when every dump already wins; `None` when it never does.)
    pub fn break_even_steps(compressed: &DumpCost, original: &DumpCost) -> Option<u64> {
        let saving = original.joules().value() - compressed.joules().value();
        if saving > 0.0 {
            Some(1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_energy::CpuGeneration;

    fn write(bytes: u64, seconds: f64, joules: f64) -> WriteCost {
        WriteCost {
            seconds: Seconds(seconds),
            joules: Joules(joules),
            bytes,
            bandwidth_bps: bytes as f64 / seconds.max(1e-12),
        }
    }

    fn profile() -> CpuProfile {
        CpuGeneration::Skylake8160.profile()
    }

    #[test]
    fn totals_scale_with_steps() {
        let dump = DumpCost::original(write(1 << 30, 2.0, 100.0));
        let c10 = Campaign {
            steps: 10,
            compute_seconds: Seconds(60.0),
        }
        .run(&dump, &profile());
        let c100 = Campaign {
            steps: 100,
            compute_seconds: Seconds(60.0),
        }
        .run(&dump, &profile());
        assert!((c100.dump_joules.value() - 10.0 * c10.dump_joules.value()).abs() < 1e-6);
        assert_eq!(c100.bytes_written, 10 * c10.bytes_written);
        assert!((c10.io_fraction - 2.0 / 62.0).abs() < 1e-9);
    }

    #[test]
    fn compressed_campaign_wins_when_per_dump_wins() {
        let original = DumpCost::original(write(1 << 30, 10.0, 500.0));
        let compressed = DumpCost {
            compress_seconds: Seconds(1.0),
            compress_joules: Joules(150.0),
            write: write(1 << 24, 0.2, 10.0),
        };
        assert_eq!(Campaign::break_even_steps(&compressed, &original), Some(1));
        let camp = Campaign {
            steps: 1000,
            compute_seconds: Seconds(30.0),
        };
        let a = camp.run(&compressed, &profile());
        let b = camp.run(&original, &profile());
        assert!(a.dump_joules.value() < b.dump_joules.value());
        assert!(a.wall.value() < b.wall.value());
        assert!(a.bytes_written < b.bytes_written / 10);
        // Compute energy identical — the saving is pure I/O-side.
        assert_eq!(a.compute_joules.value(), b.compute_joules.value());
    }

    #[test]
    fn losing_strategy_has_no_break_even() {
        let original = DumpCost::original(write(1 << 20, 0.01, 0.5));
        let compressed = DumpCost {
            compress_seconds: Seconds(5.0),
            compress_joules: Joules(400.0),
            write: write(1 << 16, 0.001, 0.05),
        };
        assert_eq!(Campaign::break_even_steps(&compressed, &original), None);
    }

    #[test]
    fn io_fraction_bounded() {
        let dump = DumpCost::original(write(1 << 28, 1.0, 50.0));
        let t = Campaign {
            steps: 5,
            compute_seconds: Seconds(0.0),
        }
        .run(&dump, &profile());
        assert!((t.io_fraction - 1.0).abs() < 1e-12);
    }
}
