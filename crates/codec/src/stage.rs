//! Codec stages: the composable pieces [`CodecChain`](crate::chain::CodecChain)s
//! are built from.
//!
//! A chain has exactly one **array stage** — the lossy front end that
//! turns samples into a byte payload under an absolute error bound
//! (prediction + quantization + entropy coding, or a block transform) —
//! followed by any number of **byte stages**: lossless byte→byte
//! transforms (the LZ backend, the Blosc byte shuffle, FPC/fpzip-style
//! float coders) applied in order on encode and unwound in reverse on
//! decode.
//!
//! The five paper codecs implement [`ArrayStage`] directly (their
//! identity doubles as [`CompressorId`]); byte stages are described by
//! the serializable [`ByteStageSpec`] so a chain can be recorded in a
//! stream header or a store manifest and rebuilt on the far side.

use crate::error::{CodecError, Result};
use crate::lossless::{Fpc, FpzipLike, LosslessCodec};
use crate::lz;
use crate::traits::CompressorId;
use eblcio_data::{ArrayView, Element, NdArray, Shape};
use serde::{Deserialize, Serialize};

/// The lossy array→bytes front end of a chain.
///
/// `encode_*` receives the absolute error bound already resolved against
/// the global value range and returns the payload bytes together with
/// the bound to *record* in the stream header — usually the input bound,
/// but quality-targeting modes (QoZ PSNR search, ZFP fixed precision)
/// record the bound they actually achieved. `decode_*` receives the
/// recorded bound and the original shape back from the header.
pub trait ArrayStage: Send + Sync {
    /// Wire identity of this stage (doubles as the paper codec id).
    fn id(&self) -> CompressorId;

    /// Encodes a single-precision view; returns `(payload, recorded_abs)`.
    fn encode_f32(&self, data: ArrayView<'_, f32>, abs: f64) -> Result<(Vec<u8>, f64)>;
    /// Encodes a double-precision view; returns `(payload, recorded_abs)`.
    fn encode_f64(&self, data: ArrayView<'_, f64>, abs: f64) -> Result<(Vec<u8>, f64)>;
    /// Decodes a single-precision payload.
    fn decode_f32(&self, bytes: &[u8], shape: Shape, abs: f64) -> Result<NdArray<f32>>;
    /// Decodes a double-precision payload.
    fn decode_f64(&self, bytes: &[u8], shape: Shape, abs: f64) -> Result<NdArray<f64>>;

    /// Whether this stage implements the `decode_*_region` partial
    /// paths. Callers use this as a cheap gate to skip work (byte-stage
    /// unwinding) that would only feed an `Ok(None)` fallback.
    fn supports_partial_decode(&self) -> bool {
        false
    }

    /// Partially decodes the axis-aligned sub-region `origin..origin+extent`
    /// of a single-precision payload, returning an `extent`-shaped array.
    ///
    /// `Ok(None)` means this stage has no partial-decode path (the
    /// default) and the caller must fall back to [`Self::decode_f32`].
    /// Implementations must be bit-identical to slicing the whole-array
    /// decode; the region is pre-validated against `shape` by
    /// [`decode_array_region`].
    fn decode_f32_region(
        &self,
        bytes: &[u8],
        shape: Shape,
        abs: f64,
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f32>>> {
        let _ = (bytes, shape, abs, origin, extent);
        Ok(None)
    }
    /// Double-precision counterpart of [`Self::decode_f32_region`].
    fn decode_f64_region(
        &self,
        bytes: &[u8],
        shape: Shape,
        abs: f64,
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f64>>> {
        let _ = (bytes, shape, abs, origin, extent);
        Ok(None)
    }
}

/// Validates a sub-region request against the array shape: matching
/// rank, non-empty extents, and `origin + extent` within every dim.
pub fn validate_region(shape: Shape, origin: &[usize], extent: &[usize]) -> Result<()> {
    let rank = shape.rank();
    if origin.len() != rank || extent.len() != rank {
        return Err(CodecError::BadRegion { context: "rank mismatch" });
    }
    for d in 0..rank {
        if extent[d] == 0 {
            return Err(CodecError::BadRegion { context: "empty extent" });
        }
        if origin[d] + extent[d] > shape.dim(d) {
            return Err(CodecError::BadRegion { context: "outside the array" });
        }
    }
    Ok(())
}

/// Generic [`ArrayStage`] encode, dispatching on the element type via
/// the sealed [`Element`] identity casts.
pub fn encode_array<T: Element>(
    stage: &dyn ArrayStage,
    data: ArrayView<'_, T>,
    abs: f64,
) -> Result<(Vec<u8>, f64)> {
    if let Some(s) = T::slice_as_f32(data.as_slice()) {
        stage.encode_f32(ArrayView::new(data.shape(), s), abs)
    } else if let Some(s) = T::slice_as_f64(data.as_slice()) {
        stage.encode_f64(ArrayView::new(data.shape(), s), abs)
    } else {
        // Element is sealed to f32/f64; a third impl is a workspace bug.
        Err(CodecError::Internal { context: "sealed Element dispatch in encode_array" })
    }
}

/// Generic [`ArrayStage`] decode, dispatching on the element type.
pub fn decode_array<T: Element>(
    stage: &dyn ArrayStage,
    bytes: &[u8],
    shape: Shape,
    abs: f64,
) -> Result<NdArray<T>> {
    // Element is sealed to f32 (4 bytes) and f64 (8 bytes); any other
    // combination is a workspace bug surfaced as a typed error.
    if T::BYTES == 4 {
        let arr = stage.decode_f32(bytes, shape, abs)?;
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f32(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f32 decode)" });
        };
        Ok(NdArray::from_vec(shape, data))
    } else {
        let arr = stage.decode_f64(bytes, shape, abs)?;
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f64(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f64 decode)" });
        };
        Ok(NdArray::from_vec(shape, data))
    }
}

/// Generic [`ArrayStage`] partial decode, dispatching on the element
/// type. Validates the region, then asks the stage; `Ok(None)` means
/// "no partial path, fall back to [`decode_array`]".
pub fn decode_array_region<T: Element>(
    stage: &dyn ArrayStage,
    bytes: &[u8],
    shape: Shape,
    abs: f64,
    origin: &[usize],
    extent: &[usize],
) -> Result<Option<NdArray<T>>> {
    validate_region(shape, origin, extent)?;
    if T::BYTES == 4 {
        let Some(arr) = stage.decode_f32_region(bytes, shape, abs, origin, extent)? else {
            return Ok(None);
        };
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f32(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f32 region)" });
        };
        Ok(Some(NdArray::from_vec(shape, data)))
    } else {
        let Some(arr) = stage.decode_f64_region(bytes, shape, abs, origin, extent)? else {
            return Ok(None);
        };
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f64(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f64 region)" });
        };
        Ok(Some(NdArray::from_vec(shape, data)))
    }
}

/// A lossless byte→byte chain stage.
pub trait ByteStage: Send + Sync {
    /// The serializable description this stage was built from.
    fn spec(&self) -> ByteStageSpec;
    /// Applies the transform (encode direction). Must be exactly
    /// invertible by [`Self::inverse`].
    fn forward(&self, data: &[u8]) -> Vec<u8>;
    /// Undoes [`Self::forward`] (decode direction).
    fn inverse(&self, data: &[u8]) -> Result<Vec<u8>>;
    /// [`Self::inverse`] into a caller-owned buffer, so the chain decode
    /// loop can reuse one arena allocation across chunks. The default
    /// replaces `out` wholesale; stages with a natural streaming inverse
    /// (the LZ backend) override it to decompress in place.
    fn inverse_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<()> {
        *out = self.inverse(data)?;
        Ok(())
    }
}

/// Serializable description of one byte stage (its wire id + parameter).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ByteStageSpec {
    /// LZ77 + Huffman backend — the SZ-family "Zstd stage".
    Lz,
    /// Blosc-style byte shuffle: transposes the bytes of fixed-width
    /// elements so slowly-varying high bytes become adjacent.
    Shuffle {
        /// Element width in bytes (4 for f32 payload-like data, 8 for f64).
        element_size: u8,
    },
    /// FPC: FCM/DFCM hash-predicted leading-zero-byte coding.
    Fpc {
        /// Element width in bytes.
        element_size: u8,
    },
    /// fpzip-style Lorenzo-predicted residual coding.
    Fpzip {
        /// Element width in bytes.
        element_size: u8,
    },
}

/// Wire ids for [`ByteStageSpec`] (`0` is reserved so a truncated spec
/// never aliases a valid stage).
const BYTE_LZ: u8 = 1;
const BYTE_SHUFFLE: u8 = 2;
const BYTE_FPC: u8 = 3;
const BYTE_FPZIP: u8 = 4;

impl ByteStageSpec {
    /// Wire id byte.
    pub fn wire_id(self) -> u8 {
        match self {
            ByteStageSpec::Lz => BYTE_LZ,
            ByteStageSpec::Shuffle { .. } => BYTE_SHUFFLE,
            ByteStageSpec::Fpc { .. } => BYTE_FPC,
            ByteStageSpec::Fpzip { .. } => BYTE_FPZIP,
        }
    }

    /// Wire parameter byte (element size; 0 when the stage has none).
    pub fn wire_param(self) -> u8 {
        match self {
            ByteStageSpec::Lz => 0,
            ByteStageSpec::Shuffle { element_size }
            | ByteStageSpec::Fpc { element_size }
            | ByteStageSpec::Fpzip { element_size } => element_size,
        }
    }

    /// Rebuilds a spec from its wire id + parameter.
    pub fn from_wire(id: u8, param: u8) -> Result<Self> {
        let esize_ok = matches!(param, 1 | 2 | 4 | 8);
        match id {
            BYTE_LZ if param == 0 => Ok(ByteStageSpec::Lz),
            BYTE_SHUFFLE if esize_ok => Ok(ByteStageSpec::Shuffle { element_size: param }),
            BYTE_FPC if esize_ok => Ok(ByteStageSpec::Fpc { element_size: param }),
            BYTE_FPZIP if esize_ok => Ok(ByteStageSpec::Fpzip { element_size: param }),
            _ => Err(CodecError::Corrupt { context: "byte stage spec" }),
        }
    }

    /// Compact human label (`lz`, `shuffle4`, `fpc8`, …) — the chain
    /// grammar the CLI parses.
    pub fn label(self) -> String {
        match self {
            ByteStageSpec::Lz => "lz".into(),
            ByteStageSpec::Shuffle { element_size } => format!("shuffle{element_size}"),
            ByteStageSpec::Fpc { element_size } => format!("fpc{element_size}"),
            ByteStageSpec::Fpzip { element_size } => format!("fpzip{element_size}"),
        }
    }

    /// Parses a [`Self::label`]-format segment.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let (name, digits): (&str, &str) = match s.find(|c: char| c.is_ascii_digit()) {
            Some(i) => (&s[..i], &s[i..]),
            None => (s, ""),
        };
        let esize = || -> std::result::Result<u8, String> {
            let v: u8 = digits
                .parse()
                .map_err(|_| format!("byte stage '{s}': bad element size"))?;
            if matches!(v, 1 | 2 | 4 | 8) {
                Ok(v)
            } else {
                Err(format!("byte stage '{s}': element size must be 1/2/4/8"))
            }
        };
        match name {
            "lz" if digits.is_empty() => Ok(ByteStageSpec::Lz),
            "shuffle" => Ok(ByteStageSpec::Shuffle { element_size: esize()? }),
            "fpc" => Ok(ByteStageSpec::Fpc { element_size: esize()? }),
            "fpzip" => Ok(ByteStageSpec::Fpzip { element_size: esize()? }),
            _ => Err(format!("unknown byte stage '{s}'")),
        }
    }
}

/// The LZ backend as a chain stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct LzStage;

impl ByteStage for LzStage {
    fn spec(&self) -> ByteStageSpec {
        ByteStageSpec::Lz
    }
    fn forward(&self, data: &[u8]) -> Vec<u8> {
        lz::compress(data)
    }
    fn inverse(&self, data: &[u8]) -> Result<Vec<u8>> {
        lz::decompress(data)
    }
    fn inverse_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<()> {
        lz::decompress_into(data, out)
    }
}

/// The Blosc byte shuffle as a chain stage (permutation only — pair it
/// with [`LzStage`] to reproduce the C-Blosc2 pipeline).
#[derive(Clone, Copy, Debug)]
pub struct ShuffleStage {
    element_size: usize,
}

impl ShuffleStage {
    /// Shuffle for elements of `element_size` bytes.
    ///
    /// # Panics
    /// Panics unless `element_size` is 1, 2, 4, or 8 — the only widths
    /// the wire spec ([`ByteStageSpec::Shuffle`]) can record, so any
    /// other stage would compress streams it cannot describe.
    pub fn new(element_size: usize) -> Self {
        assert!(
            matches!(element_size, 1 | 2 | 4 | 8),
            "shuffle element size must be 1, 2, 4, or 8 (got {element_size})"
        );
        Self { element_size }
    }
}

impl ByteStage for ShuffleStage {
    fn spec(&self) -> ByteStageSpec {
        ByteStageSpec::Shuffle {
            element_size: self.element_size as u8,
        }
    }
    fn forward(&self, data: &[u8]) -> Vec<u8> {
        crate::lossless::shuffle(data, self.element_size)
    }
    fn inverse(&self, data: &[u8]) -> Result<Vec<u8>> {
        Ok(crate::lossless::unshuffle(data, self.element_size))
    }
}

/// Adapts a [`LosslessCodec`] backend into a byte stage.
struct LosslessStage<C: LosslessCodec> {
    spec: ByteStageSpec,
    codec: C,
}

impl<C: LosslessCodec> ByteStage for LosslessStage<C> {
    fn spec(&self) -> ByteStageSpec {
        self.spec
    }
    fn forward(&self, data: &[u8]) -> Vec<u8> {
        self.codec.compress(data)
    }
    fn inverse(&self, data: &[u8]) -> Result<Vec<u8>> {
        self.codec.decompress(data)
    }
}

/// Builds the byte stage a spec describes.
pub fn build_byte_stage(spec: ByteStageSpec) -> Box<dyn ByteStage> {
    match spec {
        ByteStageSpec::Lz => Box::new(LzStage),
        ByteStageSpec::Shuffle { element_size } => {
            Box::new(ShuffleStage::new(usize::from(element_size)))
        }
        ByteStageSpec::Fpc { element_size } => Box::new(LosslessStage {
            spec,
            codec: Fpc::new(usize::from(element_size)),
        }),
        ByteStageSpec::Fpzip { element_size } => Box::new(LosslessStage {
            spec,
            codec: FpzipLike::new(usize::from(element_size)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let specs = [
            ByteStageSpec::Lz,
            ByteStageSpec::Shuffle { element_size: 4 },
            ByteStageSpec::Fpc { element_size: 8 },
            ByteStageSpec::Fpzip { element_size: 4 },
        ];
        for s in specs {
            assert_eq!(ByteStageSpec::from_wire(s.wire_id(), s.wire_param()).unwrap(), s);
        }
        assert!(ByteStageSpec::from_wire(0, 0).is_err());
        assert!(ByteStageSpec::from_wire(99, 4).is_err());
        assert!(ByteStageSpec::from_wire(BYTE_SHUFFLE, 3).is_err());
        assert!(ByteStageSpec::from_wire(BYTE_LZ, 4).is_err());
    }

    #[test]
    fn label_parse_roundtrip() {
        for s in [
            ByteStageSpec::Lz,
            ByteStageSpec::Shuffle { element_size: 8 },
            ByteStageSpec::Fpc { element_size: 4 },
            ByteStageSpec::Fpzip { element_size: 8 },
        ] {
            assert_eq!(ByteStageSpec::parse(&s.label()).unwrap(), s);
        }
        assert!(ByteStageSpec::parse("lz4").is_err());
        assert!(ByteStageSpec::parse("shuffle").is_err());
        assert!(ByteStageSpec::parse("shuffle7").is_err());
        assert!(ByteStageSpec::parse("zstd").is_err());
    }

    #[test]
    fn every_stage_is_invertible() {
        let data: Vec<u8> = (0..4096u32)
            .flat_map(|i| ((i as f32 * 0.01).sin() * 50.0).to_le_bytes())
            .collect();
        for spec in [
            ByteStageSpec::Lz,
            ByteStageSpec::Shuffle { element_size: 4 },
            ByteStageSpec::Shuffle { element_size: 8 },
            ByteStageSpec::Fpc { element_size: 4 },
            ByteStageSpec::Fpzip { element_size: 4 },
        ] {
            let stage = build_byte_stage(spec);
            let fwd = stage.forward(&data);
            assert_eq!(stage.inverse(&fwd).unwrap(), data, "{}", spec.label());
            // Ragged / empty inputs must also survive.
            for cut in [0usize, 1, 3, 7] {
                let fwd = stage.forward(&data[..cut]);
                assert_eq!(stage.inverse(&fwd).unwrap(), &data[..cut], "{}", spec.label());
            }
        }
    }

    #[test]
    fn lz_stage_matches_backend_bytes() {
        // The preset chains rely on LzStage producing exactly the bytes
        // the monolithic SZ pipelines used to emit.
        let data = b"the payload the payload the payload".to_vec();
        assert_eq!(LzStage.forward(&data), lz::compress(&data));
    }
}
