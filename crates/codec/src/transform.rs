//! ZFP block transform machinery (Lindstrom, TVCG 2014).
//!
//! ZFP partitions the field into 4^d blocks, aligns each block to a
//! common exponent as fixed-point integers, decorrelates with a
//! non-orthogonal lifted transform (an integer approximation of a
//! 4-point DCT), reorders coefficients by total sequency, maps them to
//! negabinary, and encodes bitplanes MSB-first with an embedded
//! group-testing coder.
//!
//! This module implements those primitives; the codec in
//! [`crate::codecs::zfp`] assembles them into a fixed-accuracy (error
//! bounded) compressor.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::Result;

/// Block edge length (fixed at 4, as in ZFP).
pub const BLOCK_EDGE: usize = 4;

/// Fixed-point integer precision: block values are scaled to roughly
/// ±2^FIXED_PREC before the transform. The lifted transform grows values
/// by < 2 bits per dimension, leaving ample headroom in `i64` for rank 4.
pub const FIXED_PREC: i32 = 48;

/// Forward lifted decorrelating transform on 4 samples with stride `s`
/// (ZFP's `fwd_lift`).
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    // Non-orthogonal transform ~ 1/16 · [4 4 4 4; 5 1 -1 -5; -4 4 4 -4; -2 6 -6 2].
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse of [`fwd_lift`] (ZFP's `inv_lift`). Exact integer inverse of
/// the forward steps up to the deliberate, bounded rounding the lossy
/// coder absorbs.
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Applies the forward transform to a full 4^rank block (separably along
/// each dimension).
pub fn fwd_transform(block: &mut [i64], rank: usize) {
    let n = BLOCK_EDGE.pow(rank as u32);
    debug_assert_eq!(block.len(), n);
    for d in 0..rank {
        let stride = BLOCK_EDGE.pow((rank - 1 - d) as u32);
        // Iterate all 4-sample lines along dimension d.
        let lines = n / BLOCK_EDGE;
        for l in 0..lines {
            // Decompose the line index into the base offset.
            let outer = l / stride; // index over slower dims
            let inner = l % stride; // index over faster dims
            let base = outer * stride * BLOCK_EDGE + inner;
            fwd_lift(block, base, stride);
        }
    }
}

/// Applies the inverse transform to a 4^rank block.
pub fn inv_transform(block: &mut [i64], rank: usize) {
    let n = BLOCK_EDGE.pow(rank as u32);
    debug_assert_eq!(block.len(), n);
    for d in (0..rank).rev() {
        let stride = BLOCK_EDGE.pow((rank - 1 - d) as u32);
        let lines = n / BLOCK_EDGE;
        for l in 0..lines {
            let outer = l / stride;
            let inner = l % stride;
            let base = outer * stride * BLOCK_EDGE + inner;
            inv_lift(block, base, stride);
        }
    }
}

/// Total-sequency permutation: coefficient visit order sorted by the sum
/// of per-axis frequencies (low frequencies first), ties broken by index.
/// ZFP hard-codes these tables; we generate them once per rank.
pub fn sequency_order(rank: usize) -> Vec<usize> {
    let n = BLOCK_EDGE.pow(rank as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let key = |i: usize| -> (u32, usize) {
        let mut rem = i;
        let mut sum = 0u32;
        for _ in 0..rank {
            sum += (rem % BLOCK_EDGE) as u32;
            rem /= BLOCK_EDGE;
        }
        (sum, i)
    };
    idx.sort_by_key(|&i| key(i));
    idx
}

/// Two's-complement → negabinary mapping (ZFP's `int2uint`): interleaves
/// positive and negative values so magnitude ordering survives in the
/// unsigned domain and bitplanes decay smoothly.
#[inline]
pub fn int_to_nega(x: i64) -> u64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((x as u64).wrapping_add(MASK)) ^ MASK
}

/// Inverse of [`int_to_nega`].
#[inline]
pub fn nega_to_int(u: u64) -> i64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    (u ^ MASK).wrapping_sub(MASK) as i64
}

/// Encodes `planes` bitplanes of `coeffs` (already in sequency order,
/// negabinary) MSB-first with ZFP's embedded group-testing scheme.
///
/// `total_bits` is the bit width of the negabinary values (≤ 64).
pub fn encode_planes(w: &mut BitWriter, coeffs: &[u64], total_bits: u32, planes: u32) {
    let n = coeffs.len();
    let mut significant = vec![false; n];
    let mut pending: Vec<usize> = (0..n).collect();
    for plane in 0..planes.min(total_bits) {
        let bitpos = total_bits - 1 - plane;
        // Raw bits for coefficients already significant.
        for (i, sig) in significant.iter().enumerate().take(n) {
            if *sig {
                w.put_bit((coeffs[i] >> bitpos) & 1 == 1);
            }
        }
        // Group-test the rest in sequency order.
        let mut i = 0usize;
        let mut newly = false;
        while i < pending.len() {
            let any = pending[i..]
                .iter()
                .any(|&j| (coeffs[j] >> bitpos) & 1 == 1);
            w.put_bit(any);
            if !any {
                break;
            }
            // Emit bits until the first set bit (inclusive).
            while i < pending.len() {
                let j = pending[i];
                let bit = (coeffs[j] >> bitpos) & 1 == 1;
                w.put_bit(bit);
                i += 1;
                if bit {
                    significant[j] = true;
                    newly = true;
                    break;
                }
            }
        }
        if newly {
            pending.retain(|&j| !significant[j]);
        }
    }
}

/// Decodes bitplanes written by [`encode_planes`]. Missing planes come
/// back as zero bits (that is the lossy truncation).
pub fn decode_planes(
    r: &mut BitReader<'_>,
    n: usize,
    total_bits: u32,
    planes: u32,
) -> Result<Vec<u64>> {
    let mut coeffs = vec![0u64; n];
    let mut significant = vec![false; n];
    let mut pending: Vec<usize> = (0..n).collect();
    for plane in 0..planes.min(total_bits) {
        let bitpos = total_bits - 1 - plane;
        for (i, sig) in significant.iter().enumerate().take(n) {
            if *sig && r.get_bit("zfp plane bits")? {
                coeffs[i] |= 1u64 << bitpos;
            }
        }
        let mut i = 0usize;
        let mut newly = false;
        while i < pending.len() {
            let any = r.get_bit("zfp group bit")?;
            if !any {
                break;
            }
            while i < pending.len() {
                let j = pending[i];
                let bit = r.get_bit("zfp scan bit")?;
                i += 1;
                if bit {
                    coeffs[j] |= 1u64 << bitpos;
                    significant[j] = true;
                    newly = true;
                    break;
                }
            }
        }
        if newly {
            pending.retain(|&j| !significant[j]);
        }
    }
    Ok(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_roundtrip_is_near_exact() {
        // The lifted transform drops ≤ a few LSBs; verify the inverse
        // reconstructs within that tolerance across magnitudes.
        for seed in 0..200i64 {
            let orig = [
                seed * 1_000_003,
                -seed * 777_777 + 5,
                seed * seed * 31 - 9,
                (seed % 17) * 1_000_000_007,
            ];
            let mut v = orig;
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in orig.iter().zip(&v) {
                assert!((a - b).abs() <= 4, "orig {orig:?} recon {v:?}");
            }
        }
    }

    #[test]
    fn transform_roundtrip_3d() {
        let mut block: Vec<i64> = (0..64).map(|i| (i as i64 - 30) * 1_000_000).collect();
        let orig = block.clone();
        fwd_transform(&mut block, 3);
        assert_ne!(block, orig, "transform should decorrelate");
        inv_transform(&mut block, 3);
        for (a, b) in orig.iter().zip(&block) {
            assert!((a - b).abs() <= 64, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_concentrates_energy_on_smooth_data() {
        // A linear ramp should transform to coefficients dominated by the
        // DC + first-order terms.
        let mut block: Vec<i64> = (0..16)
            .map(|i| {
                let (x, y) = (i % 4, i / 4);
                (1000 * x + 3000 * y) as i64
            })
            .collect();
        fwd_transform(&mut block, 2);
        let order = sequency_order(2);
        let low: i64 = order[..4].iter().map(|&i| block[i].abs()).sum();
        let high: i64 = order[8..].iter().map(|&i| block[i].abs()).sum();
        assert!(low > 8 * high.max(1), "low {low} high {high}");
    }

    #[test]
    fn sequency_order_is_permutation_and_starts_at_dc() {
        for rank in 1..=4usize {
            let ord = sequency_order(rank);
            let n = BLOCK_EDGE.pow(rank as u32);
            assert_eq!(ord.len(), n);
            let mut seen = vec![false; n];
            for &i in &ord {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(ord[0], 0, "DC coefficient first");
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(nega_to_int(int_to_nega(v)), v);
        }
    }

    #[test]
    fn negabinary_small_magnitudes_have_high_zero_planes() {
        // Small |v| must have all high bits zero so truncated planes are
        // harmless.
        for v in -100i64..=100 {
            let u = int_to_nega(v);
            assert!(u < 1 << 10, "v={v} u={u:#x}");
        }
    }

    #[test]
    fn planes_roundtrip_exactly_with_full_precision() {
        let coeffs: Vec<u64> = vec![
            0x0,
            0x1,
            0xff,
            0xabcd,
            0xdead_beef,
            0x1234_5678_9abc,
            (1 << 47) - 1,
            1 << 47,
        ];
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 48, 48);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = decode_planes(&mut r, coeffs.len(), 48, 48).unwrap();
        assert_eq!(dec, coeffs);
    }

    #[test]
    fn truncated_planes_zero_low_bits() {
        let coeffs: Vec<u64> = vec![0b1111_1111; 16];
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 8, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let dec = decode_planes(&mut r, 16, 8, 3).unwrap();
        for d in dec {
            assert_eq!(d, 0b1110_0000);
        }
    }

    #[test]
    fn sparse_planes_compress_well() {
        // One significant coefficient out of 64: group testing should
        // need far fewer bits than 64 per plane.
        let mut coeffs = vec![0u64; 64];
        coeffs[0] = (1 << 30) - 1;
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 30, 30);
        let nbits = w.bit_len();
        assert!(nbits < 64 * 8, "{nbits} bits");
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_planes(&mut r, 64, 30, 30).unwrap(), coeffs);
    }

    #[test]
    fn zero_block_costs_one_bit_per_plane() {
        let coeffs = vec![0u64; 64];
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 20, 20);
        assert_eq!(w.bit_len(), 20);
    }
}
