//! Spatial predictors: the Lorenzo predictor and SZ2's block linear
//! regression.
//!
//! Both operate on the *reconstructed* field (the values the decoder will
//! have), which is what lets prediction + error-controlled quantization
//! guarantee the point-wise bound end to end.

use eblcio_data::Shape;

/// Lorenzo prediction of order 1 at multi-index `idx`, reading previously
/// reconstructed values from the flat `recon` buffer.
///
/// The d-dimensional Lorenzo predictor estimates a sample from its
/// "lower corner" neighbours: `Σ_{∅≠S⊆dims} (−1)^{|S|+1} · v(idx − 1_S)`.
/// Missing (out-of-bounds) neighbours contribute 0, so the very first
/// sample is predicted as 0 — its large residual is absorbed by the
/// outlier path.
#[inline]
pub fn lorenzo(recon: &[f64], shape: Shape, idx: &[usize]) -> f64 {
    let rank = shape.rank();
    let strides = shape.strides();
    let base: usize = idx
        .iter()
        .zip(&strides[..rank])
        .map(|(&c, &s)| c * s)
        .sum();
    let mut pred = 0.0;
    // Subsets of dims as bitmasks.
    'subset: for mask in 1u32..(1 << rank) {
        let mut off = base;
        for (d, stride) in strides[..rank].iter().enumerate() {
            if mask >> d & 1 == 1 {
                if idx[d] == 0 {
                    continue 'subset; // neighbour out of bounds
                }
                off -= stride;
            }
        }
        let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
        pred += sign * recon[off];
    }
    pred
}

/// Precomputed interior Lorenzo stencil: per non-empty axis subset, the
/// signed weight and flat back-offset, in the same mask order as
/// [`lorenzo`]. At interior points (every coordinate > 0) no neighbour
/// test is needed, so evaluation is a short flat dot product the
/// compiler can keep in registers — the SZ2 decode hot loop.
#[derive(Clone, Copy, Debug)]
pub struct LorenzoStencil {
    /// `(sign, flat offset subtracted from the target)` per subset.
    terms: [(f64, usize); 15],
    n_terms: usize,
}

impl LorenzoStencil {
    /// Builds the stencil for a shape (rank ≤ 4 ⇒ ≤ 15 terms).
    pub fn new(shape: Shape) -> Self {
        let rank = shape.rank();
        let strides = shape.strides();
        let mut terms = [(0.0, 0usize); 15];
        let mut n_terms = 0;
        for mask in 1u32..(1 << rank) {
            let delta: usize = strides[..rank]
                .iter()
                .enumerate()
                .filter(|(d, _)| mask >> d & 1 == 1)
                .map(|(_, &s)| s)
                .sum();
            let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            terms[n_terms] = (sign, delta);
            n_terms += 1;
        }
        Self { terms, n_terms }
    }

    /// Evaluates at flat offset `base`, which must be an interior point
    /// (all coordinates ≥ 1). Bit-identical to [`lorenzo`] there: the
    /// terms are accumulated in the same subset order with the same
    /// signs.
    #[inline]
    pub fn eval_interior(&self, recon: &[f64], base: usize) -> f64 {
        let mut pred = 0.0;
        for &(sign, delta) in &self.terms[..self.n_terms] {
            pred += sign * recon[base - delta];
        }
        pred
    }
}

/// Least-squares fit of an affine function `v ≈ c₀ + Σ cᵢ·xᵢ` over a
/// dense block of raw samples (SZ2's regression predictor).
///
/// `values` is the row-major block content, `dims` its per-axis extents
/// (rank = `dims.len()` ≤ 4). Because the sample coordinates form a full
/// grid, the normal equations decouple per axis, giving a closed form.
pub fn fit_affine(values: &[f64], dims: &[usize]) -> AffineCoef {
    let rank = dims.len();
    debug_assert_eq!(values.len(), dims.iter().product::<usize>());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;

    let mut coef = [0.0f64; 4];
    let block_shape = Shape::new(dims);
    for d in 0..rank {
        let m = dims[d];
        if m < 2 {
            continue;
        }
        let xbar = (m - 1) as f64 / 2.0;
        // Σ (x − x̄)² over the whole block = (other dims product) · Σ_x (x−x̄)².
        let sxx_axis: f64 = (0..m).map(|x| (x as f64 - xbar).powi(2)).sum();
        let others = (values.len() / m) as f64;
        let sxx = sxx_axis * others;
        let mut sxy = 0.0;
        for (off, &v) in values.iter().enumerate() {
            let x = block_shape.unoffset(off)[d] as f64;
            sxy += (x - xbar) * (v - mean);
        }
        coef[d] = sxy / sxx;
    }
    let mut c0 = mean;
    for d in 0..rank {
        if dims[d] >= 2 {
            c0 -= coef[d] * (dims[d] - 1) as f64 / 2.0;
        }
    }
    AffineCoef { c0, c: coef }
}

/// Coefficients of the affine block predictor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AffineCoef {
    /// Intercept.
    pub c0: f64,
    /// Per-axis slopes (unused axes are 0).
    pub c: [f64; 4],
}

impl AffineCoef {
    /// Evaluates the predictor at block-local coordinates.
    #[inline]
    pub fn eval(&self, idx: &[usize]) -> f64 {
        let mut v = self.c0;
        for (d, &x) in idx.iter().enumerate() {
            v += self.c[d] * x as f64;
        }
        v
    }

    /// Serializes to `f32` per coefficient (SZ2 stores regression
    /// coefficients at reduced precision — prediction quality only).
    pub fn to_f32_bytes(&self, rank: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.c0 as f32).to_le_bytes());
        for d in 0..rank {
            out.extend_from_slice(&(self.c[d] as f32).to_le_bytes());
        }
    }

    /// Inverse of [`Self::to_f32_bytes`]; returns `None` on truncation.
    pub fn from_f32_bytes(rank: usize, bytes: &[u8]) -> Option<(Self, usize)> {
        let need = 4 * (rank + 1);
        if bytes.len() < need {
            return None;
        }
        let mut c = [0.0f64; 4];
        let c0 = f32::from_le_bytes(bytes[0..4].try_into().ok()?) as f64;
        for (d, slot) in c.iter_mut().take(rank).enumerate() {
            let s = 4 + 4 * d;
            *slot = f32::from_le_bytes(bytes[s..s + 4].try_into().ok()?) as f64;
        }
        Some((Self { c0, c }, need))
    }

    /// The round-trip the encoder must apply before predicting with the
    /// coefficients (the decoder only sees the `f32` versions).
    pub fn quantized(&self, rank: usize) -> Self {
        let mut c = [0.0f64; 4];
        for (coeff, &orig) in c.iter_mut().zip(&self.c).take(rank) {
            *coeff = orig as f32 as f64;
        }
        Self {
            c0: self.c0 as f32 as f64,
            c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo_1d_is_previous_value() {
        let shape = Shape::d1(5);
        let recon = [1.0, 2.0, 4.0, 8.0, 0.0];
        assert_eq!(lorenzo(&recon, shape, &[0]), 0.0);
        assert_eq!(lorenzo(&recon, shape, &[3]), 4.0);
    }

    #[test]
    fn lorenzo_2d_parallelogram_rule() {
        // pred(i,j) = v(i-1,j) + v(i,j-1) - v(i-1,j-1).
        let shape = Shape::d2(2, 2);
        let recon = [1.0, 2.0, 3.0, 0.0];
        assert_eq!(lorenzo(&recon, shape, &[1, 1]), 2.0 + 3.0 - 1.0);
        assert_eq!(lorenzo(&recon, shape, &[0, 1]), 1.0);
        assert_eq!(lorenzo(&recon, shape, &[1, 0]), 1.0);
    }

    #[test]
    fn lorenzo_exact_on_affine_fields_2d() {
        // Order-1 Lorenzo reproduces affine fields exactly (away from the
        // boundary).
        let shape = Shape::d2(6, 7);
        let f = |i: usize, j: usize| 2.0 + 3.0 * i as f64 - 1.5 * j as f64;
        let mut recon = vec![0.0; shape.len()];
        for i in 0..6 {
            for j in 0..7 {
                recon[shape.offset(&[i, j])] = f(i, j);
            }
        }
        for i in 1..6 {
            for j in 1..7 {
                let p = lorenzo(&recon, shape, &[i, j]);
                assert!((p - f(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lorenzo_exact_on_affine_fields_3d_4d() {
        let shape3 = Shape::d3(4, 4, 4);
        let mut recon = vec![0.0; shape3.len()];
        for (off, r) in recon.iter_mut().enumerate() {
            let ix = shape3.unoffset(off);
            *r = 1.0 + ix[0] as f64 - 2.0 * ix[1] as f64 + 0.5 * ix[2] as f64;
        }
        let p = lorenzo(&recon, shape3, &[2, 3, 1]);
        assert!((p - (1.0 + 2.0 - 6.0 + 0.5)).abs() < 1e-12);

        let shape4 = Shape::d4(3, 3, 3, 3);
        let mut recon4 = vec![0.0; shape4.len()];
        for (off, r) in recon4.iter_mut().enumerate() {
            let ix = shape4.unoffset(off);
            *r = ix.iter().take(4).sum::<usize>() as f64;
        }
        let p = lorenzo(&recon4, shape4, &[1, 2, 1, 2]);
        assert!((p - 6.0).abs() < 1e-12);
    }

    #[test]
    fn affine_fit_recovers_exact_plane() {
        let dims = [4usize, 5, 6];
        let shape = Shape::new(&dims);
        let mut vals = vec![0.0; shape.len()];
        for (off, v) in vals.iter_mut().enumerate() {
            let ix = shape.unoffset(off);
            *v = 7.0 + 0.25 * ix[0] as f64 - 3.0 * ix[1] as f64 + 1.5 * ix[2] as f64;
        }
        let c = fit_affine(&vals, &dims);
        assert!((c.c0 - 7.0).abs() < 1e-9);
        assert!((c.c[0] - 0.25).abs() < 1e-9);
        assert!((c.c[1] + 3.0).abs() < 1e-9);
        assert!((c.c[2] - 1.5).abs() < 1e-9);
        // And evaluation reproduces the field.
        for (off, &v) in vals.iter().enumerate() {
            let ix = shape.unoffset(off);
            assert!((c.eval(&ix[..3]) - v).abs() < 1e-8);
        }
    }

    #[test]
    fn affine_fit_handles_singleton_dims() {
        let dims = [1usize, 4];
        let vals = [0.0, 1.0, 2.0, 3.0];
        let c = fit_affine(&vals, &dims);
        assert_eq!(c.c[0], 0.0);
        assert!((c.c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stencil_matches_lorenzo_at_interior_points() {
        for shape in [
            Shape::d1(6),
            Shape::d2(5, 7),
            Shape::d3(4, 5, 3),
            Shape::d4(3, 3, 4, 3),
        ] {
            let rank = shape.rank();
            let mut recon = vec![0.0; shape.len()];
            for (off, r) in recon.iter_mut().enumerate() {
                *r = (off as f64 * 0.7311).sin() * 13.0;
            }
            let stencil = LorenzoStencil::new(shape);
            for off in 0..shape.len() {
                let idx = shape.unoffset(off);
                if idx[..rank].iter().all(|&c| c > 0) {
                    let want = lorenzo(&recon, shape, &idx[..rank]);
                    let got = stencil.eval_interior(&recon, off);
                    assert_eq!(got.to_bits(), want.to_bits(), "shape {shape} off {off}");
                }
            }
        }
    }

    #[test]
    fn coef_serialization_roundtrip() {
        let c = AffineCoef {
            c0: 1.25,
            c: [0.5, -0.125, 3.0, 0.0],
        };
        let mut buf = Vec::new();
        c.to_f32_bytes(3, &mut buf);
        assert_eq!(buf.len(), 16);
        let (d, used) = AffineCoef::from_f32_bytes(3, &buf).unwrap();
        assert_eq!(used, 16);
        assert_eq!(d, c.quantized(3));
        assert!(AffineCoef::from_f32_bytes(3, &buf[..10]).is_none());
    }
}
