//! Codec error types.

/// Errors surfaced by compression, decompression, and stream parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the decoder expected.
    TruncatedStream {
        /// What the decoder was reading when the stream ran out.
        context: &'static str,
    },
    /// The stream does not start with the `EBLC` container magic.
    BadMagic,
    /// The container was produced by an incompatible format version.
    UnsupportedVersion(u8),
    /// The codec id byte does not name a known compressor.
    UnknownCodec(u8),
    /// A chain description (or a chunk→chain assignment built on one)
    /// is invalid as an *argument* — nothing was parsed from a stream.
    InvalidChain {
        /// Explanation of the rejection.
        reason: &'static str,
    },
    /// The stream was produced by a different codec chain than the one
    /// asked to decode it.
    ChainMismatch {
        /// Chain label of the decoder.
        expected: String,
        /// Chain label recorded in the stream header.
        got: String,
    },
    /// The stream's element type does not match the requested type.
    DtypeMismatch {
        /// Dtype recorded in the stream header.
        expected: &'static str,
        /// Dtype the caller asked to decode into.
        got: &'static str,
    },
    /// The stream checksum does not match its payload (corruption).
    ChecksumMismatch,
    /// A structurally invalid field (impossible shape, huffman table…).
    Corrupt {
        /// Which structure failed validation.
        context: &'static str,
    },
    /// A sub-region decode request reaches outside the array bounds or
    /// does not match its rank.
    BadRegion {
        /// Which constraint the region violated.
        context: &'static str,
    },
    /// The requested error bound cannot be honoured.
    InvalidBound {
        /// Explanation of the rejection.
        reason: &'static str,
    },
    /// The input contains NaN/Inf samples, which EBLC bounds cannot cover.
    NonFiniteInput,
    /// A storage backend has no object under the requested key.
    NoSuchKey {
        /// The key that resolved to nothing.
        key: String,
    },
    /// A byte-range request reaches outside the stored object.
    StorageRange {
        /// Which access failed validation.
        context: &'static str,
    },
    /// A storage backend operation failed (I/O error, injected fault…).
    StorageIo {
        /// The operation that failed (`get`, `append`, …).
        op: &'static str,
        /// Backend-specific description of the failure.
        detail: String,
    },
    /// An internal invariant did not hold — a bug in this workspace,
    /// not bad input data. Surfaced as a typed error instead of a
    /// panic so one broken request cannot take down a serve daemon
    /// (the panic-freedom architecture rule).
    Internal {
        /// The invariant that failed.
        context: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::TruncatedStream { context } => {
                write!(f, "truncated stream while reading {context}")
            }
            CodecError::BadMagic => write!(f, "not an EBLC stream (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported stream version {v}"),
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::InvalidChain { reason } => write!(f, "invalid codec chain: {reason}"),
            CodecError::ChainMismatch { expected, got } => {
                write!(f, "stream was written by chain {got} but {expected} was asked to decode it")
            }
            CodecError::DtypeMismatch { expected, got } => {
                write!(f, "stream holds {expected} but {got} was requested")
            }
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            CodecError::Corrupt { context } => write!(f, "corrupt stream: invalid {context}"),
            CodecError::BadRegion { context } => {
                write!(f, "invalid decode region: {context}")
            }
            CodecError::InvalidBound { reason } => write!(f, "invalid error bound: {reason}"),
            CodecError::NonFiniteInput => write!(f, "input contains NaN or infinite samples"),
            CodecError::NoSuchKey { key } => write!(f, "no object stored under key '{key}'"),
            CodecError::StorageRange { context } => {
                write!(f, "byte range outside the stored object: {context}")
            }
            CodecError::StorageIo { op, detail } => {
                write!(f, "storage backend {op} failed: {detail}")
            }
            CodecError::Internal { context } => {
                write!(f, "internal invariant failed ({context}) — this is a bug")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec result alias.
pub type Result<T> = std::result::Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::TruncatedStream { context: "huffman table" };
        assert!(e.to_string().contains("huffman table"));
        let e = CodecError::DtypeMismatch { expected: "f32", got: "f64" };
        assert!(e.to_string().contains("f32") && e.to_string().contains("f64"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CodecError::BadMagic);
    }
}
