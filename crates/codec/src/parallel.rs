//! "OpenMP mode": thread-parallel block compression (paper §IV-C,
//! Fig. 10).
//!
//! The paper's strong-scaling study runs each compressor's OpenMP build
//! at 1–64 threads over a fixed problem. The OpenMP SZ/SZx designs split
//! the field into per-thread slabs, compress each independently, and
//! concatenate the pieces; we reproduce exactly that structure on a
//! dedicated rayon pool of the requested width.
//!
//! The relative error bound is resolved against the *global* value range
//! before splitting, so parallel output obeys the same ε contract as
//! serial output.

use crate::chain::ChainSpec;
use crate::error::{CodecError, Result};
use crate::framing;
use crate::traits::{compress_view, decompress, Compressor, ErrorBound};
use crate::util::{put_varint, ByteReader};
use eblcio_data::{Element, NdArray, Shape};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Magic for the parallel multi-chunk container.
const PAR_MAGIC: &[u8; 4] = b"EBLP";
/// Container version byte (carries a chain spec). The legacy layout
/// had no version field — its first post-magic byte was the codec id,
/// so any value in `1..=5` is parsed as that legacy layout and every
/// version value is chosen outside that range.
const PAR_VERSION: u8 = 0x10;

/// Reuses one rayon pool per thread count across calls — pool spin-up
/// would otherwise dominate small-problem strong-scaling measurements.
///
/// The registry lock is a `parking_lot::Mutex`, which has no poisoning:
/// a panic inside one compression job (worker panics propagate through
/// `install`) must not wedge the shared registry for every later caller
/// the way a poisoned `std::sync::Mutex` would.
///
/// Public so other parallel consumers (the chunked store) share the
/// same pools instead of spinning up competing ones.
pub fn pool_for(threads: usize) -> Result<Arc<rayon::ThreadPool>> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = pools.lock();
    if let Some(p) = guard.get(&threads) {
        return Ok(p.clone());
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|_| CodecError::Corrupt { context: "thread pool" })?;
    let pool = Arc::new(pool);
    guard.insert(threads, pool.clone());
    Ok(pool)
}

/// Splits `shape` into at most `n` contiguous slabs along dimension 0,
/// returning `(start_row, rows)` pairs.
pub fn slab_partition(shape: Shape, n: usize) -> Vec<(usize, usize)> {
    let d0 = shape.dim(0);
    let n = n.clamp(1, d0);
    let base = d0 / n;
    let extra = d0 % n;
    let mut out = Vec::with_capacity(n);
    let mut row = 0;
    for i in 0..n {
        let rows = base + usize::from(i < extra);
        out.push((row, rows));
        row += rows;
    }
    out
}

/// Compresses `data` with `threads` worker threads, emitting a
/// self-describing multi-chunk stream.
pub fn compress_parallel<T: Element>(
    codec: &dyn Compressor,
    data: &NdArray<T>,
    bound: ErrorBound,
    threads: usize,
) -> Result<Vec<u8>> {
    assert!(threads >= 1, "thread count must be >= 1");
    let shape = data.shape();
    // Resolve ε against the global range so slab-local compression keeps
    // the whole-array contract.
    let abs = bound.to_absolute(data.value_range())?;
    let slabs = slab_partition(shape, threads);

    let pool = pool_for(threads)?;
    let chunks: Vec<Result<Vec<u8>>> = pool.install(|| {
        slabs
            .par_iter()
            .map(|&(start, rows)| {
                // Dimension-0 slabs of a row-major array are contiguous:
                // each worker compresses a borrowed view, no copy.
                compress_view(codec, data.slab(start, rows), ErrorBound::Absolute(abs))
            })
            .collect()
    });

    let mut out = Vec::new();
    out.extend_from_slice(PAR_MAGIC);
    out.push(PAR_VERSION);
    codec.spec().encode_into(&mut out);
    out.push(crate::header::Header::dtype_of::<T>());
    framing::put_shape(&mut out, shape);
    framing::put_abs_bound(&mut out, abs);
    put_varint(&mut out, chunks.len() as u64);
    for c in chunks {
        let c = c?;
        put_varint(&mut out, c.len() as u64);
        out.extend_from_slice(&c);
    }
    Ok(out)
}

/// Parsed header of a [`compress_parallel`] multi-chunk stream.
///
/// Surfaces the fields the container records — in particular the
/// absolute error bound every slab was encoded with, which callers can
/// check against their request without decompressing anything.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelStreamInfo {
    /// Codec chain that produced every chunk.
    pub chain: ChainSpec,
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Shape of the full (concatenated) array.
    pub shape: Shape,
    /// Absolute error bound resolved against the global value range.
    pub abs_bound: f64,
    /// Number of independently compressed slabs.
    pub n_chunks: usize,
}

/// Parses and validates a parallel-container header, returning the
/// stream info and the per-chunk payload slices.
fn parse_parallel_header(stream: &[u8]) -> Result<(ParallelStreamInfo, Vec<&[u8]>)> {
    let mut r = ByteReader::new(stream);
    framing::expect_magic(&mut r, PAR_MAGIC)?;
    let chain = match r.u8("parallel version")? {
        PAR_VERSION => ChainSpec::decode(&mut r)?,
        // Legacy (version-less) layout: this byte was the codec id.
        legacy @ 1..=5 => ChainSpec::preset(crate::traits::CompressorId::from_u8(legacy)?),
        other => return Err(CodecError::UnsupportedVersion(other)),
    };
    let dtype = framing::read_dtype(&mut r)?;
    let shape = framing::read_shape(&mut r)?;
    // The bound every slab honoured. A NaN / non-positive / infinite
    // value cannot have been written by the encoder.
    let abs_bound = framing::read_abs_bound(&mut r, true)?;
    let n_chunks = r.varint("parallel chunk count")? as usize;
    if n_chunks == 0 || n_chunks > shape.dim(0) {
        return Err(CodecError::Corrupt { context: "parallel chunk count" });
    }
    let mut chunk_slices = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let len = r.varint("parallel chunk length")? as usize;
        chunk_slices.push(r.take(len, "parallel chunk")?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt { context: "parallel trailer" });
    }
    Ok((
        ParallelStreamInfo {
            chain,
            dtype,
            shape,
            abs_bound,
            n_chunks,
        },
        chunk_slices,
    ))
}

/// Parses a parallel stream's header without decompressing any chunk.
pub fn parallel_stream_info(stream: &[u8]) -> Result<ParallelStreamInfo> {
    parse_parallel_header(stream).map(|(info, _)| info)
}

/// Decompresses a [`compress_parallel`] stream with `threads` workers.
pub fn decompress_parallel<T: Element>(
    codec: &dyn Compressor,
    stream: &[u8],
    threads: usize,
) -> Result<NdArray<T>> {
    assert!(threads >= 1, "thread count must be >= 1");
    let (info, chunk_slices) = parse_parallel_header(stream)?;
    if info.chain != codec.spec() {
        return Err(CodecError::ChainMismatch {
            expected: codec.spec().label(),
            got: info.chain.label(),
        });
    }
    if info.dtype != crate::header::Header::dtype_of::<T>() {
        return Err(CodecError::DtypeMismatch {
            expected: if info.dtype == 0 { "f32" } else { "f64" },
            got: T::NAME,
        });
    }
    let shape = info.shape;
    let rank = shape.rank();

    let pool = pool_for(threads)?;
    let parts: Vec<Result<NdArray<T>>> = pool.install(|| {
        chunk_slices
            .par_iter()
            .map(|c| decompress::<T>(codec, c))
            .collect()
    });

    let mut out: Vec<T> = Vec::with_capacity(shape.len());
    let mut rows = 0usize;
    for p in parts {
        let p = p?;
        if p.shape().rank() != rank || p.shape().dims()[1..] != shape.dims()[1..] {
            return Err(CodecError::Corrupt { context: "parallel chunk shape" });
        }
        rows += p.shape().dim(0);
        out.extend_from_slice(p.as_slice());
    }
    if rows != shape.dim(0) || out.len() != shape.len() {
        return Err(CodecError::Corrupt { context: "parallel row total" });
    }
    Ok(NdArray::from_vec(shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::sz3::Sz3;
    use crate::codecs::szx::Szx;
    use eblcio_data::max_rel_error;

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(32, 16, 16), |i| {
            ((i[0] as f32) * 0.3).sin() * 20.0 + (i[1] as f32) - (i[2] as f32) * 0.5
        })
    }

    #[test]
    fn partition_covers_rows() {
        for (d0, n) in [(10, 3), (64, 8), (5, 8), (1, 4), (7, 7)] {
            let parts = slab_partition(Shape::d2(d0, 3), n);
            assert_eq!(parts.iter().map(|&(_, r)| r).sum::<usize>(), d0);
            assert!(parts.iter().all(|&(_, r)| r > 0));
            let mut row = 0;
            for &(start, rows) in &parts {
                assert_eq!(start, row);
                row += rows;
            }
        }
    }

    #[test]
    fn parallel_roundtrip_matches_bound() {
        let data = field();
        let codec = Sz3::default();
        for threads in [1, 2, 4, 8] {
            let stream =
                compress_parallel(&codec, &data, ErrorBound::Relative(1e-3), threads).unwrap();
            let back = decompress_parallel::<f32>(&codec, &stream, threads).unwrap();
            assert_eq!(back.shape(), data.shape());
            assert!(
                max_rel_error(&data, &back) <= 1e-3 * 1.0000001,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_bound_semantics() {
        // ε is resolved on the global range: a slab with a narrow local
        // range must not get a tighter/looser effective bound.
        let data = field();
        let codec = Szx;
        let serial = compress_parallel(&codec, &data, ErrorBound::Relative(1e-3), 1).unwrap();
        let parallel = compress_parallel(&codec, &data, ErrorBound::Relative(1e-3), 4).unwrap();
        let a = decompress_parallel::<f32>(&codec, &serial, 1).unwrap();
        let b = decompress_parallel::<f32>(&codec, &parallel, 4).unwrap();
        assert!(max_rel_error(&data, &a) <= 1e-3 * 1.0000001);
        assert!(max_rel_error(&data, &b) <= 1e-3 * 1.0000001);
    }

    #[test]
    fn more_threads_than_rows() {
        let data = NdArray::<f32>::from_fn(Shape::d2(3, 100), |i| (i[0] * 100 + i[1]) as f32);
        let codec = Szx;
        let stream = compress_parallel(&codec, &data, ErrorBound::Relative(1e-2), 16).unwrap();
        let back = decompress_parallel::<f32>(&codec, &stream, 16).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-2 * 1.0000001);
    }

    #[test]
    fn stream_info_surfaces_stored_bound() {
        let data = field();
        let stream =
            compress_parallel(&Sz3::default(), &data, ErrorBound::Relative(1e-3), 4).unwrap();
        let info = parallel_stream_info(&stream).unwrap();
        assert_eq!(info.chain, ChainSpec::preset(crate::traits::CompressorId::Sz3));
        assert_eq!(info.dtype, 0);
        assert_eq!(info.shape, data.shape());
        assert_eq!(info.n_chunks, 4);
        let expected = ErrorBound::Relative(1e-3)
            .to_absolute(data.value_range())
            .unwrap();
        assert_eq!(info.abs_bound, expected);
    }

    #[test]
    fn corrupt_abs_bound_rejected() {
        let data = field();
        let stream =
            compress_parallel(&Sz3::default(), &data, ErrorBound::Relative(1e-3), 2).unwrap();
        // Header layout: magic(4) + version(1) + chain spec (array u8 +
        // count u8 + one (id, param) pair for the SZ3 preset's LZ stage
        // = 4) + dtype(1) + rank(1) + one varint byte per dimension
        // (all dims < 128 here) + abs(8).
        let abs_at = 11 + data.shape().rank();
        for bad in [f64::NAN, -1.0, 0.0, f64::INFINITY] {
            let mut s = stream.clone();
            s[abs_at..abs_at + 8].copy_from_slice(&bad.to_bits().to_le_bytes());
            assert_eq!(
                decompress_parallel::<f32>(&Sz3::default(), &s, 2),
                Err(CodecError::Corrupt { context: "abs bound" }),
                "bad bound {bad}"
            );
            assert!(parallel_stream_info(&s).is_err());
        }
        // Unmodified stream still parses.
        assert!(decompress_parallel::<f32>(&Sz3::default(), &stream, 2).is_ok());
    }

    #[test]
    fn legacy_versionless_streams_still_decode() {
        // The pre-chain layout: magic | codec u8 | dtype u8 | rank u8 |
        // dims | abs | count | chunks — identical to the current layout
        // with the version + spec bytes replaced by the codec id. A
        // current stream rewritten that way must parse as the preset.
        let data = field();
        let codec = Szx;
        let stream = compress_parallel(&codec, &data, ErrorBound::Relative(1e-2), 3).unwrap();
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&stream[..4]);
        legacy.push(crate::traits::CompressorId::Szx as u8);
        // Skip version(1) + spec(2: Szx preset has no byte stages).
        legacy.extend_from_slice(&stream[7..]);
        let info = parallel_stream_info(&legacy).unwrap();
        assert_eq!(info.chain, ChainSpec::preset(crate::traits::CompressorId::Szx));
        let back = decompress_parallel::<f32>(&codec, &legacy, 3).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-2 * 1.0000001);
        // An unknown version byte is a typed error, not a misparse.
        let mut bad = stream.clone();
        bad[4] = 0x42;
        assert_eq!(
            parallel_stream_info(&bad),
            Err(CodecError::UnsupportedVersion(0x42))
        );
    }

    #[test]
    fn wrong_codec_rejected() {
        let data = field();
        let stream = compress_parallel(&Sz3::default(), &data, ErrorBound::Relative(1e-2), 2).unwrap();
        assert!(decompress_parallel::<f32>(&Szx, &stream, 2).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let data = field();
        let stream = compress_parallel(&Sz3::default(), &data, ErrorBound::Relative(1e-2), 2).unwrap();
        for cut in [3, 20, stream.len() / 2, stream.len() - 1] {
            assert!(decompress_parallel::<f32>(&Sz3::default(), &stream[..cut], 2).is_err());
        }
    }
}
