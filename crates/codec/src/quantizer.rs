//! Error-controlled linear quantization (the SZ-family core primitive).
//!
//! Given a prediction `p` for a sample `v` and an absolute error bound
//! `e`, the residual is mapped to an integer code
//! `q = round((v − p) / (2e))`; reconstruction `p + 2e·q` then differs
//! from `v` by at most `e`. Codes are folded into a bounded unsigned
//! alphabet centred on the quantizer's radius; residuals outside the
//! representable range become *outliers* stored losslessly, exactly like
//! SZ's "unpredictable data" path.

use eblcio_data::Element;

/// Code emitted for one sample: a bin index or an outlier marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantized {
    /// In-range residual: the unsigned code (0 is reserved for outliers;
    /// in-range codes are `1..=2·radius`; `radius` means zero residual
    /// after the +1 shift... see [`LinearQuantizer::quantize`]).
    Code(u32),
    /// Residual too large for the code range — store the value verbatim.
    Outlier,
}

/// Linear quantizer with a fixed absolute bound and code radius.
#[derive(Clone, Copy, Debug)]
pub struct LinearQuantizer {
    abs_bound: f64,
    inv_step: f64,
    step: f64,
    radius: i64,
}

impl LinearQuantizer {
    /// Creates a quantizer.
    ///
    /// * `abs_bound` — maximum allowed reconstruction error (> 0).
    /// * `radius` — half-width of the code alphabet (SZ default 32768).
    ///
    /// # Panics
    /// Panics if `abs_bound` is not finite-positive or radius < 1.
    pub fn new(abs_bound: f64, radius: u32) -> Self {
        assert!(
            abs_bound.is_finite() && abs_bound > 0.0,
            "abs_bound must be finite positive, got {abs_bound}"
        );
        assert!(radius >= 1, "radius must be >= 1");
        let step = 2.0 * abs_bound;
        Self {
            abs_bound,
            step,
            inv_step: 1.0 / step,
            radius: i64::from(radius),
        }
    }

    /// The absolute error bound.
    #[inline]
    pub fn abs_bound(&self) -> f64 {
        self.abs_bound
    }

    /// The code alphabet size (`2·radius + 1`, plus code 0 for outliers).
    #[inline]
    pub fn alphabet(&self) -> u32 {
        (2 * self.radius + 1) as u32
    }

    /// The code representing a zero residual (`radius + 1` — dominant in
    /// smooth data, which is what makes Huffman effective downstream).
    #[inline]
    pub fn zero_code(&self) -> u32 {
        (self.radius + 1) as u32
    }

    /// Quantizes sample `v` against prediction `p`.
    ///
    /// Returns the code and, via `recon`, the value the decoder will see
    /// (callers must continue predicting from `recon`, not `v`).
    #[inline]
    pub fn quantize(&self, v: f64, p: f64) -> (Quantized, f64) {
        let diff = v - p;
        let q = (diff * self.inv_step).round();
        if !q.is_finite() || q.abs() > self.radius as f64 {
            return (Quantized::Outlier, v);
        }
        let qi = q as i64;
        let recon = p + q * self.step;
        // Guard against catastrophic cancellation: verify the bound holds
        // in floating point, not just algebraically.
        if (recon - v).abs() > self.abs_bound {
            return (Quantized::Outlier, v);
        }
        (Quantized::Code((qi + self.radius + 1) as u32), recon)
    }

    /// Reconstructs a sample from its code and the decoder's prediction.
    ///
    /// Code 0 (outlier) must be handled by the caller; this method expects
    /// an in-range code.
    #[inline]
    pub fn reconstruct(&self, code: u32, p: f64) -> f64 {
        debug_assert!(code != 0, "outlier code passed to reconstruct");
        let qi = i64::from(code) - self.radius - 1;
        p + qi as f64 * self.step
    }
}

/// Appends `base + codes[i]·step` for every code to `out`, rounded into
/// `T` — the affine dequantization shared by fixed-point block decoders
/// (SZx packed blocks). The loop is structured as a fixed-width chunked
/// pass over flat slices so the compiler can vectorize it; it is
/// bit-identical to the scalar per-sample loop it replaces (each lane
/// performs the same `base + f64(q)·step` in the same order).
pub fn dequant_affine_into<T: Element>(codes: &[u32], base: f64, step: f64, out: &mut Vec<T>) {
    let start = out.len();
    out.resize(start + codes.len(), T::from_f64(0.0));
    let dst = &mut out[start..];
    let mut code_chunks = codes.chunks_exact(8);
    let mut dst_chunks = dst.chunks_exact_mut(8);
    for (d, c) in dst_chunks.by_ref().zip(code_chunks.by_ref()) {
        for (dd, &q) in d.iter_mut().zip(c) {
            *dd = T::from_f64(base + f64::from(q) * step);
        }
    }
    for (dd, &q) in dst_chunks.into_remainder().iter_mut().zip(code_chunks.remainder()) {
        *dd = T::from_f64(base + f64::from(q) * step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequant_kernel_matches_scalar_loop() {
        let codes: Vec<u32> = (0..1003).map(|i| (i * 2654435761u64 as usize % 4096) as u32).collect();
        let (base, step) = (-3.75f64, 0.004882813);
        let mut fast: Vec<f32> = Vec::new();
        dequant_affine_into(&codes, base, step, &mut fast);
        let slow: Vec<f32> = codes.iter().map(|&q| (base + f64::from(q) * step) as f32).collect();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!(f.to_bits(), s.to_bits());
        }
        // Appends after existing content rather than clobbering it.
        let mut tail: Vec<f64> = vec![1.0, 2.0];
        dequant_affine_into(&codes[..5], base, step, &mut tail);
        assert_eq!(tail.len(), 7);
        assert_eq!(tail[0], 1.0);
    }

    #[test]
    fn zero_residual_gets_zero_code() {
        let q = LinearQuantizer::new(0.1, 8);
        let (code, recon) = q.quantize(5.0, 5.0);
        assert_eq!(code, Quantized::Code(q.zero_code()));
        assert_eq!(recon, 5.0);
    }

    #[test]
    fn reconstruction_respects_bound() {
        let q = LinearQuantizer::new(0.05, 32768);
        for i in 0..10_000 {
            let v = (i as f64) * 0.013 - 60.0;
            let p = v + ((i * 7) % 100) as f64 * 0.02 - 1.0;
            match q.quantize(v, p) {
                (Quantized::Code(c), recon) => {
                    assert!((recon - v).abs() <= 0.05 + 1e-12, "v={v} p={p}");
                    assert_eq!(q.reconstruct(c, p), recon);
                }
                (Quantized::Outlier, recon) => assert_eq!(recon, v),
            }
        }
    }

    #[test]
    fn far_residuals_are_outliers() {
        let q = LinearQuantizer::new(0.01, 4);
        // |diff| = 1.0, step = 0.02, q = 50 > radius 4.
        assert_eq!(q.quantize(1.0, 0.0).0, Quantized::Outlier);
    }

    #[test]
    fn nan_prediction_is_outlier() {
        let q = LinearQuantizer::new(0.01, 8);
        assert_eq!(q.quantize(1.0, f64::NAN).0, Quantized::Outlier);
        assert_eq!(q.quantize(1.0, f64::INFINITY).0, Quantized::Outlier);
    }

    #[test]
    fn encoder_decoder_agree() {
        let q = LinearQuantizer::new(0.5, 100);
        let p = 10.0;
        for v in [9.0, 10.0, 11.0, 10.49, 9.51, 60.0, -40.0] {
            if let (Quantized::Code(c), recon) = q.quantize(v, p) {
                assert_eq!(q.reconstruct(c, p), recon);
            }
        }
    }

    #[test]
    fn codes_are_in_alphabet() {
        let q = LinearQuantizer::new(0.1, 16);
        for i in -20..=20 {
            let v = i as f64 * 0.2;
            if let (Quantized::Code(c), _) = q.quantize(v, 0.0) {
                assert!(c >= 1 && c < q.alphabet() + 1);
            }
        }
    }

    #[test]
    fn huge_bound_tiny_values() {
        let q = LinearQuantizer::new(1e30, 8);
        let (code, recon) = q.quantize(1.0, 0.0);
        assert_eq!(code, Quantized::Code(q.zero_code()));
        // recon = 0, error 1.0 <= 1e30.
        assert_eq!(recon, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_bound_rejected() {
        let _ = LinearQuantizer::new(0.0, 8);
    }
}
