//! C-Blosc2 analog: byte shuffle + LZ.
//!
//! Blosc's core trick is the *shuffle* filter: transposing the bytes of
//! fixed-width elements so that the high (slowly varying) bytes of
//! neighbouring floats become adjacent, where the LZ stage can match
//! them. We implement exactly that pipeline.

use super::LosslessCodec;
use crate::error::Result;
use crate::lz;

/// Shuffle + LZ compressor.
#[derive(Clone, Copy, Debug)]
pub struct BloscLike {
    element_size: usize,
}

impl BloscLike {
    /// Creates the codec for elements of `element_size` bytes (≥ 1).
    pub fn new(element_size: usize) -> Self {
        Self {
            element_size: element_size.max(1),
        }
    }
}

/// Byte-transposes `data` viewed as elements of `esize` bytes; a ragged
/// tail (len not divisible by `esize`) is carried through unshuffled.
pub fn shuffle(data: &[u8], esize: usize) -> Vec<u8> {
    let n_elem = data.len() / esize;
    let body = n_elem * esize;
    let mut out = Vec::with_capacity(data.len());
    for b in 0..esize {
        for e in 0..n_elem {
            out.push(data[e * esize + b]);
        }
    }
    out.extend_from_slice(&data[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], esize: usize) -> Vec<u8> {
    let n_elem = data.len() / esize;
    let body = n_elem * esize;
    let mut out = vec![0u8; data.len()];
    for b in 0..esize {
        for e in 0..n_elem {
            out[e * esize + b] = data[b * n_elem + e];
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

impl LosslessCodec for BloscLike {
    fn name(&self) -> &'static str {
        "C-Blosc2"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![self.element_size as u8];
        out.extend_from_slice(&lz::compress(&shuffle(data, self.element_size)));
        out
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>> {
        let esize = usize::from(
            *stream
                .first()
                .ok_or(crate::error::CodecError::TruncatedStream { context: "blosc esize" })?,
        )
        .max(1);
        let shuffled = lz::decompress(&stream[1..])?;
        Ok(unshuffle(&shuffled, esize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_involutive() {
        let data: Vec<u8> = (0..64).collect();
        for esize in [1, 2, 4, 8] {
            assert_eq!(unshuffle(&shuffle(&data, esize), esize), data);
        }
    }

    #[test]
    fn shuffle_groups_high_bytes() {
        // Two little-endian u32s 0x01020304, 0x11121314: after shuffle the
        // first plane holds both low bytes.
        let data = [0x04, 0x03, 0x02, 0x01, 0x14, 0x13, 0x12, 0x11];
        let s = shuffle(&data, 4);
        assert_eq!(s, [0x04, 0x14, 0x03, 0x13, 0x02, 0x12, 0x01, 0x11]);
    }

    #[test]
    fn ragged_tail_preserved() {
        let data: Vec<u8> = (0..11).collect();
        let s = shuffle(&data, 4);
        assert_eq!(&s[8..], &[8, 9, 10]);
        assert_eq!(unshuffle(&s, 4), data);
    }

    #[test]
    fn shuffle_helps_on_similar_floats() {
        // Slowly-varying floats share exponent bytes; shuffled LZ must
        // beat unshuffled LZ.
        let data: Vec<u8> = (0..20_000)
            .flat_map(|i| (1000.0f32 + i as f32 * 0.001).to_le_bytes())
            .collect();
        let plain = lz::compress(&data).len();
        let blosc = BloscLike::new(4).compress(&data).len();
        assert!(blosc < plain, "blosc {blosc} vs plain {plain}");
    }
}
