//! FPC (Burtscher & Ratanaworabhan, IEEE TC 2009): high-speed lossless
//! double compressor with FCM/DFCM hash predictors.
//!
//! Each value is predicted twice — by a *finite context method* table
//! (hash of recent values → next value) and a *differential* FCM (hash of
//! recent strides → next stride). The better predictor's XOR residual is
//! encoded as a selector bit, a 3-bit leading-zero-byte count, and the
//! surviving residual bytes. We keep the original's table sizes and
//! hash construction; f32 inputs run through a widened 32-bit variant.

use super::LosslessCodec;
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use crate::lz;
use crate::util::{put_varint, ByteReader};

const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// FCM/DFCM predictive lossless compressor.
#[derive(Clone, Copy, Debug)]
pub struct Fpc {
    element_size: usize,
}

impl Fpc {
    /// Creates the codec for 4- or 8-byte floats (other sizes fall back
    /// to plain LZ).
    pub fn new(element_size: usize) -> Self {
        Self { element_size }
    }
}

/// Predictor state shared by the encoder and decoder.
struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictors {
    fn new() -> Self {
        Self {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Returns (fcm prediction, dfcm prediction) for the next value.
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Folds the actual value into the tables and hashes.
    fn update(&mut self, actual: u64) {
        self.fcm[self.fcm_hash] = actual;
        self.fcm_hash = (((self.fcm_hash as u64) << 6) ^ (actual >> 48)) as usize & (TABLE_SIZE - 1);
        let stride = actual.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = stride;
        self.dfcm_hash =
            (((self.dfcm_hash as u64) << 2) ^ (stride >> 40)) as usize & (TABLE_SIZE - 1);
        self.last = actual;
    }
}

fn leading_zero_bytes(v: u64) -> u32 {
    v.leading_zeros() / 8
}

impl LosslessCodec for Fpc {
    fn name(&self) -> &'static str {
        "FPC"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let esize = self.element_size;
        if esize != 4 && esize != 8 {
            let mut out = vec![0u8];
            out.extend_from_slice(&lz::compress(data));
            return out;
        }
        let n = data.len() / esize;
        let tail = &data[n * esize..];

        let mut pred = Predictors::new();
        let mut bw = BitWriter::with_capacity(data.len());
        for e in 0..n {
            let mut v = 0u64;
            for b in (0..esize).rev() {
                v = (v << 8) | u64::from(data[e * esize + b]);
            }
            let (p_fcm, p_dfcm) = pred.predict();
            let (sel, resid) = {
                let r1 = v ^ p_fcm;
                let r2 = v ^ p_dfcm;
                if leading_zero_bytes(r1) >= leading_zero_bytes(r2) {
                    (false, r1)
                } else {
                    (true, r2)
                }
            };
            pred.update(v);
            // Leading zero bytes within the element width (residuals of a
            // 4-byte element always have ≥ 4 leading zero bytes in u64).
            let lzb = (leading_zero_bytes(resid) - (8 - esize as u32)).min(7);
            let keep = esize as u32 - lzb.min(esize as u32);
            bw.put_bit(sel);
            bw.put_bits(u64::from(lzb), 3);
            bw.put_bits(resid, keep * 8);
        }

        let mut out = vec![esize as u8];
        put_varint(&mut out, n as u64);
        put_varint(&mut out, tail.len() as u64);
        out.extend_from_slice(tail);
        out.extend_from_slice(&lz::compress(&bw.finish()));
        out
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>> {
        let mut r = ByteReader::new(stream);
        let esize = usize::from(r.u8("fpc esize")?);
        if esize != 4 && esize != 8 {
            return lz::decompress(&stream[1..]);
        }
        let n = r.varint("fpc count")? as usize;
        let tail_len = r.varint("fpc tail length")? as usize;
        let tail = r.take(tail_len, "fpc tail")?.to_vec();
        let bits = lz::decompress(&stream[r.position()..])?;
        let mut br = BitReader::new(&bits);

        let mut pred = Predictors::new();
        let mut out = Vec::with_capacity(n * esize + tail.len());
        for _ in 0..n {
            let sel = br.get_bit("fpc selector")?;
            let lzb = br.get_bits(3, "fpc lzb")? as u32;
            let keep = esize as u32 - lzb.min(esize as u32);
            let resid = br.get_bits(keep * 8, "fpc residual")?;
            let (p_fcm, p_dfcm) = pred.predict();
            let v = resid ^ if sel { p_dfcm } else { p_fcm };
            pred.update(v);
            for b in 0..esize {
                out.push((v >> (8 * b)) as u8);
            }
        }
        out.extend_from_slice(&tail);
        if out.len() != n * esize + tail.len() {
            return Err(CodecError::Corrupt { context: "fpc output length" });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data: Vec<u8> = (0..4000)
            .flat_map(|i| ((i as f64 * 0.015).sin() * 3.5 + 10.0).to_le_bytes())
            .collect();
        let c = Fpc::new(8);
        let enc = c.compress(&data);
        assert_eq!(c.decompress(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_f32() {
        let data: Vec<u8> = (0..4000)
            .flat_map(|i| ((i as f32 * 0.1).cos() * 2.0).to_le_bytes())
            .collect();
        let c = Fpc::new(4);
        let enc = c.compress(&data);
        assert_eq!(c.decompress(&enc).unwrap(), data);
    }

    #[test]
    fn repetitive_doubles_compress() {
        let data: Vec<u8> = (0..20_000)
            .flat_map(|i| ((i % 4) as f64).to_le_bytes())
            .collect();
        let c = Fpc::new(8);
        let enc = c.compress(&data);
        assert!(enc.len() < data.len() / 2, "{} bytes", enc.len());
        assert_eq!(c.decompress(&enc).unwrap(), data);
    }

    #[test]
    fn ragged_tail_roundtrip() {
        let mut data: Vec<u8> = (0..64).flat_map(|i| (i as f64).to_le_bytes()).collect();
        data.extend_from_slice(&[0xaa, 0xbb]);
        let c = Fpc::new(8);
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn unsupported_esize_falls_back() {
        let data = b"arbitrary bytes with some repetition repetition".to_vec();
        let c = Fpc::new(2);
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }
}
