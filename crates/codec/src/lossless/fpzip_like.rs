//! fpzip analog (Lindstrom & Isenburg, TVCG 2006): predictive lossless
//! float compression.
//!
//! Floats are mapped to sign-magnitude-monotonic unsigned integers, each
//! sample is predicted by its predecessor (the 1-D Lorenzo predictor the
//! original uses along the fastest axis), and the integer residuals are
//! zig-zag coded, split into byte planes, and LZ-compressed (standing in
//! for fpzip's range coder).

use super::LosslessCodec;
use crate::error::{CodecError, Result};
use crate::lz;
use crate::util::{unzigzag, zigzag};

/// Predictive float compressor.
#[derive(Clone, Copy, Debug)]
pub struct FpzipLike {
    element_size: usize,
}

impl FpzipLike {
    /// Creates the codec for 4- or 8-byte floats (other sizes fall back
    /// to plain LZ).
    pub fn new(element_size: usize) -> Self {
        Self { element_size }
    }
}

/// Interprets the low `width` bits of `v` as a signed integer.
#[inline]
fn sign_extend(v: u64, width: u32) -> i64 {
    if width == 64 {
        v as i64
    } else if v & (1u64 << (width - 1)) != 0 {
        (v as i64) - (1i64 << width)
    } else {
        v as i64
    }
}

#[inline]
fn width_mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Order-preserving map from IEEE-754 bits to unsigned integers: set the
/// sign bit for non-negative floats, complement all bits for negatives.
#[inline]
fn float_map(bits: u64, width: u32) -> u64 {
    let sign = 1u64 << (width - 1);
    if bits & sign != 0 {
        !bits & width_mask(width)
    } else {
        bits | sign
    }
}

/// Inverse of [`float_map`].
#[inline]
fn float_unmap(v: u64, width: u32) -> u64 {
    let sign = 1u64 << (width - 1);
    if v & sign != 0 {
        v ^ sign
    } else {
        !v & width_mask(width)
    }
}

impl LosslessCodec for FpzipLike {
    fn name(&self) -> &'static str {
        "fpzip"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let esize = self.element_size;
        if esize != 4 && esize != 8 {
            let mut out = vec![0u8];
            out.extend_from_slice(&lz::compress(data));
            return out;
        }
        let width = (esize * 8) as u32;
        let n = data.len() / esize;
        let tail = &data[n * esize..];

        // Residual stream, one zig-zag delta per sample, byte-planed.
        // Differences are taken modulo 2^width so the zig-zag code always
        // fits in `esize` bytes.
        let mask = width_mask(width);
        let mut planes = vec![Vec::with_capacity(n); esize];
        let mut prev = 0u64;
        for e in 0..n {
            let mut bits = 0u64;
            for b in (0..esize).rev() {
                bits = (bits << 8) | u64::from(data[e * esize + b]);
            }
            let mapped = float_map(bits, width);
            let diff = mapped.wrapping_sub(prev) & mask;
            let signed = sign_extend(diff, width);
            let delta = zigzag(signed) & mask;
            prev = mapped;
            for (b, plane) in planes.iter_mut().enumerate() {
                plane.push((delta >> (8 * b)) as u8);
            }
        }
        let mut joined = Vec::with_capacity(data.len());
        for p in &planes {
            joined.extend_from_slice(p);
        }
        joined.extend_from_slice(tail);

        let mut out = vec![esize as u8];
        out.extend_from_slice(&lz::compress(&joined));
        out
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>> {
        let esize = usize::from(*stream.first().ok_or(CodecError::TruncatedStream {
            context: "fpzip esize",
        })?);
        let joined = lz::decompress(&stream[1..])?;
        if esize != 4 && esize != 8 {
            return Ok(joined);
        }
        let width = (esize * 8) as u32;
        let n = joined.len() / esize;
        // `joined` = esize planes of n bytes + tail.
        let body = n * esize;
        if joined.len() < body {
            return Err(CodecError::Corrupt { context: "fpzip planes" });
        }
        let mask = width_mask(width);
        let mut out = Vec::with_capacity(joined.len());
        let mut prev = 0u64;
        for e in 0..n {
            let mut delta = 0u64;
            for b in (0..esize).rev() {
                delta = (delta << 8) | u64::from(joined[b * n + e]);
            }
            let mapped = prev.wrapping_add(unzigzag(delta) as u64) & mask;
            prev = mapped;
            let bits = float_unmap(mapped, width);
            for b in 0..esize {
                out.push((bits >> (8 * b)) as u8);
            }
        }
        out.extend_from_slice(&joined[body..]);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_map_is_monotone_f32() {
        let vals = [-1000.0f32, -1.5, -0.0, 0.0, 1e-30, 1.5, 1000.0];
        let mapped: Vec<u64> = vals
            .iter()
            .map(|v| float_map(u64::from(v.to_bits()), 32))
            .collect();
        for w in mapped.windows(2) {
            assert!(w[0] <= w[1], "{mapped:?}");
        }
    }

    #[test]
    fn float_map_roundtrip() {
        for v in [-2.5f32, 0.0, -0.0, 7.25, f32::MAX, f32::MIN_POSITIVE] {
            let bits = u64::from(v.to_bits());
            assert_eq!(float_unmap(float_map(bits, 32), 32), bits, "{v}");
        }
        for v in [-2.5f64, 0.0, 9.75e100, -1e-200] {
            let bits = v.to_bits();
            assert_eq!(float_unmap(float_map(bits, 64), 64), bits, "{v}");
        }
    }

    #[test]
    fn roundtrip_f32_stream() {
        let data: Vec<u8> = (0..5000)
            .flat_map(|i| ((i as f32 * 0.02).cos() * 42.0).to_le_bytes())
            .collect();
        let c = FpzipLike::new(4);
        let enc = c.compress(&data);
        assert_eq!(c.decompress(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_f64_stream() {
        let data: Vec<u8> = (0..3000)
            .flat_map(|i| ((i as f64 * 0.013).sin() * 7.0).to_le_bytes())
            .collect();
        let c = FpzipLike::new(8);
        let enc = c.compress(&data);
        assert_eq!(c.decompress(&enc).unwrap(), data);
    }

    #[test]
    fn smooth_floats_compress() {
        let data: Vec<u8> = (0..50_000)
            .flat_map(|i| (100.0f32 + (i as f32 * 1e-4).sin()).to_le_bytes())
            .collect();
        let c = FpzipLike::new(4);
        let enc = c.compress(&data);
        assert!(
            enc.len() < data.len() * 3 / 4,
            "{} vs {}",
            enc.len(),
            data.len()
        );
    }

    #[test]
    fn ragged_tail_roundtrip() {
        let mut data: Vec<u8> = (0..100)
            .flat_map(|i| (i as f32).to_le_bytes())
            .collect();
        data.extend_from_slice(&[1, 2, 3]);
        let c = FpzipLike::new(4);
        assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }
}
