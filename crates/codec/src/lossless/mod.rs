//! Lossless baselines for the paper's Figure 1.
//!
//! Figure 1 contrasts EBLC ratios against four general/float lossless
//! compressors: zstd, C-Blosc2, fpzip, and FPC. This module provides
//! from-scratch analogs of each — they only need to reproduce the
//! *qualitative* gap (lossless ≈ 1–3× on scientific floats vs EBLC's
//! 10–100×), which is a property of floating-point entropy, not of any
//! specific implementation:
//!
//! * [`ZstdLike`] — the crate's LZ77 backend used directly,
//! * [`BloscLike`] — byte shuffle (SIMD-style transpose) + LZ,
//! * [`FpzipLike`] — Lorenzo-predicted, sign-mapped integer residuals,
//!   byte-planed + LZ,
//! * [`Fpc`] — FCM/DFCM hash predictors with leading-zero-byte coding
//!   (Burtscher & Ratanaworabhan, IEEE TC 2009).

mod blosc;
mod fpc;
mod fpzip_like;

pub use blosc::{shuffle, unshuffle, BloscLike};
pub use fpc::Fpc;
pub use fpzip_like::FpzipLike;

use crate::error::Result;
use crate::lz;

/// A lossless byte-stream compressor.
pub trait LosslessCodec: Send + Sync {
    /// Display name (paper Fig. 1 legend).
    fn name(&self) -> &'static str;
    /// Compresses bytes; must be exactly invertible by
    /// [`Self::decompress`].
    fn compress(&self, data: &[u8]) -> Vec<u8>;
    /// Inverse of [`Self::compress`].
    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>>;
}

/// The LZ77 backend exposed as the "zstd" stand-in.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZstdLike;

impl LosslessCodec for ZstdLike {
    fn name(&self) -> &'static str {
        "zstd"
    }
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        lz::compress(data)
    }
    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>> {
        lz::decompress(stream)
    }
}

/// All four Figure 1 lossless baselines with the given element width.
pub fn all_baselines(element_size: usize) -> Vec<Box<dyn LosslessCodec>> {
    vec![
        Box::new(ZstdLike),
        Box::new(BloscLike::new(element_size)),
        Box::new(FpzipLike::new(element_size)),
        Box::new(Fpc::new(element_size)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_bytes(n: usize) -> Vec<u8> {
        (0..n)
            .flat_map(|i| ((i as f32 * 0.01).sin() * 100.0).to_le_bytes())
            .collect()
    }

    #[test]
    fn all_baselines_roundtrip() {
        let data = float_bytes(5000);
        for codec in all_baselines(4) {
            let c = codec.compress(&data);
            let d = codec.decompress(&c).unwrap();
            assert_eq!(d, data, "{} failed roundtrip", codec.name());
        }
    }

    #[test]
    fn all_baselines_roundtrip_empty_and_ragged() {
        for codec in all_baselines(4) {
            for len in [0usize, 1, 3, 4, 5, 7, 9] {
                let data: Vec<u8> = (0..len as u8).collect();
                let c = codec.compress(&data);
                assert_eq!(codec.decompress(&c).unwrap(), data, "{}", codec.name());
            }
        }
    }

    #[test]
    fn names_match_figure1() {
        let names: Vec<&str> = all_baselines(4).iter().map(|c| c.name()).collect();
        assert_eq!(names, ["zstd", "C-Blosc2", "fpzip", "FPC"]);
    }

    #[test]
    fn lossless_ratios_are_modest_on_float_data() {
        // The Figure 1 premise: lossless CR stays small on scientific
        // floats.
        let data = float_bytes(50_000);
        for codec in all_baselines(4) {
            let c = codec.compress(&data);
            let cr = data.len() as f64 / c.len() as f64;
            assert!(cr < 10.0, "{}: CR {cr}", codec.name());
            assert!(cr > 0.8, "{}: pathological expansion {cr}", codec.name());
        }
    }
}
