//! Sampling-based compression-ratio estimation (zPerf-style).
//!
//! The paper's related work (§II-C) cites zPerf (Wang et al., IEEE TC
//! 2023), a gray-box model that predicts SZ/ZFP compression ratios
//! without running the full compressor. This module provides the
//! empirical variant every practitioner actually uses: compress a small,
//! evenly spaced sample of row-slabs and extrapolate. It lets the
//! advisor price a configuration at a fraction of the full compression
//! cost — which matters because the §III conditions must be *cheap* to
//! evaluate to be useful.

use crate::error::Result;
use crate::traits::{compress_view, Compressor, ErrorBound};
use eblcio_data::{Element, NdArray};

/// A compression-ratio estimate from sampled slabs.
#[derive(Clone, Copy, Debug)]
pub struct CrEstimate {
    /// Estimated compression ratio for the full array.
    pub cr: f64,
    /// Fraction of samples actually compressed.
    pub sampled_fraction: f64,
    /// Bytes of input sampled.
    pub sampled_bytes: usize,
}

/// Estimates the compression ratio of `codec` on `data` at `bound` by
/// compressing `n_slabs` evenly spaced row-slabs of `slab_rows` rows.
///
/// The per-slab framing overhead is subtracted using the measured
/// header/backend floor so small samples do not bias the estimate
/// pessimistic.
pub fn estimate_cr<T: Element>(
    codec: &dyn Compressor,
    data: &NdArray<T>,
    bound: ErrorBound,
    n_slabs: usize,
    slab_rows: usize,
) -> Result<CrEstimate> {
    let shape = data.shape();
    let d0 = shape.dim(0);
    let rows_per_slab = slab_rows.clamp(1, d0);
    let n_slabs = n_slabs.clamp(1, d0 / rows_per_slab.max(1)).max(1);

    // Resolve the relative bound on the *global* range so slab-local
    // compression matches full-array semantics.
    let abs = bound.to_absolute(data.value_range())?;

    // Framing floor: the cost of compressing a single row-slab, used to
    // de-bias the per-slab overhead. Slabs are borrowed views, so the
    // estimator's cost is the compression itself, not input copies.
    let floor = compress_view(codec, data.slab(0, 1), ErrorBound::Absolute(abs))?.len();

    let mut in_bytes = 0usize;
    let mut out_bytes = 0usize;
    let stride = d0 / n_slabs;
    for s in 0..n_slabs {
        let start = (s * stride).min(d0 - rows_per_slab);
        let sub = data.slab(start, rows_per_slab);
        let stream = compress_view(codec, sub, ErrorBound::Absolute(abs))?;
        in_bytes += sub.nbytes();
        // Subtract most of the per-slab framing floor (keep a little so
        // the estimate never divides by ~zero).
        out_bytes += stream.len().saturating_sub(floor * 3 / 4).max(8);
    }

    Ok(CrEstimate {
        cr: in_bytes as f64 / out_bytes as f64,
        sampled_fraction: in_bytes as f64 / data.nbytes() as f64,
        sampled_bytes: in_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::{sz3::Sz3, szx::Szx};
    use eblcio_data::Shape;

    fn smooth(n: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(n, n, n), |i| {
            ((i[0] as f32) * 0.17).sin() * 30.0
                + ((i[1] as f32) * 0.11).cos() * 20.0
                + (i[2] as f32) * 0.05
        })
    }

    #[test]
    fn estimate_tracks_actual_cr() {
        let data = smooth(32);
        for (codec, tol) in [
            (&Sz3::default() as &dyn crate::traits::Compressor, 0.6),
            (&Szx as &dyn crate::traits::Compressor, 0.4),
        ] {
            let actual = {
                let s = codec
                    .compress_f32(&data, ErrorBound::Relative(1e-3))
                    .unwrap();
                data.nbytes() as f64 / s.len() as f64
            };
            let est = estimate_cr(codec, &data, ErrorBound::Relative(1e-3), 4, 4).unwrap();
            let ratio = est.cr / actual;
            assert!(
                ratio > 1.0 - tol && ratio < 1.0 / (1.0 - tol),
                "{}: est {:.1} vs actual {actual:.1}",
                codec.name(),
                est.cr
            );
            assert!(est.sampled_fraction < 0.6);
        }
    }

    #[test]
    fn sampling_is_much_cheaper_than_full() {
        let data = smooth(32);
        let codec = Sz3::default();
        let est = estimate_cr(&codec, &data, ErrorBound::Relative(1e-3), 3, 2).unwrap();
        assert!(est.sampled_bytes < data.nbytes() / 4);
    }

    #[test]
    fn degenerate_inputs() {
        let tiny = NdArray::<f32>::from_fn(Shape::d1(3), |i| i[0] as f32);
        let codec = Szx;
        let est = estimate_cr(&codec, &tiny, ErrorBound::Relative(1e-2), 10, 10).unwrap();
        assert!(est.cr > 0.0 && est.cr.is_finite());
        assert!(est.sampled_fraction <= 1.0 + 1e-9);
    }

    #[test]
    fn estimate_orders_codecs_like_reality() {
        // SZ3 should out-compress SZx on smooth data, in estimate as in
        // reality.
        let data = smooth(24);
        let sz3 = estimate_cr(&Sz3::default(), &data, ErrorBound::Relative(1e-2), 4, 3).unwrap();
        let szx = estimate_cr(&Szx, &data, ErrorBound::Relative(1e-2), 4, 3).unwrap();
        assert!(sz3.cr > szx.cr, "sz3 {} vs szx {}", sz3.cr, szx.cr);
    }
}
