//! The self-describing `EBLC` stream container.
//!
//! Every chain (and thus every compressor) emits the same outer framing
//! so that streams can be identified, routed to the right decoder, and
//! checked for corruption. Version 2 carries the full codec-chain spec:
//!
//! ```text
//! "EBLC" | version=2 | chain spec | dtype u8 | rank u8
//! dims (rank × varint) | abs_bound f64 | payload crc32 u32
//! payload_len varint | payload…
//! ```
//!
//! Version 1 streams (a single codec id byte where the chain spec now
//! sits) remain readable forever: the codec byte maps onto the preset
//! chain for that compressor, which reproduces the monolithic pipeline
//! byte-for-byte. The `tests/golden_v1.rs` fixtures pin this.

use crate::chain::ChainSpec;
use crate::error::{CodecError, Result};
use crate::framing;
use crate::traits::CompressorId;
use crate::util::{crc32, put_varint, ByteReader};
use eblcio_data::{Element, Shape};

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"EBLC";
/// Current container version (carries a chain spec).
pub const VERSION: u8 = 2;
/// Legacy container version (single codec id byte).
pub const VERSION_V1: u8 = 1;

/// Parsed stream header.
#[derive(Clone, Debug, PartialEq)]
pub struct Header {
    /// The codec chain that produced the payload (v1 streams surface
    /// their codec byte as the matching preset chain).
    pub chain: ChainSpec,
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Original array shape.
    pub shape: Shape,
    /// Absolute error bound the encoder enforced (or, for achieved-error
    /// modes like ZFP fixed precision, measured).
    pub abs_bound: f64,
}

impl Header {
    /// Dtype tag for an element type.
    pub fn dtype_of<T: Element>() -> u8 {
        // Element is sealed to f32 (4 bytes) and f64 (8 bytes).
        if T::BYTES == 8 { 1 } else { 0 }
    }

    /// Checks that the stream's dtype matches `T`.
    pub fn expect_dtype<T: Element>(&self) -> Result<()> {
        if self.dtype == Self::dtype_of::<T>() {
            Ok(())
        } else {
            Err(CodecError::DtypeMismatch {
                expected: if self.dtype == 0 { "f32" } else { "f64" },
                got: T::NAME,
            })
        }
    }

    /// The paper codec this stream came from, when its chain is one of
    /// the five presets.
    pub fn codec_id(&self) -> Option<CompressorId> {
        self.chain.preset_id()
    }
}

/// Serializes a header + payload into a finished (v2) stream.
pub fn write_stream(header: &Header, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    header.chain.encode_into(&mut out);
    out.push(header.dtype);
    framing::put_shape(&mut out, header.shape);
    framing::put_abs_bound(&mut out, header.abs_bound);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Parses a v1 or v2 stream, verifying magic, version, and payload
/// checksum. Returns the header and the payload slice.
pub fn read_stream(stream: &[u8]) -> Result<(Header, &[u8])> {
    let mut r = ByteReader::new(stream);
    framing::expect_magic(&mut r, MAGIC)?;
    let version = r.u8("version")?;
    let chain = match version {
        VERSION_V1 => ChainSpec::preset(CompressorId::from_u8(r.u8("codec id")?)?),
        VERSION => ChainSpec::decode(&mut r)?,
        other => return Err(CodecError::UnsupportedVersion(other)),
    };
    let dtype = framing::read_dtype(&mut r)?;
    let shape = framing::read_shape(&mut r)?;
    let abs_bound = framing::read_abs_bound(&mut r, false)?;
    let crc_expect = r.u32("payload crc")?;
    let payload_len = r.varint("payload length")? as usize;
    let payload = r.take(payload_len, "payload")?;
    if crc32(payload) != crc_expect {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((
        Header {
            chain,
            dtype,
            shape,
            abs_bound,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            chain: ChainSpec::preset(CompressorId::Sz3),
            dtype: 0,
            shape: Shape::d3(26, 1800, 3600),
            abs_bound: 1e-3,
        }
    }

    /// Hand-writes the v1 framing for the same header (what the seed
    /// encoder emitted).
    fn v1_stream_of(header: &Header, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_V1);
        out.push(header.chain.array as u8);
        out.push(header.dtype);
        framing::put_shape(&mut out, header.shape);
        framing::put_abs_bound(&mut out, header.abs_bound);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn roundtrip() {
        let payload = b"the payload".to_vec();
        let stream = write_stream(&sample_header(), &payload);
        let (h, p) = read_stream(&stream).unwrap();
        assert_eq!(h, sample_header());
        assert_eq!(p, payload.as_slice());
    }

    #[test]
    fn roundtrip_custom_chain() {
        let header = Header {
            chain: ChainSpec::parse("sz2+shuffle8+lz").unwrap(),
            dtype: 1,
            shape: Shape::d2(33, 17),
            abs_bound: 0.5,
        };
        let stream = write_stream(&header, b"xyz");
        let (h, p) = read_stream(&stream).unwrap();
        assert_eq!(h, header);
        assert_eq!(h.codec_id(), None);
        assert_eq!(p, b"xyz");
    }

    #[test]
    fn v1_streams_parse_to_preset_chains() {
        let h = sample_header();
        let stream = v1_stream_of(&h, b"legacy payload");
        let (back, p) = read_stream(&stream).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.codec_id(), Some(CompressorId::Sz3));
        assert_eq!(p, b"legacy payload");
    }

    #[test]
    fn v1_unknown_codec_byte_rejected() {
        let mut stream = v1_stream_of(&sample_header(), b"x");
        stream[5] = 77;
        assert!(matches!(
            read_stream(&stream).unwrap_err(),
            CodecError::UnknownCodec(77)
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut stream = write_stream(&sample_header(), b"x");
        stream[0] = b'X';
        assert_eq!(read_stream(&stream).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn bad_version_detected() {
        let mut stream = write_stream(&sample_header(), b"x");
        stream[4] = 99;
        assert_eq!(
            read_stream(&stream).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn payload_corruption_detected() {
        let stream = write_stream(&sample_header(), b"sensitive-payload");
        let n = stream.len();
        let mut bad = stream.clone();
        bad[n - 3] ^= 0x01;
        assert_eq!(read_stream(&bad).unwrap_err(), CodecError::ChecksumMismatch);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let stream = write_stream(&sample_header(), b"0123456789");
        for cut in 0..stream.len() {
            assert!(read_stream(&stream[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn dtype_check() {
        let h = sample_header();
        assert!(h.expect_dtype::<f32>().is_ok());
        assert!(matches!(
            h.expect_dtype::<f64>(),
            Err(CodecError::DtypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_payload_ok() {
        let stream = write_stream(&sample_header(), b"");
        let (_, p) = read_stream(&stream).unwrap();
        assert!(p.is_empty());
    }
}
