//! The self-describing `EBLC` stream container.
//!
//! Every compressor in this crate emits the same outer framing so that
//! streams can be identified, routed to the right decoder, and checked
//! for corruption:
//!
//! ```text
//! "EBLC" | version u8 | codec u8 | dtype u8 | rank u8
//! dims (rank × varint) | abs_bound f64 | payload crc32 u32
//! payload_len varint | payload…
//! ```

use crate::error::{CodecError, Result};
use crate::traits::CompressorId;
use crate::util::{crc32, put_varint, ByteReader};
use eblcio_data::{Element, Shape};

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"EBLC";
/// Current container version.
pub const VERSION: u8 = 1;

/// Parsed stream header.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Header {
    /// Which compressor produced the payload.
    pub codec: CompressorId,
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Original array shape.
    pub shape: Shape,
    /// Absolute error bound the encoder enforced.
    pub abs_bound: f64,
}

impl Header {
    /// Dtype tag for an element type.
    pub fn dtype_of<T: Element>() -> u8 {
        match T::BYTES {
            4 => 0,
            8 => 1,
            _ => unreachable!("Element is sealed to f32/f64"),
        }
    }

    /// Checks that the stream's dtype matches `T`.
    pub fn expect_dtype<T: Element>(&self) -> Result<()> {
        if self.dtype == Self::dtype_of::<T>() {
            Ok(())
        } else {
            Err(CodecError::DtypeMismatch {
                expected: if self.dtype == 0 { "f32" } else { "f64" },
                got: T::NAME,
            })
        }
    }
}

/// Serializes a header + payload into a finished stream.
pub fn write_stream(header: &Header, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(header.codec as u8);
    out.push(header.dtype);
    out.push(header.shape.rank() as u8);
    for &d in header.shape.dims() {
        put_varint(&mut out, d as u64);
    }
    out.extend_from_slice(&header.abs_bound.to_bits().to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Parses a stream, verifying magic, version, and payload checksum.
///
/// Returns the header and the payload slice.
pub fn read_stream(stream: &[u8]) -> Result<(Header, &[u8])> {
    let mut r = ByteReader::new(stream);
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8("version")?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let codec = CompressorId::from_u8(r.u8("codec id")?)?;
    let dtype = r.u8("dtype")?;
    if dtype > 1 {
        return Err(CodecError::Corrupt { context: "dtype tag" });
    }
    let rank = r.u8("rank")? as usize;
    if rank == 0 || rank > 4 {
        return Err(CodecError::Corrupt { context: "rank" });
    }
    let mut dims = [0usize; 4];
    for d in dims.iter_mut().take(rank) {
        let v = r.varint("dimension")?;
        if v == 0 || v > 1 << 40 {
            return Err(CodecError::Corrupt { context: "dimension" });
        }
        *d = v as usize;
    }
    let shape = Shape::new(&dims[..rank]);
    let abs_bound = r.f64("abs bound")?;
    if !(abs_bound.is_finite() && abs_bound >= 0.0) {
        return Err(CodecError::Corrupt { context: "abs bound" });
    }
    let crc_expect = r.u32("payload crc")?;
    let payload_len = r.varint("payload length")? as usize;
    let payload = r.take(payload_len, "payload")?;
    if crc32(payload) != crc_expect {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((
        Header {
            codec,
            dtype,
            shape,
            abs_bound,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            codec: CompressorId::Sz3,
            dtype: 0,
            shape: Shape::d3(26, 1800, 3600),
            abs_bound: 1e-3,
        }
    }

    #[test]
    fn roundtrip() {
        let payload = b"the payload".to_vec();
        let stream = write_stream(&sample_header(), &payload);
        let (h, p) = read_stream(&stream).unwrap();
        assert_eq!(h, sample_header());
        assert_eq!(p, payload.as_slice());
    }

    #[test]
    fn bad_magic_detected() {
        let mut stream = write_stream(&sample_header(), b"x");
        stream[0] = b'X';
        assert_eq!(read_stream(&stream).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn bad_version_detected() {
        let mut stream = write_stream(&sample_header(), b"x");
        stream[4] = 99;
        assert_eq!(
            read_stream(&stream).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn payload_corruption_detected() {
        let stream = write_stream(&sample_header(), b"sensitive-payload");
        let n = stream.len();
        let mut bad = stream.clone();
        bad[n - 3] ^= 0x01;
        assert_eq!(read_stream(&bad).unwrap_err(), CodecError::ChecksumMismatch);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let stream = write_stream(&sample_header(), b"0123456789");
        for cut in 0..stream.len() {
            assert!(read_stream(&stream[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn dtype_check() {
        let h = sample_header();
        assert!(h.expect_dtype::<f32>().is_ok());
        assert!(matches!(
            h.expect_dtype::<f64>(),
            Err(CodecError::DtypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_payload_ok() {
        let stream = write_stream(&sample_header(), b"");
        let (_, p) = read_stream(&stream).unwrap();
        assert!(p.is_empty());
    }
}
