//! SZ2: block-based hybrid Lorenzo/regression prediction (Liang et al.,
//! IEEE Big Data 2018).
//!
//! The field is processed in small multi-dimensional blocks. For each
//! block the encoder fits an affine regression predictor and estimates
//! whether it beats the order-1 Lorenzo predictor on that block; the
//! winner's residuals are quantized with the error-controlled linear
//! quantizer, and the code stream is entropy-coded (canonical Huffman)
//! and passed through the LZ backend — the SZ2 pipeline of §II-B.

use super::common::{
    for_each_block, for_each_in_block, sz_block_dims, OutlierReader, SzPayload,
};
use super::impl_stage_codec;
use crate::error::{CodecError, Result};
use crate::predict::{fit_affine, lorenzo, AffineCoef, LorenzoStencil};
use crate::quantizer::{LinearQuantizer, Quantized};
use crate::scratch::{with_scratch, DecodeScratch};
use crate::traits::CompressorId;
use eblcio_data::{ArrayView, Element, NdArray, Shape};

/// Quantization code radius (SZ default: 2^15 bins each side).
const RADIUS: u32 = 32768;

/// The SZ2 compressor.
#[derive(Clone, Debug, Default)]
pub struct Sz2 {
    /// Per-rank block edge override; `None` uses SZ2's defaults.
    pub block_dims: Option<[usize; 4]>,
    /// Decode through the reference path (per-symbol Huffman, fresh
    /// allocations). Wire-identical; only speed differs.
    reference: bool,
}

impl Sz2 {
    /// A decoder pinned to the reference path — the baseline arm of the
    /// decode-bandwidth bench and the fast-path equivalence tests.
    pub fn reference_decoder() -> Self {
        Self { reference: true, ..Self::default() }
    }
    /// Array-stage encode: hybrid block prediction at an already
    /// resolved absolute bound, emitting the inner SZ payload (the
    /// chain's LZ byte stage supplies the backend pass).
    pub fn encode_impl<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        abs: f64,
    ) -> Result<(Vec<u8>, f64)> {
        let shape = data.shape();
        let rank = shape.rank();
        let quant = LinearQuantizer::new(abs, RADIUS);
        let block_dims = self.block_dims.unwrap_or_else(|| sz_block_dims(rank));

        let n = shape.len();
        let mut recon = vec![0.0f64; n];
        let raw: Vec<f64> = data.as_slice().iter().map(|v| v.to_f64()).collect();

        let mut codes: Vec<u32> = Vec::with_capacity(n);
        let mut outliers: Vec<u8> = Vec::new();
        let mut mode_bits: Vec<bool> = Vec::new();
        let mut coef_bytes: Vec<u8> = Vec::new();

        for_each_block(shape, &block_dims[..rank], |base, dims| {
            // Gather the raw block and fit the regression predictor.
            let block_len: usize = dims.iter().product();
            let mut block = Vec::with_capacity(block_len);
            for_each_in_block(shape, base, dims, |_, off| block.push(raw[off]));
            let coef = fit_affine(&block, dims).quantized(rank);

            // Mode selection on raw data: total absolute residual of the
            // regression plane vs the raw-data Lorenzo prediction.
            let mut reg_err = 0.0f64;
            let mut lor_err = 0.0f64;
            let mut li = 0usize;
            for_each_in_block(shape, base, dims, |idx, off| {
                let local: Vec<usize> = idx.iter().zip(base).map(|(&i, &b)| i - b).collect();
                reg_err += (raw[off] - coef.eval(&local)).abs();
                lor_err += (raw[off] - lorenzo(&raw, shape, idx)).abs();
                li += 1;
            });
            let _ = li;
            let use_regression = reg_err < lor_err;
            mode_bits.push(use_regression);
            if use_regression {
                coef.to_f32_bytes(rank, &mut coef_bytes);
            }

            // Encode the block against the evolving reconstruction.
            for_each_in_block(shape, base, dims, |idx, off| {
                let v = raw[off];
                let pred = if use_regression {
                    let mut local = [0usize; 4];
                    for d in 0..rank {
                        local[d] = idx[d] - base[d];
                    }
                    coef.eval(&local[..rank])
                } else {
                    lorenzo(&recon, shape, idx)
                };
                // The decoder will round the f64 reconstruction to T, so
                // the bound must hold *after* that rounding; otherwise
                // fall back to the outlier path.
                match quant.quantize(v, pred) {
                    (Quantized::Code(c), r) => {
                        let rt = T::from_f64(r).to_f64();
                        if (rt - v).abs() <= quant.abs_bound() {
                            codes.push(c);
                            recon[off] = rt;
                        } else {
                            codes.push(0);
                            let t = T::from_f64(v);
                            t.write_le(&mut outliers);
                            recon[off] = t.to_f64();
                        }
                    }
                    (Quantized::Outlier, _) => {
                        codes.push(0);
                        let t = T::from_f64(v);
                        t.write_le(&mut outliers);
                        recon[off] = t.to_f64();
                    }
                }
            });
        });

        // Pack block modes into the side channel.
        let mut extra = Vec::with_capacity(mode_bits.len() / 8 + coef_bytes.len() + 8);
        crate::util::put_varint(&mut extra, mode_bits.len() as u64);
        let mut bw = crate::bitstream::BitWriter::new();
        for &b in &mode_bits {
            bw.put_bit(b);
        }
        extra.extend_from_slice(&bw.finish());
        extra.extend_from_slice(&coef_bytes);

        let payload = SzPayload {
            extra,
            outliers,
            codes,
        }
        .encode_inner();
        Ok((payload, abs))
    }

    /// Array-stage decode: mirror of [`Self::encode_impl`]. The default
    /// path borrows the thread's [`DecodeScratch`] and predicts interior
    /// samples through the precomputed [`LorenzoStencil`];
    /// [`Sz2::reference_decoder`] decodes with the per-symbol Huffman
    /// walk and the generic predictor. Both produce identical bits.
    pub fn decode_impl<T: Element>(
        &self,
        bytes: &[u8],
        shape: Shape,
        abs: f64,
    ) -> Result<NdArray<T>> {
        if self.reference {
            let p = SzPayload::decode_inner_reference(bytes)?;
            let mut recon = Vec::new();
            return self.decode_blocks(&p.codes, &p.outliers, &p.extra, shape, abs, false, &mut recon);
        }
        with_scratch(|s| {
            let DecodeScratch { codes, recon, huff, .. } = s;
            let (extra, outliers) = SzPayload::decode_inner_into(bytes, codes, huff)?;
            self.decode_blocks(codes, outliers, extra, shape, abs, true, recon)
        })
    }

    /// Shared block-decode body. `fast` routes interior predictions
    /// through the stencil (bit-identical either way — pinned by the
    /// `stencil_matches_lorenzo_at_interior_points` test).
    #[allow(clippy::too_many_arguments)]
    fn decode_blocks<T: Element>(
        &self,
        codes: &[u32],
        outlier_bytes: &[u8],
        extra: &[u8],
        shape: Shape,
        abs: f64,
        fast: bool,
        recon_buf: &mut Vec<f64>,
    ) -> Result<NdArray<T>> {
        let rank = shape.rank();
        let quant = LinearQuantizer::new(abs.max(f64::MIN_POSITIVE), RADIUS);
        let block_dims = self.block_dims.unwrap_or_else(|| sz_block_dims(rank));

        let mut outliers = OutlierReader::new(outlier_bytes);

        // Unpack modes.
        let mut er = crate::util::ByteReader::new(extra);
        let n_blocks = er.varint("sz2 block count")? as usize;
        let mode_bytes = er.take(n_blocks.div_ceil(8), "sz2 block modes")?;
        let mut modes = Vec::with_capacity(n_blocks);
        {
            let mut br = crate::bitstream::BitReader::new(mode_bytes);
            for _ in 0..n_blocks {
                modes.push(br.get_bit("sz2 mode bit")?);
            }
        }
        let coef_bytes = &extra[er.position()..];

        let n = shape.len();
        if codes.len() != n {
            return Err(CodecError::Corrupt { context: "sz2 code count" });
        }
        let stencil = LorenzoStencil::new(shape);
        recon_buf.clear();
        recon_buf.resize(n, 0.0);
        let recon = recon_buf;
        let mut out: Vec<T> = vec![T::default(); n];
        let mut code_i = 0usize;
        let mut block_i = 0usize;
        let mut coef_pos = 0usize;
        let mut failure: Option<CodecError> = None;

        for_each_block(shape, &block_dims[..rank], |base, dims| {
            if failure.is_some() {
                return;
            }
            if block_i >= modes.len() {
                failure = Some(CodecError::Corrupt { context: "sz2 block modes" });
                return;
            }
            let use_regression = modes[block_i];
            block_i += 1;
            let coef = if use_regression {
                match AffineCoef::from_f32_bytes(rank, &coef_bytes[coef_pos.min(coef_bytes.len())..]) {
                    Some((c, used)) => {
                        coef_pos += used;
                        c
                    }
                    None => {
                        failure = Some(CodecError::TruncatedStream { context: "sz2 coefficients" });
                        return;
                    }
                }
            } else {
                AffineCoef { c0: 0.0, c: [0.0; 4] }
            };

            // Blocks not touching any zero-coordinate face are entirely
            // interior: every Lorenzo prediction can use the stencil.
            let all_interior = fast && base.iter().all(|&b| b > 0);
            for_each_in_block(shape, base, dims, |idx, off| {
                if failure.is_some() {
                    return;
                }
                let pred = if use_regression {
                    let mut local = [0usize; 4];
                    for d in 0..rank {
                        local[d] = idx[d] - base[d];
                    }
                    coef.eval(&local[..rank])
                } else if all_interior || (fast && idx.iter().all(|&c| c > 0)) {
                    stencil.eval_interior(recon, off)
                } else {
                    lorenzo(recon, shape, idx)
                };
                let code = codes[code_i];
                code_i += 1;
                let v = if code == 0 {
                    match outliers.take::<T>() {
                        Ok(t) => {
                            recon[off] = t.to_f64();
                            t
                        }
                        Err(e) => {
                            failure = Some(e);
                            return;
                        }
                    }
                } else {
                    let t = T::from_f64(quant.reconstruct(code, pred));
                    recon[off] = t.to_f64();
                    t
                };
                out[off] = v;
            });
        });
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(NdArray::from_vec(shape, out))
    }
}

impl_stage_codec!(Sz2, CompressorId::Sz2);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Compressor, ErrorBound};
    use eblcio_data::{max_rel_error, psnr};

    fn smooth_2d(n: usize, m: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d2(n, m), |i| {
            let x = i[0] as f32 / n as f32;
            let y = i[1] as f32 / m as f32;
            (x * 6.0).sin() * (y * 4.0).cos() * 100.0
        })
    }

    #[test]
    fn roundtrip_respects_bound_2d() {
        let data = smooth_2d(50, 60);
        let c = Sz2::default();
        for eps in [1e-1, 1e-2, 1e-3, 1e-4] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            assert_eq!(back.shape(), data.shape());
            assert!(
                max_rel_error(&data, &back) <= eps * 1.0000001,
                "eps {eps}: {}",
                max_rel_error(&data, &back)
            );
        }
    }

    #[test]
    fn roundtrip_1d_3d_4d() {
        let c = Sz2::default();
        let d1 = NdArray::<f64>::from_fn(Shape::d1(500), |i| (i[0] as f64 * 0.01).sin());
        let d3 = NdArray::<f32>::from_fn(Shape::d3(17, 19, 23), |i| {
            (i[0] + i[1] * 2 + i[2]) as f32
        });
        let d4 = NdArray::<f64>::from_fn(Shape::d4(5, 6, 7, 8), |i| {
            i.iter().sum::<usize>() as f64 * 0.5
        });
        let s1 = c.compress_f64(&d1, ErrorBound::Relative(1e-3)).unwrap();
        assert!(max_rel_error(&d1, &c.decompress_f64(&s1).unwrap()) <= 1e-3 * 1.0000001);
        let s3 = c.compress_f32(&d3, ErrorBound::Relative(1e-3)).unwrap();
        assert!(max_rel_error(&d3, &c.decompress_f32(&s3).unwrap()) <= 1e-3 * 1.0000001);
        let s4 = c.compress_f64(&d4, ErrorBound::Relative(1e-3)).unwrap();
        assert!(max_rel_error(&d4, &c.decompress_f64(&s4).unwrap()) <= 1e-3 * 1.0000001);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_2d(100, 100);
        let c = Sz2::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-2)).unwrap();
        let cr = data.nbytes() as f64 / stream.len() as f64;
        assert!(cr > 4.0, "CR {cr}");
    }

    #[test]
    fn tighter_bound_larger_stream_higher_psnr() {
        let data = smooth_2d(64, 64);
        let c = Sz2::default();
        let loose = c.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
        let tight = c.compress_f32(&data, ErrorBound::Relative(1e-4)).unwrap();
        assert!(tight.len() > loose.len());
        let p_loose = psnr(&data, &c.decompress_f32(&loose).unwrap());
        let p_tight = psnr(&data, &c.decompress_f32(&tight).unwrap());
        assert!(p_tight > p_loose + 20.0, "{p_tight} vs {p_loose}");
    }

    #[test]
    fn constant_data_is_tiny_and_exact() {
        let data = NdArray::<f32>::from_vec(Shape::d2(32, 32), vec![3.25; 1024]);
        let c = Sz2::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
        assert!(stream.len() < 200, "stream {}", stream.len());
    }

    #[test]
    fn nan_input_rejected() {
        let mut data = NdArray::<f32>::zeros(Shape::d1(10));
        data.as_mut_slice()[5] = f32::NAN;
        let c = Sz2::default();
        assert_eq!(
            c.compress_f32(&data, ErrorBound::Relative(1e-3)),
            Err(CodecError::NonFiniteInput)
        );
    }

    #[test]
    fn wrong_codec_stream_rejected() {
        let data = smooth_2d(8, 8);
        let sz3 = crate::codecs::sz3::Sz3::default();
        let stream = sz3.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        assert!(Sz2::default().decompress_f32(&stream).is_err());
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let data = smooth_2d(8, 8);
        let c = Sz2::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        assert!(matches!(
            c.decompress_f64(&stream),
            Err(CodecError::DtypeMismatch { .. })
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = smooth_2d(16, 16);
        let c = Sz2::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        for cut in [0, 5, stream.len() / 2, stream.len() - 1] {
            assert!(c.decompress_f32(&stream[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn absolute_bound_honoured() {
        let data = smooth_2d(40, 40);
        let c = Sz2::default();
        let stream = c.compress_f32(&data, ErrorBound::Absolute(0.5)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        let max_err = data
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err <= 0.5000001, "{max_err}");
    }
}
