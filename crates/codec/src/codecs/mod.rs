//! The five EBLC pipelines the paper characterizes, as chain array
//! stages (the shared predict/quantize/transform front ends that
//! [`crate::chain`] presets recompose into the historical codecs).

pub mod common;
pub mod qoz;
pub mod sz2;
pub mod sz3;
pub mod szx;
pub mod zfp;

/// Implements [`crate::stage::ArrayStage`] by delegating to a codec's
/// generic `encode_impl`/`decode_impl` inherent methods, and
/// [`crate::traits::Compressor`] by wrapping the stage in its preset
/// chain ([`crate::chain::CodecChain::around`]) — so `Sz3::default()`
/// still compresses/decompresses exactly like the pre-chain monolith,
/// with the stage parameterization (block dims, cubic flag, …) of the
/// receiver.
macro_rules! impl_stage_codec {
    ($ty:ty, $id:expr) => {
        impl_stage_codec!(@imp $ty, $id, {});
    };
    // With the `region` token the stage additionally wires its inherent
    // `decode_region_impl` into the partial-decode trait methods.
    ($ty:ty, $id:expr, region) => {
        impl_stage_codec!(@imp $ty, $id, {
            fn supports_partial_decode(&self) -> bool {
                true
            }
            fn decode_f32_region(
                &self,
                bytes: &[u8],
                shape: eblcio_data::Shape,
                abs: f64,
                origin: &[usize],
                extent: &[usize],
            ) -> $crate::error::Result<Option<eblcio_data::NdArray<f32>>> {
                self.decode_region_impl(bytes, shape, abs, origin, extent)
            }
            fn decode_f64_region(
                &self,
                bytes: &[u8],
                shape: eblcio_data::Shape,
                abs: f64,
                origin: &[usize],
                extent: &[usize],
            ) -> $crate::error::Result<Option<eblcio_data::NdArray<f64>>> {
                self.decode_region_impl(bytes, shape, abs, origin, extent)
            }
        });
    };
    (@imp $ty:ty, $id:expr, {$($region_fns:item)*}) => {
        impl $crate::stage::ArrayStage for $ty {
            $($region_fns)*
            fn id(&self) -> $crate::traits::CompressorId {
                $id
            }
            fn encode_f32(
                &self,
                data: eblcio_data::ArrayView<'_, f32>,
                abs: f64,
            ) -> $crate::error::Result<(Vec<u8>, f64)> {
                self.encode_impl(data, abs)
            }
            fn encode_f64(
                &self,
                data: eblcio_data::ArrayView<'_, f64>,
                abs: f64,
            ) -> $crate::error::Result<(Vec<u8>, f64)> {
                self.encode_impl(data, abs)
            }
            fn decode_f32(
                &self,
                bytes: &[u8],
                shape: eblcio_data::Shape,
                abs: f64,
            ) -> $crate::error::Result<eblcio_data::NdArray<f32>> {
                self.decode_impl(bytes, shape, abs)
            }
            fn decode_f64(
                &self,
                bytes: &[u8],
                shape: eblcio_data::Shape,
                abs: f64,
            ) -> $crate::error::Result<eblcio_data::NdArray<f64>> {
                self.decode_impl(bytes, shape, abs)
            }
        }

        impl $crate::traits::Compressor for $ty {
            fn spec(&self) -> $crate::chain::ChainSpec {
                $crate::chain::ChainSpec::preset($id)
            }
            fn compress_f32_view(
                &self,
                data: eblcio_data::ArrayView<'_, f32>,
                bound: $crate::traits::ErrorBound,
            ) -> $crate::error::Result<Vec<u8>> {
                $crate::traits::Compressor::compress_f32_view(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    data,
                    bound,
                )
            }
            fn compress_f64_view(
                &self,
                data: eblcio_data::ArrayView<'_, f64>,
                bound: $crate::traits::ErrorBound,
            ) -> $crate::error::Result<Vec<u8>> {
                $crate::traits::Compressor::compress_f64_view(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    data,
                    bound,
                )
            }
            fn decompress_f32(
                &self,
                stream: &[u8],
            ) -> $crate::error::Result<eblcio_data::NdArray<f32>> {
                $crate::traits::Compressor::decompress_f32(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    stream,
                )
            }
            fn decompress_f64(
                &self,
                stream: &[u8],
            ) -> $crate::error::Result<eblcio_data::NdArray<f64>> {
                $crate::traits::Compressor::decompress_f64(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    stream,
                )
            }
            fn decompress_f32_region(
                &self,
                stream: &[u8],
                origin: &[usize],
                extent: &[usize],
            ) -> $crate::error::Result<Option<eblcio_data::NdArray<f32>>> {
                $crate::traits::Compressor::decompress_f32_region(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    stream,
                    origin,
                    extent,
                )
            }
            fn decompress_f64_region(
                &self,
                stream: &[u8],
                origin: &[usize],
                extent: &[usize],
            ) -> $crate::error::Result<Option<eblcio_data::NdArray<f64>>> {
                $crate::traits::Compressor::decompress_f64_region(
                    &$crate::chain::CodecChain::around(Box::new(self.clone())),
                    stream,
                    origin,
                    extent,
                )
            }
        }
    };
}
pub(crate) use impl_stage_codec;
