//! The five EBLC pipelines the paper characterizes.

pub mod common;
pub mod qoz;
pub mod sz2;
pub mod sz3;
pub mod szx;
pub mod zfp;

/// Implements the [`crate::traits::Compressor`] trait by delegating to a
/// codec's generic `compress_impl`/`decompress_impl` inherent methods.
macro_rules! impl_compressor_via_impls {
    ($ty:ty, $id:expr) => {
        impl $crate::traits::Compressor for $ty {
            fn id(&self) -> $crate::traits::CompressorId {
                $id
            }
            fn compress_f32_view(
                &self,
                data: eblcio_data::ArrayView<'_, f32>,
                bound: $crate::traits::ErrorBound,
            ) -> $crate::error::Result<Vec<u8>> {
                self.compress_impl(data, bound)
            }
            fn compress_f64_view(
                &self,
                data: eblcio_data::ArrayView<'_, f64>,
                bound: $crate::traits::ErrorBound,
            ) -> $crate::error::Result<Vec<u8>> {
                self.compress_impl(data, bound)
            }
            fn decompress_f32(
                &self,
                stream: &[u8],
            ) -> $crate::error::Result<eblcio_data::NdArray<f32>> {
                self.decompress_impl(stream)
            }
            fn decompress_f64(
                &self,
                stream: &[u8],
            ) -> $crate::error::Result<eblcio_data::NdArray<f64>> {
                self.decompress_impl(stream)
            }
        }
    };
}
pub(crate) use impl_compressor_via_impls;
