//! ZFP: transform-based fixed-accuracy compression (Lindstrom, TVCG
//! 2014).
//!
//! Each 4^d block is aligned to a per-block common exponent as
//! fixed-point integers, decorrelated with the lifted ZFP transform,
//! reordered by total sequency, mapped to negabinary, and bitplane-coded
//! MSB-first (see [`crate::transform`]). In fixed-accuracy mode the
//! encoder keeps exactly as many bitplanes as the error bound requires —
//! and, in this implementation, *verifies* each block against the bound
//! on the decoder's own integer path, escalating planes (or falling back
//! to verbatim storage) so the EBLC guarantee is strict.

use super::common::{for_each_block, for_each_in_block};
use super::impl_stage_codec;
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use crate::traits::CompressorId;
use crate::transform::{
    decode_planes, encode_planes, fwd_transform, int_to_nega, inv_transform, nega_to_int,
    sequency_order, BLOCK_EDGE, FIXED_PREC,
};
use eblcio_data::{ArrayView, Element, NdArray};

/// Negabinary bit width coded per coefficient.
const TOTAL_BITS: u32 = (FIXED_PREC + 4) as u32;
/// Block modes.
const MODE_CODED: u64 = 0;
const MODE_ZERO: u64 = 1;
const MODE_RAW: u64 = 2;

/// ZFP operating modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ZfpMode {
    /// Error-bounded: keep exactly as many bitplanes as the bound
    /// requires, verified per block (the EBLC mode the paper sweeps).
    #[default]
    FixedAccuracy,
    /// ZFP's fixed-precision mode: a constant number of bitplanes per
    /// block. No error-bound guarantee — the achieved maximum error is
    /// recorded in the stream header instead. Used by the
    /// `ablation_zfp_planes` bench to expose the planes↔quality↔size
    /// trade directly.
    FixedPrecision(u32),
}

/// The ZFP compressor.
#[derive(Clone, Debug, Default)]
pub struct Zfp {
    /// Operating mode (default: fixed accuracy).
    pub mode: ZfpMode,
}

impl Zfp {
    /// Fixed-precision instance with `planes` bitplanes per block.
    pub fn with_fixed_precision(planes: u32) -> Self {
        Self {
            mode: ZfpMode::FixedPrecision(planes.clamp(1, TOTAL_BITS)),
        }
    }

    /// Array-stage encode in the configured mode, at an already
    /// resolved absolute bound. Fixed-precision streams return the
    /// *achieved* maximum error for the header instead of the bound.
    pub fn encode_impl<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        abs: f64,
    ) -> Result<(Vec<u8>, f64)> {
        let shape = data.shape();
        let rank = shape.rank();
        let perm = sequency_order(rank);
        let n_block = BLOCK_EDGE.pow(rank as u32);
        let samples = data.as_slice();

        let mut bw = BitWriter::with_capacity(data.nbytes() / 4);
        let block_dims = [BLOCK_EDGE; 4];
        let fixed_planes = match self.mode {
            ZfpMode::FixedAccuracy => None,
            ZfpMode::FixedPrecision(p) => Some(p.clamp(1, TOTAL_BITS)),
        };
        // Achieved maximum error, recorded in the header for
        // fixed-precision streams (no a-priori bound there).
        let mut achieved_err = 0.0f64;

        for_each_block(shape, &block_dims[..rank], |base, dims| {
            // Gather the block, edge-padded by replication.
            let mut padded = vec![0.0f64; n_block];
            let mut originals: Vec<T> = Vec::with_capacity(dims.iter().product());
            {
                let strides = shape.strides();
                let mut pidx = [0usize; 4];
                for slot in padded.iter_mut() {
                    let mut off = 0usize;
                    for d in 0..rank {
                        let c = (base[d] + pidx[d]).min(shape.dim(d) - 1);
                        off += c * strides[d];
                    }
                    *slot = samples[off].to_f64();
                    for d in (0..rank).rev() {
                        pidx[d] += 1;
                        if pidx[d] < BLOCK_EDGE {
                            break;
                        }
                        pidx[d] = 0;
                    }
                }
            }
            for_each_in_block(shape, base, dims, |_, off| originals.push(samples[off]));

            let max_abs = padded.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let zero_ok = if fixed_planes.is_some() {
                max_abs == 0.0
            } else {
                max_abs <= abs
            };
            if zero_ok {
                // Zero block: reconstructing 0 keeps every sample within
                // the bound (covers exact-zero blocks too).
                achieved_err = achieved_err.max(max_abs);
                bw.put_bits(MODE_ZERO, 2);
                return;
            }

            // Fixed-point alignment.
            let emax = max_abs.log2().floor() as i32;
            if emax < -1000 {
                // Subnormal territory: the fixed-point path would
                // overflow its scale factor; store verbatim.
                bw.put_bits(MODE_RAW, 2);
                let mut tmp = Vec::with_capacity(T::BYTES);
                for v in &originals {
                    tmp.clear();
                    v.write_le(&mut tmp);
                    for &b in &tmp {
                        bw.put_bits(u64::from(b), 8);
                    }
                }
                return;
            }
            let s_exp = FIXED_PREC - 3 - emax;
            let scale = (s_exp as f64).exp2();
            let inv_scale = (-s_exp as f64).exp2();
            let mut ints: Vec<i64> = padded.iter().map(|&v| (v * scale).round() as i64).collect();
            fwd_transform(&mut ints, rank);
            let nega: Vec<u64> = perm.iter().map(|&i| int_to_nega(ints[i])).collect();

            // Initial plane budget from the tolerance, then verify and
            // escalate on the decoder's exact path. Starting one plane
            // *optimistic* and escalating keeps the coded precision tight
            // against the bound (better CR) at the cost of an occasional
            // extra verification pass.
            let ok_planes = if let Some(p) = fixed_planes {
                // Fixed precision: constant plane count, record the
                // achieved error instead of enforcing a bound.
                let recon = Self::reconstruct_block(&nega, &perm, rank, p, inv_scale);
                let mut i = 0usize;
                for_each_in_block(shape, base, dims, |idx, _| {
                    let mut poff = 0usize;
                    for d in 0..rank {
                        poff = poff * BLOCK_EDGE + (idx[d] - base[d]);
                    }
                    let rt = T::from_f64(recon[poff]).to_f64();
                    achieved_err = achieved_err.max((rt - originals[i].to_f64()).abs());
                    i += 1;
                });
                Some(p)
            } else {
                let tol_int = abs * scale;
                let drop_bits =
                    tol_int.log2().floor().min(f64::from(TOTAL_BITS)) as i32 + 1;
                let mut planes =
                    (TOTAL_BITS as i32 - drop_bits).clamp(1, TOTAL_BITS as i32) as u32;
                loop {
                    if Self::verify_block::<T>(
                        &nega, &perm, rank, planes, inv_scale, &originals, base, dims, shape, abs,
                    ) {
                        break Some(planes);
                    }
                    if planes >= TOTAL_BITS {
                        break None;
                    }
                    planes = (planes + 2).min(TOTAL_BITS);
                }
            };

            match ok_planes {
                Some(p) => {
                    bw.put_bits(MODE_CODED, 2);
                    bw.put_bits((emax + 2048) as u64, 12);
                    bw.put_bits(u64::from(p), 7);
                    encode_planes(&mut bw, &nega, TOTAL_BITS, p);
                }
                None => {
                    // Bound tighter than the fixed-point path can honour:
                    // store the samples verbatim.
                    bw.put_bits(MODE_RAW, 2);
                    let mut tmp = Vec::with_capacity(T::BYTES);
                    for v in &originals {
                        tmp.clear();
                        v.write_le(&mut tmp);
                        for &b in &tmp {
                            bw.put_bits(u64::from(b), 8);
                        }
                    }
                }
            }
        });

        // Fixed-precision streams record the error actually achieved.
        let recorded = if fixed_planes.is_some() { achieved_err } else { abs };
        Ok((bw.finish(), recorded))
    }

    /// Simulates the decoder for one block and checks the bound.
    #[allow(clippy::too_many_arguments)]
    fn verify_block<T: Element>(
        nega: &[u64],
        perm: &[usize],
        rank: usize,
        planes: u32,
        inv_scale: f64,
        originals: &[T],
        base: &[usize],
        dims: &[usize],
        shape: eblcio_data::Shape,
        abs: f64,
    ) -> bool {
        let recon = Self::reconstruct_block(nega, perm, rank, planes, inv_scale);
        // Compare at the unpadded sample positions, in T precision.
        let mut i = 0usize;
        let mut ok = true;
        for_each_in_block(shape, base, dims, |idx, _| {
            if !ok {
                return;
            }
            let mut poff = 0usize;
            for d in 0..rank {
                poff = poff * BLOCK_EDGE + (idx[d] - base[d]);
            }
            let rt = T::from_f64(recon[poff]).to_f64();
            if (rt - originals[i].to_f64()).abs() > abs {
                ok = false;
            }
            i += 1;
        });
        ok
    }

    /// Shared encoder-verification / decoder reconstruction: truncated
    /// negabinary coefficients → block sample values.
    fn reconstruct_block(
        nega: &[u64],
        perm: &[usize],
        rank: usize,
        planes: u32,
        inv_scale: f64,
    ) -> Vec<f64> {
        let keep = planes.min(TOTAL_BITS);
        let mask: u64 = if keep >= 64 {
            u64::MAX
        } else {
            !((1u64 << (TOTAL_BITS - keep)) - 1)
        };
        let n_block = BLOCK_EDGE.pow(rank as u32);
        let mut ints = vec![0i64; n_block];
        for (i, &p) in perm.iter().enumerate() {
            ints[p] = nega_to_int(nega[i] & mask);
        }
        inv_transform(&mut ints, rank);
        ints.iter().map(|&q| q as f64 * inv_scale).collect()
    }

    /// Array-stage decode: mirror of [`Self::encode_impl`]. The block
    /// stream is self-describing (per-block exponents and plane counts),
    /// so the recorded bound is not needed to reconstruct.
    pub fn decode_impl<T: Element>(
        &self,
        payload: &[u8],
        shape: eblcio_data::Shape,
        _abs: f64,
    ) -> Result<NdArray<T>> {
        let rank = shape.rank();
        let perm = sequency_order(rank);
        let n_block = BLOCK_EDGE.pow(rank as u32);
        let mut br = BitReader::new(payload);
        let mut out: Vec<T> = vec![T::default(); shape.len()];
        let block_dims = [BLOCK_EDGE; 4];
        let mut failure: Option<CodecError> = None;

        for_each_block(shape, &block_dims[..rank], |base, dims| {
            if failure.is_some() {
                return;
            }
            let mode = match br.get_bits(2, "zfp block mode") {
                Ok(m) => m,
                Err(e) => {
                    failure = Some(e);
                    return;
                }
            };
            let res = (|| -> Result<()> {
                match mode {
                    MODE_ZERO => {
                        for_each_in_block(shape, base, dims, |_, off| {
                            out[off] = T::from_f64(0.0);
                        });
                    }
                    MODE_RAW => {
                        let mut buf = vec![0u8; T::BYTES];
                        let mut err = None;
                        for_each_in_block(shape, base, dims, |_, off| {
                            if err.is_some() {
                                return;
                            }
                            for b in buf.iter_mut() {
                                match br.get_bits(8, "zfp raw byte") {
                                    Ok(v) => *b = v as u8,
                                    Err(e) => {
                                        err = Some(e);
                                        return;
                                    }
                                }
                            }
                            match T::read_le(&buf) {
                                Some(v) => out[off] = v,
                                None => err = Some(CodecError::Corrupt { context: "zfp raw sample" }),
                            }
                        });
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                    MODE_CODED => {
                        let emax = br.get_bits(12, "zfp emax")? as i32 - 2048;
                        let planes = br.get_bits(7, "zfp planes")? as u32;
                        if planes == 0 || planes > TOTAL_BITS {
                            return Err(CodecError::Corrupt { context: "zfp plane count" });
                        }
                        let nega = decode_planes(&mut br, n_block, TOTAL_BITS, planes)?;
                        let s_exp = FIXED_PREC - 3 - emax;
                        let inv_scale = (-s_exp as f64).exp2();
                        let recon =
                            Self::reconstruct_block(&nega, &perm, rank, TOTAL_BITS, inv_scale);
                        for_each_in_block(shape, base, dims, |idx, off| {
                            let mut poff = 0usize;
                            for d in 0..rank {
                                poff = poff * BLOCK_EDGE + (idx[d] - base[d]);
                            }
                            out[off] = T::from_f64(recon[poff]);
                        });
                    }
                    _ => return Err(CodecError::Corrupt { context: "zfp block mode" }),
                }
                Ok(())
            })();
            if let Err(e) = res {
                failure = Some(e);
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(NdArray::from_vec(shape, out))
    }

    /// Partial decode of an axis-aligned region. The block stream is
    /// sequential (plane coding consumes a data-dependent bit count), so
    /// every block up to the last intersecting one is still *parsed* —
    /// but the expensive work per block (inverse transform, negabinary
    /// demapping, scatter; raw-byte reads skip via [`BitReader::skip_bits`])
    /// happens only for blocks that overlap the region, and parsing
    /// stops at the last intersecting block.
    pub fn decode_region_impl<T: Element>(
        &self,
        payload: &[u8],
        shape: eblcio_data::Shape,
        _abs: f64,
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<T>>> {
        let rank = shape.rank();
        let perm = sequency_order(rank);
        let n_block = BLOCK_EDGE.pow(rank as u32);
        let mut br = BitReader::new(payload);
        let out_shape = eblcio_data::Shape::new(extent);
        let mut out: Vec<T> = vec![T::default(); out_shape.len()];
        let out_strides = out_shape.strides();
        let block_dims = [BLOCK_EDGE; 4];
        let mut failure: Option<CodecError> = None;
        // Number of blocks intersecting the region, per dim — once all
        // are decoded the remaining stream need not be parsed at all.
        let mut remaining: usize = (0..rank)
            .map(|d| (origin[d] + extent[d] - 1) / BLOCK_EDGE - origin[d] / BLOCK_EDGE + 1)
            .product();

        for_each_block(shape, &block_dims[..rank], |base, dims| {
            if failure.is_some() || remaining == 0 {
                return;
            }
            let hit = (0..rank).all(|d| {
                base[d] < origin[d] + extent[d] && base[d] + dims[d] > origin[d]
            });
            // Intersection of this block with the region.
            let mut ibase = [0usize; 4];
            let mut idims = [0usize; 4];
            for d in 0..rank {
                ibase[d] = base[d].max(origin[d]);
                idims[d] = (base[d] + dims[d]).min(origin[d] + extent[d]).saturating_sub(ibase[d]);
            }
            let res = (|| -> Result<()> {
                match br.get_bits(2, "zfp block mode")? {
                    MODE_ZERO => {
                        if hit {
                            for_each_in_block(shape, &ibase[..rank], &idims[..rank], |idx, _| {
                                let mut ooff = 0usize;
                                for d in 0..rank {
                                    ooff += (idx[d] - origin[d]) * out_strides[d];
                                }
                                out[ooff] = T::from_f64(0.0);
                            });
                        }
                    }
                    MODE_RAW => {
                        if !hit {
                            let count: usize = dims.iter().product();
                            br.skip_bits((count * T::BYTES * 8) as u64, "zfp raw byte")?;
                        } else {
                            let mut buf = vec![0u8; T::BYTES];
                            let mut err = None;
                            for_each_in_block(shape, base, dims, |idx, _| {
                                if err.is_some() {
                                    return;
                                }
                                for b in buf.iter_mut() {
                                    match br.get_bits(8, "zfp raw byte") {
                                        Ok(v) => *b = v as u8,
                                        Err(e) => {
                                            err = Some(e);
                                            return;
                                        }
                                    }
                                }
                                let inside =
                                    (0..rank).all(|d| idx[d] >= origin[d] && idx[d] < origin[d] + extent[d]);
                                if !inside {
                                    return;
                                }
                                match T::read_le(&buf) {
                                    Some(v) => {
                                        let mut ooff = 0usize;
                                        for d in 0..rank {
                                            ooff += (idx[d] - origin[d]) * out_strides[d];
                                        }
                                        out[ooff] = v;
                                    }
                                    None => err = Some(CodecError::Corrupt { context: "zfp raw sample" }),
                                }
                            });
                            if let Some(e) = err {
                                return Err(e);
                            }
                        }
                    }
                    MODE_CODED => {
                        let emax = br.get_bits(12, "zfp emax")? as i32 - 2048;
                        let planes = br.get_bits(7, "zfp planes")? as u32;
                        if planes == 0 || planes > TOTAL_BITS {
                            return Err(CodecError::Corrupt { context: "zfp plane count" });
                        }
                        let nega = decode_planes(&mut br, n_block, TOTAL_BITS, planes)?;
                        if hit {
                            let s_exp = FIXED_PREC - 3 - emax;
                            let inv_scale = (-s_exp as f64).exp2();
                            let recon =
                                Self::reconstruct_block(&nega, &perm, rank, TOTAL_BITS, inv_scale);
                            for_each_in_block(shape, &ibase[..rank], &idims[..rank], |idx, _| {
                                let mut poff = 0usize;
                                let mut ooff = 0usize;
                                for d in 0..rank {
                                    poff = poff * BLOCK_EDGE + (idx[d] - base[d]);
                                    ooff += (idx[d] - origin[d]) * out_strides[d];
                                }
                                out[ooff] = T::from_f64(recon[poff]);
                            });
                        }
                    }
                    _ => return Err(CodecError::Corrupt { context: "zfp block mode" }),
                }
                Ok(())
            })();
            if let Err(e) = res {
                failure = Some(e);
            } else if hit {
                remaining -= 1;
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(Some(NdArray::from_vec(out_shape, out)))
    }
}

impl_stage_codec!(Zfp, CompressorId::Zfp, region);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Compressor, ErrorBound};
    use eblcio_data::{max_rel_error, Shape};

    fn smooth(n: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(n, n, n), |i| {
            let x = i[0] as f32 * 0.2;
            let y = i[1] as f32 * 0.15;
            let z = i[2] as f32 * 0.1;
            (x.sin() + y.cos() + (z * 0.5).sin()) * 30.0
        })
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = smooth(16);
        let c = Zfp::default();
        for eps in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            let err = max_rel_error(&data, &back);
            assert!(err <= eps * 1.0000001, "eps {eps}: err {err}");
        }
    }

    #[test]
    fn roundtrip_odd_shapes_all_ranks() {
        let c = Zfp::default();
        for shape in [
            Shape::d1(1),
            Shape::d1(5),
            Shape::d1(130),
            Shape::d2(5, 7),
            Shape::d2(4, 4),
            Shape::d3(9, 6, 5),
            Shape::d4(5, 5, 5, 5),
        ] {
            let data = NdArray::<f64>::from_fn(shape, |i| {
                (i.iter().sum::<usize>() as f64 * 0.31).cos() * 12.0
            });
            let stream = c.compress_f64(&data, ErrorBound::Relative(1e-3)).unwrap();
            let back = c.decompress_f64(&stream).unwrap();
            assert!(
                max_rel_error(&data, &back) <= 1e-3 * 1.0000001,
                "shape {shape}"
            );
        }
    }

    #[test]
    fn zero_field_is_tiny() {
        let data = NdArray::<f32>::zeros(Shape::d3(16, 16, 16));
        let c = Zfp::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
        // 64 blocks × 2 mode bits ⇒ well under 200 bytes with framing.
        assert!(stream.len() < 200, "{} bytes", stream.len());
    }

    #[test]
    fn compresses_smooth_data() {
        let data = smooth(16);
        let c = Zfp::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-2)).unwrap();
        let cr = data.nbytes() as f64 / stream.len() as f64;
        assert!(cr > 3.0, "CR {cr}");
    }

    #[test]
    fn cr_grows_with_looser_bounds() {
        let data = smooth(16);
        let c = Zfp::default();
        let mut last = usize::MAX;
        for eps in [1e-5, 1e-3, 1e-1] {
            let len = c
                .compress_f32(&data, ErrorBound::Relative(eps))
                .unwrap()
                .len();
            assert!(len <= last, "eps {eps}");
            last = len;
        }
    }

    #[test]
    fn mixed_magnitude_blocks() {
        // Exercises per-block exponents: tiny and huge values side by
        // side.
        let data = NdArray::<f64>::from_fn(Shape::d2(16, 16), |i| {
            if i[0] < 8 {
                1e-6 * (i[1] as f64 + 1.0)
            } else {
                1e6 * (i[1] as f64 + 1.0)
            }
        });
        let c = Zfp::default();
        let stream = c.compress_f64(&data, ErrorBound::Relative(1e-4)).unwrap();
        let back = c.decompress_f64(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-4 * 1.0000001);
    }

    #[test]
    fn negative_values_roundtrip() {
        let data = NdArray::<f32>::from_fn(Shape::d2(12, 12), |i| {
            -50.0 + (i[0] as f32) * 7.0 - (i[1] as f32) * 3.0
        });
        let c = Zfp::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-4)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-4 * 1.0000001);
    }

    #[test]
    fn truncation_detected() {
        let data = smooth(8);
        let c = Zfp::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        for cut in [6, 12, stream.len() - 1] {
            assert!(c.decompress_f32(&stream[..cut.min(stream.len())]).is_err());
        }
    }

    #[test]
    fn fixed_precision_quality_and_size_scale_with_planes() {
        use eblcio_data::psnr;
        let data = smooth(12);
        let mut last_psnr = 0.0;
        let mut last_len = 0usize;
        for planes in [8u32, 16, 28, 40] {
            let c = Zfp::with_fixed_precision(planes);
            // The bound argument is ignored for quality in this mode.
            let stream = c.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            let p = psnr(&data, &back);
            assert!(p > last_psnr, "planes {planes}: {p} vs {last_psnr}");
            assert!(stream.len() > last_len, "planes {planes}");
            last_psnr = p;
            last_len = stream.len();
        }
    }

    #[test]
    fn fixed_precision_header_records_achieved_error() {
        let data = smooth(8);
        let c = Zfp::with_fixed_precision(20);
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
        let (h, _) = crate::header::read_stream(&stream).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        let actual = data
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(actual <= h.abs_bound * 1.0000001, "{actual} vs {}", h.abs_bound);
    }

    #[test]
    fn region_decode_is_bit_identical_to_full_slice() {
        // Mixed block modes: a zero corner, smooth coded blocks, and a
        // huge-range block that falls back to raw storage.
        let data = NdArray::<f32>::from_fn(Shape::d3(13, 10, 9), |i| {
            if i[0] < 4 && i[1] < 4 && i[2] < 4 {
                0.0
            } else if i == [8, 8, 8] {
                1e30
            } else {
                ((i[0] as f32) * 0.3).sin() + ((i[1] as f32) * 0.2).cos() * (i[2] as f32)
            }
        });
        let c = Zfp::default();
        let stream = c.compress_f32(&data, ErrorBound::Absolute(1e-2)).unwrap();
        let full = c.decompress_f32(&stream).unwrap();
        for (origin, extent) in [
            ([0, 0, 0], [13, 10, 9]),
            ([3, 2, 1], [6, 5, 7]),
            ([12, 9, 8], [1, 1, 1]),
            ([0, 0, 0], [4, 4, 4]),
            ([7, 6, 5], [6, 4, 4]),
        ] {
            let part = c
                .decompress_f32_region(&stream, &origin, &extent)
                .unwrap()
                .expect("zfp supports partial decode");
            assert_eq!(part.shape(), Shape::new(&extent));
            for a in 0..extent[0] {
                for b in 0..extent[1] {
                    for d in 0..extent[2] {
                        let got = part.as_slice()[(a * extent[1] + b) * extent[2] + d];
                        let want = full.as_slice()
                            [((origin[0] + a) * 10 + origin[1] + b) * 9 + origin[2] + d];
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "({origin:?}, {extent:?}) at [{a},{b},{d}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fixed_precision_decoder_is_mode_agnostic() {
        // Streams decode correctly regardless of the decoder's mode.
        let data = smooth(8);
        let enc = Zfp::with_fixed_precision(24);
        let stream = enc.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
        let a = enc.decompress_f32(&stream).unwrap();
        let b = Zfp::default().decompress_f32(&stream).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
