//! Shared plumbing for the SZ-family pipelines: input validation, block
//! iteration, outlier transport, and the Huffman + LZ backend framing.

use crate::error::{CodecError, Result};
use crate::util::{put_varint, ByteReader};
use crate::{huffman, lz};
use eblcio_data::{ArrayView, Element, Shape};

/// Rejects inputs the error-bound contract cannot cover.
pub fn validate_input<T: Element>(data: ArrayView<'_, T>) -> Result<()> {
    if data.as_slice().iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(CodecError::NonFiniteInput)
    }
}

/// The standard SZ-family payload: codec-specific side info, raw outlier
/// samples, and Huffman-coded quantization codes. The SZ-family array
/// stages emit this *inner* serialization; the chain's LZ byte stage
/// (the paper pipeline's "Zstd" stage) supplies the backend pass that
/// used to be fused in.
pub struct SzPayload {
    /// Codec-specific side information (block modes, coefficients…).
    pub extra: Vec<u8>,
    /// Raw little-endian sample bytes for out-of-range residuals.
    pub outliers: Vec<u8>,
    /// Quantization codes in visit order (0 = outlier marker).
    pub codes: Vec<u32>,
}

impl SzPayload {
    /// Serializes the payload (no backend pass) — what an SZ-family
    /// array stage emits.
    pub fn encode_inner(&self) -> Vec<u8> {
        let mut inner = Vec::with_capacity(self.codes.len() / 2 + self.outliers.len() + 64);
        put_varint(&mut inner, self.extra.len() as u64);
        inner.extend_from_slice(&self.extra);
        put_varint(&mut inner, self.outliers.len() as u64);
        inner.extend_from_slice(&self.outliers);
        inner.extend_from_slice(&huffman::encode_block(&self.codes));
        inner
    }

    /// Inverse of [`Self::encode_inner`].
    pub fn decode_inner(inner: &[u8]) -> Result<Self> {
        let mut codes = Vec::new();
        let mut lut = huffman::HuffLookup::default();
        let (extra, outliers) = Self::decode_inner_into(inner, &mut codes, &mut lut)?;
        Ok(Self {
            extra: extra.to_vec(),
            outliers: outliers.to_vec(),
            codes,
        })
    }

    /// Zero-copy decode: `extra` and `outliers` come back as slices of
    /// `inner`, and the Huffman codes land in the caller's buffer
    /// (cleared first) — the arena-backed hot path of the SZ-family
    /// decoders. Bit- and error-identical to [`Self::decode_inner`].
    pub fn decode_inner_into<'a>(
        inner: &'a [u8],
        codes: &mut Vec<u32>,
        lut: &mut huffman::HuffLookup,
    ) -> Result<(&'a [u8], &'a [u8])> {
        let mut r = ByteReader::new(inner);
        let extra_len = r.varint("sz extra length")? as usize;
        let extra = r.take(extra_len, "sz extra")?;
        let outlier_len = r.varint("sz outlier length")? as usize;
        let outliers = r.take(outlier_len, "sz outliers")?;
        let used = huffman::decode_block_into(&inner[r.position()..], codes, lut)?;
        if r.position() + used != inner.len() {
            return Err(CodecError::Corrupt { context: "sz payload trailer" });
        }
        Ok((extra, outliers))
    }

    /// Frozen pre-optimization decode (per-symbol Huffman walk, fresh
    /// allocations throughout). Wire-compatible with
    /// [`Self::decode_inner`]; kept as the reference arm of the decode
    /// bandwidth gate and the fast-path equivalence tests.
    pub fn decode_inner_reference(inner: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(inner);
        let extra_len = r.varint("sz extra length")? as usize;
        let extra = r.take(extra_len, "sz extra")?.to_vec();
        let outlier_len = r.varint("sz outlier length")? as usize;
        let outliers = r.take(outlier_len, "sz outliers")?.to_vec();
        let (codes, used) = huffman::decode_block_reference(&inner[r.position()..])?;
        if r.position() + used != inner.len() {
            return Err(CodecError::Corrupt { context: "sz payload trailer" });
        }
        Ok(Self {
            extra,
            outliers,
            codes,
        })
    }

    /// Serializes and LZ-compresses the payload (the fused historical
    /// framing; equals the preset chains' `inner → lz` composition).
    pub fn encode(&self) -> Vec<u8> {
        lz::compress(&self.encode_inner())
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        Self::decode_inner(&lz::decompress(bytes)?)
    }
}

/// Sequential reader over the outlier byte stream.
pub struct OutlierReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> OutlierReader<'a> {
    /// Wraps the outlier bytes of a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Pops the next outlier sample.
    pub fn take<T: Element>(&mut self) -> Result<T> {
        let v = T::read_le(&self.bytes[self.pos.min(self.bytes.len())..])
            .ok_or(CodecError::TruncatedStream { context: "outlier sample" })?;
        self.pos += T::BYTES;
        Ok(v)
    }

    /// True when every outlier has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// Iterates a shape in fixed-size blocks (clipped at the upper edges),
/// invoking `f(base_index, block_dims)` in raster order of the block grid.
pub fn for_each_block(
    shape: Shape,
    block_dims: &[usize],
    mut f: impl FnMut(&[usize], &[usize]),
) {
    let rank = shape.rank();
    debug_assert_eq!(block_dims.len(), rank);
    let mut counts = [1usize; 4];
    for d in 0..rank {
        counts[d] = shape.dim(d).div_ceil(block_dims[d]);
    }
    let total: usize = counts[..rank].iter().product();
    let mut bidx = [0usize; 4];
    for _ in 0..total {
        let mut base = [0usize; 4];
        let mut dims = [0usize; 4];
        for d in 0..rank {
            base[d] = bidx[d] * block_dims[d];
            dims[d] = block_dims[d].min(shape.dim(d) - base[d]);
        }
        f(&base[..rank], &dims[..rank]);
        for d in (0..rank).rev() {
            bidx[d] += 1;
            if bidx[d] < counts[d] {
                break;
            }
            bidx[d] = 0;
        }
    }
}

/// Iterates the samples of one block in raster order, yielding
/// `(global_index, flat_offset)`.
pub fn for_each_in_block(
    shape: Shape,
    base: &[usize],
    dims: &[usize],
    mut f: impl FnMut(&[usize], usize),
) {
    let rank = shape.rank();
    let strides = shape.strides();
    let total: usize = dims.iter().product();
    let mut local = [0usize; 4];
    for _ in 0..total {
        let mut idx = [0usize; 4];
        let mut off = 0usize;
        for d in 0..rank {
            idx[d] = base[d] + local[d];
            off += idx[d] * strides[d];
        }
        f(&idx[..rank], off);
        for d in (0..rank).rev() {
            local[d] += 1;
            if local[d] < dims[d] {
                break;
            }
            local[d] = 0;
        }
    }
}

/// The default SZ block edge per rank (SZ2's defaults: long 1-D blocks,
/// 16² planes, 8³ and 6⁴ volumes).
pub fn sz_block_dims(rank: usize) -> [usize; 4] {
    match rank {
        1 => [256, 1, 1, 1],
        2 => [16, 16, 1, 1],
        3 => [8, 8, 8, 1],
        _ => [6, 6, 6, 6],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let p = SzPayload {
            extra: vec![1, 2, 3],
            outliers: vec![0xde, 0xad, 0xbe, 0xef],
            codes: (0..5000u32).map(|i| 32768 + (i % 7)).collect(),
        };
        let enc = p.encode();
        let d = SzPayload::decode(&enc).unwrap();
        assert_eq!(d.extra, p.extra);
        assert_eq!(d.outliers, p.outliers);
        assert_eq!(d.codes, p.codes);
    }

    #[test]
    fn payload_truncation_detected() {
        let p = SzPayload {
            extra: vec![],
            outliers: vec![],
            codes: vec![1, 2, 3, 2, 1],
        };
        let enc = p.encode();
        for cut in 0..enc.len() {
            assert!(SzPayload::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn outlier_reader_sequences() {
        let mut bytes = Vec::new();
        1.5f32.write_le(&mut bytes);
        (-2.25f32).write_le(&mut bytes);
        let mut r = OutlierReader::new(&bytes);
        assert_eq!(r.take::<f32>().unwrap(), 1.5);
        assert_eq!(r.take::<f32>().unwrap(), -2.25);
        assert!(r.exhausted());
        assert!(r.take::<f32>().is_err());
    }

    #[test]
    fn block_iteration_covers_exactly_once() {
        let shape = Shape::d3(10, 7, 5);
        let mut seen = vec![0u32; shape.len()];
        for_each_block(shape, &[4, 4, 4], |base, dims| {
            for_each_in_block(shape, base, dims, |_, off| {
                seen[off] += 1;
            });
        });
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn edge_blocks_are_clipped() {
        let shape = Shape::d2(5, 5);
        let mut blocks = Vec::new();
        for_each_block(shape, &[4, 4], |base, dims| {
            blocks.push((base.to_vec(), dims.to_vec()));
        });
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[3], (vec![4, 4], vec![1, 1]));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut a = eblcio_data::NdArray::<f32>::zeros(Shape::d1(4));
        assert!(validate_input(a.view()).is_ok());
        a.as_mut_slice()[2] = f32::NAN;
        assert_eq!(validate_input(a.view()), Err(CodecError::NonFiniteInput));
    }
}
