//! QoZ: quality-oriented interpolation compression (Liu et al., SC'22).
//!
//! QoZ builds on SZ3's interpolation pyramid but (1) *tightens* the error
//! bound on coarse levels — coarse points seed the prediction of many
//! fine points, so spending bits there buys disproportionate quality —
//! and (2) can auto-tune toward a user quality target (PSNR) instead of a
//! pure error bound. The result, visible in the paper's Fig. 9, is a
//! PSNR that sits above the other compressors at the same nominal ε,
//! bought with somewhat lower compression ratios and extra work.

use super::common::SzPayload;
use super::impl_stage_codec;
use super::sz3::{interp_decode, interp_decode_reference, interp_decode_with, interp_encode};
use crate::error::{CodecError, Result};
use crate::scratch::{with_scratch, DecodeScratch};
use crate::traits::CompressorId;
use eblcio_data::{metrics, ArrayView, Element, NdArray, Shape};

/// Per-level bound tightening factor (QoZ's `alpha`).
const DEFAULT_ALPHA: f64 = 1.5;
/// Floor: no level is tightened below `abs / DEFAULT_BETA`.
const DEFAULT_BETA: f64 = 4.0;

/// The QoZ compressor.
#[derive(Clone, Debug)]
pub struct Qoz {
    /// Level-wise tightening factor (> 1; 1 degenerates to SZ3).
    pub alpha: f64,
    /// Maximum tightening (bound floor divisor).
    pub beta: f64,
    /// Optional PSNR target: the encoder searches for the loosest bound
    /// meeting it (adds analysis passes — visible as extra energy).
    pub target_psnr: Option<f64>,
    /// Decode through the frozen pre-optimization path (per-symbol
    /// Huffman, fresh allocations). Wire-identical; only speed differs.
    reference: bool,
}

impl Default for Qoz {
    fn default() -> Self {
        Self {
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
            target_psnr: None,
            reference: false,
        }
    }
}

impl Qoz {
    /// QoZ tuned to reach (at least) the given PSNR in dB.
    pub fn with_target_psnr(psnr_db: f64) -> Self {
        Self {
            target_psnr: Some(psnr_db),
            ..Self::default()
        }
    }

    /// A decoder pinned to the frozen reference path — the baseline arm
    /// of the decode-bandwidth gate and the fast-path equivalence tests.
    pub fn reference_decoder() -> Self {
        Self { reference: true, ..Self::default() }
    }

    /// The absolute bound applied at interpolation level `level` when the
    /// finest-level bound is `abs`.
    fn level_bound(alpha: f64, beta: f64, abs: f64, level: u32) -> f64 {
        let tighten = alpha.powi(level.saturating_sub(1) as i32);
        (abs / tighten).max(abs / beta)
    }

    fn encode_once<T: Element>(&self, data: ArrayView<'_, T>, abs: f64) -> (Vec<u32>, Vec<u8>) {
        let (alpha, beta) = (self.alpha, self.beta);
        let anchor_abs = abs / beta;
        interp_encode(data, anchor_abs, |level| {
            Self::level_bound(alpha, beta, abs, level)
        }, true)
    }

    /// Array-stage encode: level-adaptive bounds (and optional PSNR
    /// search) at an already resolved absolute bound. Returns the inner
    /// SZ payload and the bound finally applied — the PSNR search may
    /// loosen it, and the header must record the achieved value.
    pub fn encode_impl<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        abs: f64,
    ) -> Result<(Vec<u8>, f64)> {
        if !(self.alpha >= 1.0 && self.beta >= 1.0) {
            return Err(CodecError::InvalidBound {
                reason: "QoZ alpha and beta must be >= 1",
            });
        }
        let range = data.value_range();
        let mut abs = abs;

        if let Some(target) = self.target_psnr {
            // Quality-target mode: geometric search for the loosest abs
            // that still meets the PSNR goal (bounded trials, like QoZ's
            // sampled auto-tuning). The PSNR check needs an owned
            // original; one copy here covers all trials.
            let original = data.to_owned();
            let mut best: Option<f64> = None;
            let mut trial = abs;
            for _ in 0..6 {
                let (codes, outliers) = self.encode_once(data, trial);
                let recon: NdArray<T> = interp_decode(
                    data.shape(),
                    &codes,
                    &outliers,
                    trial / self.beta,
                    |l| Self::level_bound(self.alpha, self.beta, trial, l),
                    true,
                )?;
                if metrics::psnr(&original, &recon) >= target {
                    best = Some(trial);
                    trial *= 2.0; // try looser
                } else {
                    trial *= 0.25; // tighten
                }
            }
            abs = best.unwrap_or(trial).min(1.0_f64.max(range));
        }

        let (codes, outliers) = self.encode_once(data, abs);
        let mut extra = Vec::with_capacity(16);
        extra.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        extra.extend_from_slice(&self.beta.to_bits().to_le_bytes());
        let payload = SzPayload {
            extra,
            outliers,
            codes,
        }
        .encode_inner();
        Ok((payload, abs))
    }

    /// Validates and unpacks the 16-byte `(alpha, beta)` side info.
    fn parse_extra(extra: &[u8]) -> Result<(f64, f64)> {
        if extra.len() != 16 {
            return Err(CodecError::Corrupt { context: "qoz parameters" });
        }
        // The length check above guarantees 16 bytes, so indexing is safe.
        let le8 = |b: &[u8]| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let alpha = f64::from_bits(le8(&extra[0..8]));
        let beta = f64::from_bits(le8(&extra[8..16]));
        if !(alpha.is_finite() && alpha >= 1.0 && beta.is_finite() && beta >= 1.0) {
            return Err(CodecError::Corrupt { context: "qoz parameters" });
        }
        Ok((alpha, beta))
    }

    /// Array-stage decode: mirror of [`Self::encode_impl`]. The default
    /// path borrows the thread's [`DecodeScratch`];
    /// [`Qoz::reference_decoder`] takes the frozen slow path.
    pub fn decode_impl<T: Element>(
        &self,
        bytes: &[u8],
        shape: Shape,
        abs: f64,
    ) -> Result<NdArray<T>> {
        if self.reference {
            let p = SzPayload::decode_inner_reference(bytes)?;
            let (alpha, beta) = Self::parse_extra(&p.extra)?;
            return interp_decode_reference(shape, &p.codes, &p.outliers, abs / beta, |l| {
                Self::level_bound(alpha, beta, abs, l)
            }, true);
        }
        with_scratch(|s| {
            let DecodeScratch { codes, recon, huff, .. } = s;
            let (extra, outliers) = SzPayload::decode_inner_into(bytes, codes, huff)?;
            let (alpha, beta) = Self::parse_extra(extra)?;
            interp_decode_with(shape, codes, outliers, abs / beta, |l| {
                Self::level_bound(alpha, beta, abs, l)
            }, true, recon)
        })
    }
}

impl_stage_codec!(Qoz, CompressorId::Qoz);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::sz3::Sz3;
    use crate::traits::{Compressor, ErrorBound};
    use eblcio_data::{max_rel_error, psnr};

    fn field(n: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(n, n, n), |i| {
            let x = i[0] as f32 / n as f32;
            let y = i[1] as f32 / n as f32;
            let z = i[2] as f32 / n as f32;
            ((x * 4.0).sin() * (y * 3.0).cos() + (z * 2.0).sin()) * 25.0
        })
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = field(20);
        let c = Qoz::default();
        for eps in [1e-1, 1e-3, 1e-5] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            assert!(max_rel_error(&data, &back) <= eps * 1.0000001);
        }
    }

    #[test]
    fn higher_psnr_than_sz3_at_same_bound() {
        // QoZ's defining quality behaviour (paper Fig. 9 outlier).
        let data = field(24);
        let qoz = Qoz::default();
        let sz3 = Sz3::default();
        let eps = 1e-2;
        let qs = qoz.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
        let ss = sz3.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
        let qp = psnr(&data, &qoz.decompress_f32(&qs).unwrap());
        let sp = psnr(&data, &sz3.decompress_f32(&ss).unwrap());
        assert!(qp > sp, "QoZ {qp} dB vs SZ3 {sp} dB");
        // ...bought with a comparable-or-larger stream (tightening only
        // touches the sparse coarse levels, so the cost is small).
        assert!(qs.len() as f64 >= ss.len() as f64 * 0.9, "{} vs {}", qs.len(), ss.len());
    }

    #[test]
    fn psnr_target_mode_meets_target() {
        let data = field(16);
        let c = Qoz::with_target_psnr(70.0);
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert!(psnr(&data, &back) >= 70.0);
    }

    #[test]
    fn level_bounds_monotone_tightening() {
        let abs = 0.1;
        let mut prev = f64::INFINITY;
        for level in 1..=10 {
            let b = Qoz::level_bound(1.5, 4.0, abs, level);
            assert!(b <= prev && b >= abs / 4.0 && b <= abs);
            prev = b;
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let data = field(8);
        let c = Qoz {
            alpha: 0.5,
            beta: 4.0,
            ..Qoz::default()
        };
        assert!(c.compress_f32(&data, ErrorBound::Relative(1e-3)).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let data = NdArray::<f64>::from_fn(Shape::d2(30, 30), |i| {
            (i[0] as f64 * 0.2).sin() + (i[1] as f64 * 0.1).cos()
        });
        let c = Qoz::default();
        let stream = c.compress_f64(&data, ErrorBound::Relative(1e-4)).unwrap();
        let back = c.decompress_f64(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-4 * 1.0000001);
    }
}
