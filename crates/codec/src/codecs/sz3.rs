//! SZ3: multi-level dynamic spline interpolation (Zhao et al. ICDE'21,
//! Liang et al. IEEE TBD'23).
//!
//! A coarse anchor lattice is coded first (Lorenzo chain along the
//! lattice), then each interpolation level predicts the new grid points
//! by cubic/linear splines from already-reconstructed neighbours (see
//! [`crate::interp`]), quantizes the residuals, and ships the codes
//! through Huffman + LZ. Compared to SZ2 this stores no per-block
//! regression coefficients, which is where its compression-ratio
//! advantage at loose bounds comes from.

use super::common::{OutlierReader, SzPayload};
use super::impl_stage_codec;
use crate::error::{CodecError, Result};
use crate::interp::{anchor_offsets, max_level, walk, walk_reference, Interp};
use crate::quantizer::{LinearQuantizer, Quantized};
use crate::scratch::{with_scratch, DecodeScratch};
use crate::traits::CompressorId;
use eblcio_data::{ArrayView, Element, NdArray, Shape};

/// Quantization code radius (same default as SZ2).
pub(crate) const RADIUS: u32 = 32768;

/// The SZ3 compressor.
#[derive(Clone, Debug)]
pub struct Sz3 {
    /// Use cubic spline stencils where four neighbours exist (SZ3's
    /// "dynamic spline"); `false` degrades every stencil to linear —
    /// the `ablation_predictors` bench quantifies what cubic buys.
    pub cubic: bool,
    /// Decode through the frozen pre-optimization path (per-symbol
    /// Huffman, fresh allocations). Wire-identical; only speed differs.
    reference: bool,
}

impl Default for Sz3 {
    fn default() -> Self {
        Self { cubic: true, reference: false }
    }
}

impl Sz3 {
    /// Linear-interpolation-only variant (ablation).
    pub fn linear_only() -> Self {
        Self { cubic: false, ..Self::default() }
    }

    /// A decoder pinned to the frozen reference path — the baseline arm
    /// of the decode-bandwidth gate and the fast-path equivalence tests.
    pub fn reference_decoder() -> Self {
        Self { reference: true, ..Self::default() }
    }
}

/// Degrades a cubic stencil to its central linear pair when cubic
/// interpolation is disabled (ablation mode).
#[inline]
pub(crate) fn effective_stencil(pred: Interp, cubic: bool) -> Interp {
    match pred {
        Interp::Cubic([_, b, c, _]) if !cubic => Interp::Linear([b, c]),
        other => other,
    }
}

/// Encodes samples with the interpolation walk; `level_abs` maps an
/// interpolation level to its absolute bound (constant for SZ3, tightened
/// per level by QoZ). Anchors use `anchor_abs`.
pub(crate) fn interp_encode<T: Element>(
    data: ArrayView<'_, T>,
    anchor_abs: f64,
    level_abs: impl Fn(u32) -> f64,
    cubic: bool,
) -> (Vec<u32>, Vec<u8>) {
    let shape = data.shape();
    let n = shape.len();
    let raw: Vec<f64> = data.as_slice().iter().map(|v| v.to_f64()).collect();
    let mut recon = vec![0.0f64; n];
    let mut codes = Vec::with_capacity(n);
    let mut outliers = Vec::new();

    let push = |v: f64,
                    pred: f64,
                    q: &LinearQuantizer,
                    off: usize,
                    recon: &mut [f64],
                    codes: &mut Vec<u32>,
                    outliers: &mut Vec<u8>| {
        match q.quantize(v, pred) {
            (Quantized::Code(c), r) => {
                let rt = T::from_f64(r).to_f64();
                if (rt - v).abs() <= q.abs_bound() {
                    codes.push(c);
                    recon[off] = rt;
                    return;
                }
                // Otherwise T-rounding pushed the reconstruction out of
                // bounds: fall through to the outlier path.
            }
            (Quantized::Outlier, _) => {}
        }
        codes.push(0);
        let t = T::from_f64(v);
        t.write_le(outliers);
        recon[off] = t.to_f64();
    };

    // Anchor lattice: Lorenzo chain in raster order.
    let anchor_quant = LinearQuantizer::new(anchor_abs, RADIUS);
    let mut prev = 0.0f64;
    for off in anchor_offsets(shape) {
        push(
            raw[off],
            prev,
            &anchor_quant,
            off,
            &mut recon,
            &mut codes,
            &mut outliers,
        );
        prev = recon[off];
    }

    // Interpolation pyramid.
    let mut cur_level = u32::MAX;
    let mut quant = anchor_quant;
    walk(shape, |task| {
        if task.level != cur_level {
            cur_level = task.level;
            quant = LinearQuantizer::new(level_abs(cur_level).max(f64::MIN_POSITIVE), RADIUS);
        }
        let pred = effective_stencil(task.pred, cubic).eval(&recon);
        push(
            raw[task.target],
            pred,
            &quant,
            task.target,
            &mut recon,
            &mut codes,
            &mut outliers,
        );
    });
    (codes, outliers)
}

/// Mirror of [`interp_encode`].
pub(crate) fn interp_decode<T: Element>(
    shape: Shape,
    codes: &[u32],
    outlier_bytes: &[u8],
    anchor_abs: f64,
    level_abs: impl Fn(u32) -> f64,
    cubic: bool,
) -> Result<NdArray<T>> {
    with_scratch(|s| {
        interp_decode_with(shape, codes, outlier_bytes, anchor_abs, level_abs, cubic, &mut s.recon)
    })
}

/// Reconstructs one sample from its code and prediction, writing it to
/// both the reconstruction plane and the output. The shared body of
/// every fused decode loop below.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn emit<T: Element>(
    codes: &[u32],
    code_i: &mut usize,
    outliers: &mut OutlierReader<'_>,
    quant: &LinearQuantizer,
    pred: f64,
    off: usize,
    recon: &mut [f64],
    out: &mut [T],
) -> Result<()> {
    let code = codes[*code_i];
    *code_i += 1;
    let t = if code == 0 {
        outliers.take::<T>()?
    } else {
        T::from_f64(quant.reconstruct(code, pred))
    };
    recon[off] = t.to_f64();
    out[off] = t;
    Ok(())
}

/// [`interp_decode`] with a caller-owned reconstruction buffer, so the
/// arena-backed decode path reuses the f64 plane across chunks.
///
/// The walk is *fused* into the decoder: the task sequence is exactly
/// [`walk`]'s (pinned against [`walk_reference`] by the oracle test),
/// but the stencil kind is resolved once per run instead of once per
/// sample, so each inner loop is a fixed-stencil pass over one flat
/// stride — no `Task` construction, no enum dispatch, no callback.
/// Bit-identical to [`interp_decode_reference`]: each sample performs
/// `Interp::eval`'s arithmetic in the same order (`* 0.0625` is an
/// exact power-of-two scale, the same correctly-rounded result as
/// `/ 16.0`), and codes/outliers are consumed in the same sequence.
pub(crate) fn interp_decode_with<T: Element>(
    shape: Shape,
    codes: &[u32],
    outlier_bytes: &[u8],
    anchor_abs: f64,
    level_abs: impl Fn(u32) -> f64,
    cubic: bool,
    recon_buf: &mut Vec<f64>,
) -> Result<NdArray<T>> {
    let n = shape.len();
    if codes.len() != n {
        return Err(CodecError::Corrupt { context: "sz3 code count" });
    }
    let rank = shape.rank();
    let strides = shape.strides();
    let mut outliers = OutlierReader::new(outlier_bytes);
    recon_buf.clear();
    recon_buf.resize(n, 0.0);
    let recon = recon_buf.as_mut_slice();
    let mut out = vec![T::default(); n];
    let mut code_i = 0usize;

    let anchor_quant = LinearQuantizer::new(anchor_abs.max(f64::MIN_POSITIVE), RADIUS);
    let mut prev = 0.0f64;
    for off in anchor_offsets(shape) {
        emit(codes, &mut code_i, &mut outliers, &anchor_quant, prev, off, recon, &mut out)?;
        prev = recon[off];
    }

    for level in (1..=max_level(shape)).rev() {
        let s = 1usize << level;
        let h = s / 2;
        let quant = LinearQuantizer::new(level_abs(level).max(f64::MIN_POSITIVE), RADIUS);
        for axis in 0..rank {
            let dim_a = shape.dim(axis);
            if h >= dim_a {
                continue;
            }
            // Lattice counts and per-dim flat steps, exactly as in
            // `walk`.
            let mut counts = [1usize; 4];
            for (d, count) in counts.iter_mut().enumerate().take(rank) {
                *count = if d == axis {
                    (dim_a - h).div_ceil(s)
                } else if d < axis {
                    shape.dim(d).div_ceil(h)
                } else {
                    shape.dim(d).div_ceil(s)
                };
            }
            let mut steps = [0usize; 4];
            for (d, sp) in steps.iter_mut().enumerate().take(rank) {
                *sp = if d < axis { h } else { s } * strides[d];
            }
            let axis_stride = strides[axis];
            let d1 = h * axis_stride;
            let d3 = 3 * h * axis_stride;
            let inner_n = counts[rank - 1];
            let inner_step = steps[rank - 1];
            let outer_total: usize = counts[..rank - 1].iter().product();
            let mut idx = [0usize; 4];
            let mut off0 = h * axis_stride;
            for _ in 0..outer_total {
                if axis == rank - 1 {
                    // The run varies the target-axis coordinate
                    // t = h + k·s: a linear-or-copy head sample, a cubic
                    // interior, then a linear and a copy tail (every
                    // predicate is monotone in k, so the segments are
                    // contiguous).
                    let mut o = off0;
                    let pred = if s < dim_a {
                        0.5 * (recon[o - d1] + recon[o + d1])
                    } else {
                        recon[o - d1]
                    };
                    emit(codes, &mut code_i, &mut outliers, &quant, pred, o, recon, &mut out)?;
                    o += inner_step;
                    let mut k = 1usize;
                    // Cubic needs t ≥ 3h (k ≥ 1) and t + 3h < dim_a
                    // (k·s ≤ dim_a − 4h − 1); without cubic stencils the
                    // interior degrades to linear and merges with the
                    // linear tail below.
                    let kc_hi = if cubic && dim_a > 4 * h {
                        ((dim_a - 4 * h - 1) / s).min(inner_n - 1)
                    } else {
                        0
                    };
                    while k <= kc_hi {
                        let pred = (-recon[o - d3] + 9.0 * recon[o - d1] + 9.0 * recon[o + d1]
                            - recon[o + d3])
                            * 0.0625;
                        emit(codes, &mut code_i, &mut outliers, &quant, pred, o, recon, &mut out)?;
                        o += inner_step;
                        k += 1;
                    }
                    // Linear while t + h < dim_a (k·s ≤ dim_a − 2h − 1).
                    let kl_hi = if dim_a > 2 * h {
                        ((dim_a - 2 * h - 1) / s).min(inner_n - 1)
                    } else {
                        0
                    };
                    while k <= kl_hi {
                        let pred = 0.5 * (recon[o - d1] + recon[o + d1]);
                        emit(codes, &mut code_i, &mut outliers, &quant, pred, o, recon, &mut out)?;
                        o += inner_step;
                        k += 1;
                    }
                    while k < inner_n {
                        let pred = recon[o - d1];
                        emit(codes, &mut code_i, &mut outliers, &quant, pred, o, recon, &mut out)?;
                        o += inner_step;
                        k += 1;
                    }
                } else {
                    // The target-axis coordinate is fixed for the whole
                    // run, so the stencil kind is too.
                    let t = h + idx[axis] * s;
                    let mut o = off0;
                    if cubic && t >= 3 * h && t + 3 * h < dim_a {
                        for _ in 0..inner_n {
                            let pred = (-recon[o - d3] + 9.0 * recon[o - d1]
                                + 9.0 * recon[o + d1]
                                - recon[o + d3])
                                * 0.0625;
                            emit(
                                codes, &mut code_i, &mut outliers, &quant, pred, o, recon,
                                &mut out,
                            )?;
                            o += inner_step;
                        }
                    } else if t + h < dim_a {
                        for _ in 0..inner_n {
                            let pred = 0.5 * (recon[o - d1] + recon[o + d1]);
                            emit(
                                codes, &mut code_i, &mut outliers, &quant, pred, o, recon,
                                &mut out,
                            )?;
                            o += inner_step;
                        }
                    } else {
                        for _ in 0..inner_n {
                            let pred = recon[o - d1];
                            emit(
                                codes, &mut code_i, &mut outliers, &quant, pred, o, recon,
                                &mut out,
                            )?;
                            o += inner_step;
                        }
                    }
                }
                // Outer odometer over dims 0..rank−1 — the innermost
                // digit already ran its full count inside the run.
                for d in (0..rank - 1).rev() {
                    idx[d] += 1;
                    if idx[d] < counts[d] {
                        off0 += steps[d];
                        break;
                    }
                    idx[d] = 0;
                    off0 -= steps[d] * (counts[d] - 1);
                }
            }
        }
    }
    Ok(NdArray::from_vec(shape, out))
}

/// Frozen pre-optimization mirror of [`interp_encode`] — fresh
/// allocations, no arena, and the pre-optimization
/// [`walk_reference`] schedule that recomputes each target offset as a
/// coordinate dot product. The baseline arm of the decode-bandwidth
/// gate; kept verbatim so "reference" keeps meaning the shipped PR-7
/// decoder.
pub(crate) fn interp_decode_reference<T: Element>(
    shape: Shape,
    codes: &[u32],
    outlier_bytes: &[u8],
    anchor_abs: f64,
    level_abs: impl Fn(u32) -> f64,
    cubic: bool,
) -> Result<NdArray<T>> {
    let n = shape.len();
    if codes.len() != n {
        return Err(CodecError::Corrupt { context: "sz3 code count" });
    }
    let mut outliers = OutlierReader::new(outlier_bytes);
    let mut recon = vec![0.0f64; n];
    let mut out = vec![T::default(); n];
    let mut code_i = 0usize;

    let pull = |pred: f64,
                    q: &LinearQuantizer,
                    off: usize,
                    code_i: &mut usize,
                    recon: &mut [f64],
                    out: &mut [T],
                    outliers: &mut OutlierReader<'_>|
     -> Result<()> {
        let code = codes[*code_i];
        *code_i += 1;
        let t = if code == 0 {
            outliers.take::<T>()?
        } else {
            T::from_f64(q.reconstruct(code, pred))
        };
        recon[off] = t.to_f64();
        out[off] = t;
        Ok(())
    };

    let anchor_quant = LinearQuantizer::new(anchor_abs.max(f64::MIN_POSITIVE), RADIUS);
    let mut prev = 0.0f64;
    for off in anchor_offsets(shape) {
        pull(
            prev,
            &anchor_quant,
            off,
            &mut code_i,
            &mut recon,
            &mut out,
            &mut outliers,
        )?;
        prev = recon[off];
    }

    let mut cur_level = u32::MAX;
    let mut quant = anchor_quant;
    let mut failure: Option<CodecError> = None;
    walk_reference(shape, |task| {
        if failure.is_some() {
            return;
        }
        if task.level != cur_level {
            cur_level = task.level;
            quant = LinearQuantizer::new(level_abs(cur_level).max(f64::MIN_POSITIVE), RADIUS);
        }
        let pred = effective_stencil(task.pred, cubic).eval(&recon);
        if let Err(e) = pull(
            pred,
            &quant,
            task.target,
            &mut code_i,
            &mut recon,
            &mut out,
            &mut outliers,
        ) {
            failure = Some(e);
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(NdArray::from_vec(shape, out))
}

impl Sz3 {
    /// Array-stage encode: multi-level interpolation prediction at an
    /// already resolved absolute bound, emitting the inner SZ payload.
    pub fn encode_impl<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        abs: f64,
    ) -> Result<(Vec<u8>, f64)> {
        let (codes, outliers) = interp_encode(data, abs, |_| abs, self.cubic);
        let payload = SzPayload {
            extra: vec![u8::from(self.cubic)],
            outliers,
            codes,
        }
        .encode_inner();
        Ok((payload, abs))
    }

    /// Array-stage decode: mirror of [`Self::encode_impl`]. The default
    /// path borrows the thread's [`DecodeScratch`] (codes, Huffman
    /// tables, reconstruction plane) and allocates only the output
    /// array; [`Sz3::reference_decoder`] takes the frozen slow path.
    pub fn decode_impl<T: Element>(
        &self,
        bytes: &[u8],
        shape: Shape,
        abs: f64,
    ) -> Result<NdArray<T>> {
        if self.reference {
            let p = SzPayload::decode_inner_reference(bytes)?;
            if p.extra.len() != 1 || p.extra[0] > 1 {
                return Err(CodecError::Corrupt { context: "sz3 parameters" });
            }
            let cubic = p.extra[0] == 1;
            return interp_decode_reference(shape, &p.codes, &p.outliers, abs, |_| abs, cubic);
        }
        with_scratch(|s| {
            let DecodeScratch { codes, recon, huff, .. } = s;
            let (extra, outliers) = SzPayload::decode_inner_into(bytes, codes, huff)?;
            if extra.len() != 1 || extra[0] > 1 {
                return Err(CodecError::Corrupt { context: "sz3 parameters" });
            }
            let cubic = extra[0] == 1;
            interp_decode_with(shape, codes, outliers, abs, |_| abs, cubic, recon)
        })
    }
}

impl_stage_codec!(Sz3, CompressorId::Sz3);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Compressor, ErrorBound};
    use eblcio_data::{max_rel_error, psnr};

    fn smooth_3d(n: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d3(n, n, n), |i| {
            let x = i[0] as f32 / n as f32;
            let y = i[1] as f32 / n as f32;
            let z = i[2] as f32 / n as f32;
            ((x * 5.0).sin() + (y * 3.0).cos() + (z * 7.0).sin()) * 40.0
        })
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = smooth_3d(24);
        let c = Sz3::default();
        for eps in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            let err = max_rel_error(&data, &back);
            assert!(err <= eps * 1.0000001, "eps {eps}: err {err}");
        }
    }

    #[test]
    fn roundtrip_awkward_shapes() {
        let c = Sz3::default();
        for shape in [
            Shape::d1(1),
            Shape::d1(3),
            Shape::d1(1023),
            Shape::d2(1, 50),
            Shape::d2(33, 17),
            Shape::d3(5, 6, 7),
            Shape::d4(3, 4, 5, 6),
        ] {
            let data = NdArray::<f64>::from_fn(shape, |i| {
                (i.iter().sum::<usize>() as f64 * 0.37).sin() * 10.0
            });
            let stream = c.compress_f64(&data, ErrorBound::Relative(1e-3)).unwrap();
            let back = c.decompress_f64(&stream).unwrap();
            assert!(
                max_rel_error(&data, &back) <= 1e-3 * 1.0000001,
                "shape {shape}"
            );
        }
    }

    #[test]
    fn beats_sz2_on_smooth_data_at_loose_bounds() {
        // The paper's Table III behaviour: interpolation wins at loose ε.
        let data = smooth_3d(32);
        let sz3 = Sz3::default()
            .compress_f32(&data, ErrorBound::Relative(1e-2))
            .unwrap();
        let sz2 = crate::codecs::sz2::Sz2::default()
            .compress_f32(&data, ErrorBound::Relative(1e-2))
            .unwrap();
        assert!(
            sz3.len() < sz2.len(),
            "SZ3 {} bytes vs SZ2 {} bytes",
            sz3.len(),
            sz2.len()
        );
    }

    #[test]
    fn psnr_scales_with_bound() {
        let data = smooth_3d(20);
        let c = Sz3::default();
        let mut last_psnr = 0.0;
        for eps in [1e-1, 1e-2, 1e-3] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let p = psnr(&data, &c.decompress_f32(&stream).unwrap());
            assert!(p > last_psnr, "eps {eps}: {p} vs {last_psnr}");
            last_psnr = p;
        }
    }

    #[test]
    fn rough_data_still_bounded() {
        // Pseudo-random data defeats interpolation; the bound must hold
        // anyway (via wide codes/outliers).
        let mut x = 0x2545F491u64;
        let data = NdArray::<f32>::from_fn(Shape::d2(40, 40), |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f32
        });
        let c = Sz3::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-4)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-4 * 1.0000001);
    }

    #[test]
    fn single_sample() {
        let data = NdArray::<f32>::from_vec(Shape::d1(1), vec![42.0]);
        let c = Sz3::default();
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert_eq!(back.as_slice(), &[42.0]);
    }

    #[test]
    fn cubic_beats_linear_on_smooth_data() {
        // The ablation DESIGN.md calls out: cubic stencils buy CR on
        // smooth fields, and the linear variant still honours the bound.
        let data = smooth_3d(24);
        let cubic = Sz3::default()
            .compress_f32(&data, ErrorBound::Relative(1e-3))
            .unwrap();
        let linear_codec = Sz3::linear_only();
        let linear = linear_codec
            .compress_f32(&data, ErrorBound::Relative(1e-3))
            .unwrap();
        assert!(
            cubic.len() < linear.len(),
            "cubic {} vs linear {}",
            cubic.len(),
            linear.len()
        );
        let back = linear_codec.decompress_f32(&linear).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-3 * 1.0000001);
        // Streams are self-describing: the default decoder handles both.
        let back2 = Sz3::default().decompress_f32(&linear).unwrap();
        assert_eq!(back.as_slice(), back2.as_slice());
    }

    #[test]
    fn corrupted_payload_detected() {
        let data = smooth_3d(8);
        let c = Sz3::default();
        let mut stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let n = stream.len();
        stream[n - 1] ^= 0xff;
        assert!(c.decompress_f32(&stream).is_err());
    }
}
