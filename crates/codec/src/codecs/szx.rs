//! SZx: ultra-fast error-bounded compression (Yu et al., HPDC'22).
//!
//! SZx trades compression ratio for speed: the field is cut into small
//! flat blocks, constant blocks (range ≤ 2ε) collapse to their midpoint,
//! and the rest are stored as fixed-point offsets from the block minimum
//! using just enough bits to honour the bound — no prediction, no entropy
//! coding. This is why SZx is the energy-efficiency winner across the
//! paper's Figures 7/10/11 while posting the lowest ratios in Table III.

use super::impl_stage_codec;
use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use crate::quantizer::dequant_affine_into;
use crate::scratch::with_scratch;
use crate::traits::CompressorId;
use crate::util::{put_varint, ByteReader};
use eblcio_data::{ArrayView, Element, NdArray, Shape};

/// Samples per block (SZx default).
const BLOCK: usize = 128;

/// Block encodings.
const MODE_CONSTANT: u8 = 0;
const MODE_PACKED: u8 = 1;
const MODE_RAW: u8 = 2;

/// The SZx compressor.
#[derive(Clone, Debug, Default)]
pub struct Szx;

impl Szx {
    /// Array-stage encode: the block constant/fixed-point scheme at an
    /// already resolved absolute bound (raw coded bytes, no backend).
    pub fn encode_impl<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        abs: f64,
    ) -> Result<(Vec<u8>, f64)> {
        let step = 2.0 * abs;

        let samples = data.as_slice();
        let mut out = Vec::with_capacity(samples.len() / 2 + 64);
        put_varint(&mut out, samples.len().div_ceil(BLOCK) as u64);

        for block in samples.chunks(BLOCK) {
            let mut mn = block[0].to_f64();
            let mut mx = mn;
            for v in block {
                let f = v.to_f64();
                if f < mn {
                    mn = f;
                }
                if f > mx {
                    mx = f;
                }
            }
            let range = mx - mn;

            if range <= step {
                // Constant block: the midpoint is within ε of every
                // sample (after T rounding, which we verify).
                let mid = T::from_f64(mn + range * 0.5);
                if block.iter().all(|v| (mid.to_f64() - v.to_f64()).abs() <= abs) {
                    out.push(MODE_CONSTANT);
                    mid.write_le(&mut out);
                    continue;
                }
            }

            // Fixed-point offsets from the block minimum.
            let levels = (range / step).ceil() + 1.0;
            let bits = levels.log2().ceil().max(1.0) as u32;
            if bits <= 32 {
                let base = T::from_f64(mn);
                let base_f = base.to_f64();
                let mut codes = Vec::with_capacity(block.len());
                let mut ok = true;
                for v in block {
                    let q = ((v.to_f64() - base_f) / step).round();
                    let r = T::from_f64(base_f + q * step);
                    if q < 0.0 || q >= (1u64 << bits) as f64
                        || (r.to_f64() - v.to_f64()).abs() > abs
                    {
                        ok = false;
                        break;
                    }
                    codes.push(q as u64);
                }
                if ok {
                    out.push(MODE_PACKED);
                    base.write_le(&mut out);
                    out.push(bits as u8);
                    let mut bw = BitWriter::with_capacity(block.len() * bits as usize / 8 + 1);
                    for &q in &codes {
                        bw.put_bits(q, bits);
                    }
                    out.extend_from_slice(&bw.finish());
                    continue;
                }
            }

            // Pathological block (range/ε overflow): store verbatim.
            out.push(MODE_RAW);
            for v in block {
                v.write_le(&mut out);
            }
        }

        Ok((out, abs))
    }

    /// Array-stage decode: mirror of [`Self::encode_impl`].
    pub fn decode_impl<T: Element>(
        &self,
        payload: &[u8],
        shape: Shape,
        abs: f64,
    ) -> Result<NdArray<T>> {
        let n = shape.len();
        let step = 2.0 * abs;
        let mut r = ByteReader::new(payload);
        let n_blocks = r.varint("szx block count")? as usize;
        if n_blocks != n.div_ceil(BLOCK) {
            return Err(CodecError::Corrupt { context: "szx block count" });
        }

        let mut out: Vec<T> = Vec::with_capacity(n);
        with_scratch(|s| -> Result<()> {
            for b in 0..n_blocks {
                let block_len = BLOCK.min(n - b * BLOCK);
                decode_block(&mut r, block_len, step, &mut s.codes, &mut out)?;
            }
            Ok(())
        })?;
        Ok(NdArray::from_vec(shape, out))
    }

    /// Partial decode of an axis-aligned region. SZx blocks are flat
    /// 128-sample spans of the row-major array, so only blocks
    /// overlapping the region's flat index span are decoded: everything
    /// before is skipped by header arithmetic, everything after is
    /// never read. For a small corner region of a large chunk this
    /// touches a fraction of the coded samples.
    pub fn decode_region_impl<T: Element>(
        &self,
        payload: &[u8],
        shape: Shape,
        abs: f64,
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<T>>> {
        let rank = shape.rank();
        let strides = shape.strides();
        let n = shape.len();
        let step = 2.0 * abs;
        // The region's flat offsets all lie in [lo, hi].
        let lo: usize = (0..rank).map(|d| origin[d] * strides[d]).sum();
        let hi: usize = (0..rank)
            .map(|d| (origin[d] + extent[d] - 1) * strides[d])
            .sum();
        let first_block = lo / BLOCK;
        let last_block = hi / BLOCK;
        let span_base = first_block * BLOCK;

        let mut r = ByteReader::new(payload);
        let n_blocks = r.varint("szx block count")? as usize;
        if n_blocks != n.div_ceil(BLOCK) {
            return Err(CodecError::Corrupt { context: "szx block count" });
        }
        let mut span: Vec<T> = Vec::with_capacity((last_block + 1) * BLOCK - span_base);
        with_scratch(|s| -> Result<()> {
            for b in 0..=last_block {
                let block_len = BLOCK.min(n - b * BLOCK);
                if b < first_block {
                    skip_block::<T>(&mut r, block_len)?;
                } else {
                    decode_block(&mut r, block_len, step, &mut s.codes, &mut span)?;
                }
            }
            Ok(())
        })?;

        // Gather the region out of the decoded span, one contiguous
        // last-axis row at a time — the row is a flat slice of the
        // span, so the copy is memcpy-shaped instead of a per-sample
        // coordinate dot product.
        let out_shape = Shape::new(extent);
        let total = out_shape.len();
        let mut out: Vec<T> = Vec::with_capacity(total);
        let row = extent[rank - 1];
        let mut idx = [0usize; 4];
        for _ in 0..total / row {
            let off: usize = (0..rank).map(|d| (origin[d] + idx[d]) * strides[d]).sum();
            let start = off - span_base;
            out.extend_from_slice(&span[start..start + row]);
            for d in (0..rank - 1).rev() {
                idx[d] += 1;
                if idx[d] < extent[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(Some(NdArray::from_vec(out_shape, out)))
    }
}

/// Decodes one block (mode byte onward) and appends its samples to
/// `out`. Shared by the whole-payload and partial-region decoders.
fn decode_block<T: Element>(
    r: &mut ByteReader<'_>,
    block_len: usize,
    step: f64,
    codes: &mut Vec<u32>,
    out: &mut Vec<T>,
) -> Result<()> {
    match r.u8("szx block mode")? {
        MODE_CONSTANT => {
            let mid = T::read_le(r.take(T::BYTES, "szx constant")?)
                .ok_or(CodecError::TruncatedStream { context: "szx constant" })?;
            out.extend(std::iter::repeat_n(mid, block_len));
        }
        MODE_PACKED => {
            let base = T::read_le(r.take(T::BYTES, "szx base")?)
                .ok_or(CodecError::TruncatedStream { context: "szx base" })?;
            let bits = u32::from(r.u8("szx bit width")?);
            if bits == 0 || bits > 32 {
                return Err(CodecError::Corrupt { context: "szx bit width" });
            }
            let nbytes = (block_len * bits as usize).div_ceil(8);
            let packed = r.take(nbytes, "szx packed codes")?;
            // Two flat passes instead of one interleaved loop: unpack
            // the bit-packed codes into a reusable u32 buffer, then
            // dequantize through the shared vectorization-friendly
            // kernel.
            codes.clear();
            codes.reserve(block_len);
            let mut br = BitReader::new(packed);
            for _ in 0..block_len {
                codes.push(br.get_bits(bits, "szx code")? as u32);
            }
            dequant_affine_into(codes, base.to_f64(), step, out);
        }
        MODE_RAW => {
            let raw = r.take(block_len * T::BYTES, "szx raw sample")?;
            for chunk in raw.chunks_exact(T::BYTES) {
                let v = T::read_le(chunk)
                    .ok_or(CodecError::TruncatedStream { context: "szx raw sample" })?;
                out.push(v);
            }
        }
        _ => return Err(CodecError::Corrupt { context: "szx block mode" }),
    }
    Ok(())
}

/// Advances past one block (mode byte onward) without decoding any
/// sample — pure header arithmetic, the partial decoder's skip path.
fn skip_block<T: Element>(r: &mut ByteReader<'_>, block_len: usize) -> Result<()> {
    match r.u8("szx block mode")? {
        MODE_CONSTANT => {
            r.take(T::BYTES, "szx constant")?;
        }
        MODE_PACKED => {
            r.take(T::BYTES, "szx base")?;
            let bits = u32::from(r.u8("szx bit width")?);
            if bits == 0 || bits > 32 {
                return Err(CodecError::Corrupt { context: "szx bit width" });
            }
            r.take((block_len * bits as usize).div_ceil(8), "szx packed codes")?;
        }
        MODE_RAW => {
            r.take(block_len * T::BYTES, "szx raw sample")?;
        }
        _ => return Err(CodecError::Corrupt { context: "szx block mode" }),
    }
    Ok(())
}

impl_stage_codec!(Szx, CompressorId::Szx, region);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Compressor, ErrorBound};
    use eblcio_data::max_rel_error;

    fn wavy(n: usize) -> NdArray<f32> {
        NdArray::from_fn(Shape::d1(n), |i| ((i[0] as f32) * 0.01).sin() * 50.0)
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = wavy(10_000);
        let c = Szx;
        for eps in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
            let stream = c.compress_f32(&data, ErrorBound::Relative(eps)).unwrap();
            let back = c.decompress_f32(&stream).unwrap();
            assert!(max_rel_error(&data, &back) <= eps * 1.0000001, "eps {eps}");
        }
    }

    #[test]
    fn constant_blocks_collapse() {
        let data = NdArray::<f32>::from_vec(Shape::d1(4096), vec![7.5; 4096]);
        let c = Szx;
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        // 32 blocks × (1 + 4) bytes + framing.
        assert!(stream.len() < 300, "{} bytes", stream.len());
        assert_eq!(c.decompress_f32(&stream).unwrap().as_slice(), data.as_slice());
    }

    #[test]
    fn cr_is_moderate_but_nonzero_on_smooth_data() {
        // SZx's signature: modest CR even where SZ3 gets huge ratios.
        let data = wavy(100_000);
        let c = Szx;
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let cr = data.nbytes() as f64 / stream.len() as f64;
        assert!(cr > 2.0 && cr < 64.0, "CR {cr}");
    }

    #[test]
    fn faster_looser_bounds_give_smaller_streams() {
        let data = wavy(50_000);
        let c = Szx;
        let loose = c.compress_f32(&data, ErrorBound::Relative(1e-1)).unwrap();
        let tight = c.compress_f32(&data, ErrorBound::Relative(1e-5)).unwrap();
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn partial_final_block() {
        let data = wavy(BLOCK + 17);
        let c = Szx;
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let back = c.decompress_f32(&stream).unwrap();
        assert_eq!(back.len(), data.len());
        assert!(max_rel_error(&data, &back) <= 1e-3 * 1.0000001);
    }

    #[test]
    fn f64_roundtrip() {
        let data = NdArray::<f64>::from_fn(Shape::d2(100, 100), |i| {
            (i[0] as f64).mul_add(1e-3, (i[1] as f64) * 2e-3).exp()
        });
        let c = Szx;
        let stream = c.compress_f64(&data, ErrorBound::Relative(1e-4)).unwrap();
        let back = c.decompress_f64(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-4 * 1.0000001);
    }

    #[test]
    fn extreme_dynamic_range_falls_back_to_raw() {
        // Range/ε too wide for 32-bit packing: raw mode keeps exactness.
        let mut v = vec![0.0f64; 256];
        v[0] = 1e300;
        v[255] = -1e300;
        let data = NdArray::from_vec(Shape::d1(256), v);
        let c = Szx;
        let stream = c
            .compress_f64(&data, ErrorBound::Absolute(1e-280))
            .unwrap();
        let back = c.decompress_f64(&stream).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
    }

    #[test]
    fn truncation_detected() {
        let data = wavy(1000);
        let c = Szx;
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        for cut in [10, stream.len() / 2, stream.len() - 1] {
            assert!(c.decompress_f32(&stream[..cut]).is_err());
        }
    }

    #[test]
    fn region_decode_is_bit_identical_to_full_slice() {
        // Mixed block modes: constant run, smooth packed data, and a
        // raw-mode spike, so the skip path crosses all three headers.
        let data = NdArray::<f64>::from_fn(Shape::d2(48, 40), |i| {
            let flat = i[0] * 40 + i[1];
            if flat < 256 {
                3.25
            } else if flat == 700 {
                1e300
            } else {
                ((flat as f64) * 0.01).sin() * 50.0
            }
        });
        let c = Szx;
        let stream = c.compress_f64(&data, ErrorBound::Absolute(1e-3)).unwrap();
        let full = c.decompress_f64(&stream).unwrap();
        for (origin, extent) in [
            ([0, 0], [48, 40]),
            ([5, 7], [9, 13]),
            ([40, 30], [8, 10]),
            ([47, 39], [1, 1]),
            ([10, 0], [2, 40]),
        ] {
            let part = c
                .decompress_f64_region(&stream, &origin, &extent)
                .unwrap()
                .expect("szx supports partial decode");
            assert_eq!(part.shape(), Shape::d2(extent[0], extent[1]));
            for i in 0..extent[0] {
                for j in 0..extent[1] {
                    let got = part.as_slice()[i * extent[1] + j];
                    let want = full.as_slice()[(origin[0] + i) * 40 + origin[1] + j];
                    assert_eq!(got.to_bits(), want.to_bits(), "({origin:?}, {extent:?}) at [{i},{j}]");
                }
            }
        }
    }

    #[test]
    fn region_decode_rejects_bad_regions() {
        let data = wavy(500);
        let c = Szx;
        let stream = c.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        assert!(c.decompress_f32_region(&stream, &[0, 0], &[1, 1]).is_err());
        assert!(c.decompress_f32_region(&stream, &[0], &[501]).is_err());
        assert!(c.decompress_f32_region(&stream, &[500], &[1]).is_err());
        assert!(c.decompress_f32_region(&stream, &[0], &[0]).is_err());
    }
}
