//! Thread-local decode scratch: the buffer arena behind the zero-alloc
//! serving claim.
//!
//! Uncached region reads decode the same chunk geometry over and over,
//! and before this arena existed every decode paid fresh `Vec`
//! allocations for the Huffman code buffer, the interpolation
//! reconstruction plane, and the byte-stage output. [`DecodeScratch`]
//! keeps those buffers alive per thread so a steady-state decode loop
//! (the store's rayon workers, the serve layer's miss assembly) reuses
//! capacity instead of round-tripping the allocator.
//!
//! Access goes through [`with_scratch`], which hands out the calling
//! thread's arena. Re-entrant use (an outer borrow still live when an
//! inner decode wants the arena, e.g. QoZ's PSNR search decoding trial
//! streams inside an encode) falls back to a fresh arena rather than
//! panicking, so correctness never depends on borrow discipline —
//! only steady-state speed does.

use crate::huffman::HuffLookup;
use std::cell::RefCell;

/// Reusable decode-side buffers. All fields are ordinary growable
/// containers: a decode `clear()`s and refills them, so capacity
/// persists across calls while contents never leak between streams.
#[derive(Default)]
pub struct DecodeScratch {
    /// Huffman-decoded quantization codes (SZ-family payloads).
    pub codes: Vec<u32>,
    /// f64 reconstruction plane for the SZ3/QoZ interpolation decoders.
    pub recon: Vec<f64>,
    /// Byte-stage inverse output (the chain's LZ decompression target).
    pub bytes: Vec<u8>,
    /// Canonical Huffman lookup tables, rebuilt per block but reusing
    /// their backing storage.
    pub huff: HuffLookup,
}

thread_local! {
    static SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::default());
}

/// Runs `f` with the calling thread's [`DecodeScratch`]. Nested calls
/// get a fresh (empty, allocation-backed) arena instead of a borrow
/// panic, so the fast path may be entered from any context.
pub fn with_scratch<R>(f: impl FnOnce(&mut DecodeScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut DecodeScratch::default()),
    })
}

/// Takes the thread's byte-stage buffer out of the arena (empty but
/// with retained capacity). Pair with [`put_bytes`]; used by the chain
/// decode loop, which must not hold the arena borrowed across the
/// array-stage decode (the array stage wants the arena too).
pub fn take_bytes() -> Vec<u8> {
    with_scratch(|s| {
        let mut b = std::mem::take(&mut s.bytes);
        b.clear();
        b
    })
}

/// Returns a buffer taken with [`take_bytes`] so its capacity survives
/// for the next decode on this thread. Keeps the larger of the resident
/// and returned buffers.
pub fn put_bytes(buf: Vec<u8>) {
    with_scratch(|s| {
        if buf.capacity() > s.bytes.capacity() {
            s.bytes = buf;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_capacity_persists_across_calls() {
        with_scratch(|s| {
            s.codes.clear();
            s.codes.extend(0..1000u32);
        });
        let cap = with_scratch(|s| s.codes.capacity());
        assert!(cap >= 1000);
    }

    #[test]
    fn reentrant_use_gets_a_fresh_arena() {
        with_scratch(|outer| {
            outer.codes.push(7);
            with_scratch(|inner| {
                assert!(inner.codes.is_empty(), "nested arena must be fresh");
                inner.codes.push(8);
            });
            assert_eq!(outer.codes, [7]);
        });
    }

    #[test]
    fn take_put_roundtrips_capacity() {
        put_bytes(Vec::with_capacity(4096));
        let b = take_bytes();
        assert!(b.is_empty());
        assert!(b.capacity() >= 4096);
        put_bytes(b);
    }
}
