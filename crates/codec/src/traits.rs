//! The [`Compressor`] abstraction: one trait in front of every codec
//! chain, mirroring how the paper drives SZ2/SZ3/ZFP/QoZ/SZx through
//! LibPressio's uniform API. Since the chain refactor a compressor's
//! identity is its serializable [`ChainSpec`] — the five paper codecs
//! are the preset chains, and [`CompressorId`] names their array stages.

use crate::chain::ChainSpec;
use crate::error::{CodecError, Result};
use crate::header;
use eblcio_data::{ArrayView, Dataset, Element, NdArray};
use serde::{Deserialize, Serialize};

/// Identifies one of the five EBLCs characterized by the paper — and,
/// since the chain refactor, the array stage at the front of a chain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum CompressorId {
    /// SZ2: block Lorenzo + regression prediction (Liang et al. 2018).
    Sz2 = 1,
    /// SZ3: multi-level spline interpolation (Liang et al. 2023).
    Sz3 = 2,
    /// ZFP: block-transform coding (Lindstrom 2014).
    Zfp = 3,
    /// QoZ: quality-oriented SZ3 derivative (Liu et al. SC'22).
    Qoz = 4,
    /// SZx: ultra-fast block coding (Yu et al. HPDC'22).
    Szx = 5,
}

impl CompressorId {
    /// All five, in the paper's legend order.
    pub const ALL: [CompressorId; 5] = [
        CompressorId::Sz2,
        CompressorId::Sz3,
        CompressorId::Zfp,
        CompressorId::Qoz,
        CompressorId::Szx,
    ];

    /// Parses the stream-header codec byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        match v {
            1 => Ok(CompressorId::Sz2),
            2 => Ok(CompressorId::Sz3),
            3 => Ok(CompressorId::Zfp),
            4 => Ok(CompressorId::Qoz),
            5 => Ok(CompressorId::Szx),
            other => Err(CodecError::UnknownCodec(other)),
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            CompressorId::Sz2 => "SZ2",
            CompressorId::Sz3 => "SZ3",
            CompressorId::Zfp => "ZFP",
            CompressorId::Qoz => "QoZ",
            CompressorId::Szx => "SZx",
        }
    }

    /// Instantiates this codec's preset chain through the global
    /// [`CodecRegistry`](crate::chain::CodecRegistry) — the data-driven
    /// replacement for the old hardcoded constructor match.
    pub fn instance(self) -> Box<dyn Compressor> {
        ChainSpec::preset(self)
            .build_boxed()
            // eblcio-allow(panic-freedom): preset chains are static data exercised by the codec_matrix suite; keeping this constructor infallible is what its ~100 call sites rely on
            .expect("builtin preset chains always build")
    }
}

/// User-facing error-bound specification (paper §III).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ErrorBound {
    /// Value-range relative bound ε: `|D−D̂| ≤ ε · (max D − min D)`.
    /// This is the paper's Eq. 1 as adopted by the EBLC community.
    Relative(f64),
    /// Absolute bound: `|D−D̂| ≤ e`.
    Absolute(f64),
}

impl ErrorBound {
    /// Resolves the bound to an absolute tolerance for data with the
    /// given value range.
    ///
    /// A zero range (constant data) yields a tiny positive tolerance so
    /// the quantizer stays well-defined; reconstruction is then exact.
    pub fn to_absolute(self, value_range: f64) -> Result<f64> {
        let raw = match self {
            ErrorBound::Relative(eps) => {
                if !(eps.is_finite() && eps > 0.0 && eps <= 1.0) {
                    return Err(CodecError::InvalidBound {
                        reason: "relative bound must be in (0, 1]",
                    });
                }
                eps * value_range
            }
            ErrorBound::Absolute(e) => {
                if !(e.is_finite() && e > 0.0) {
                    return Err(CodecError::InvalidBound {
                        reason: "absolute bound must be finite positive",
                    });
                }
                e
            }
        };
        Ok(raw.max(f64::MIN_POSITIVE))
    }
}

/// A lossy compressor with an error-bound guarantee.
///
/// Object-safe: the two element types get explicit methods (generic
/// callers use [`compress`]/[`decompress`], which dispatch on `T`).
///
/// The required entry points take borrowed [`ArrayView`]s so sub-array
/// compression (parallel slabs, store chunks) never copies its input;
/// the `&NdArray` methods are thin delegating conveniences.
pub trait Compressor: Send + Sync {
    /// The serializable chain identity of this compressor — what stream
    /// headers and store manifests record so the far side can rebuild
    /// the decoder.
    fn spec(&self) -> ChainSpec;

    /// Display name: the paper legend for presets, the chain grammar
    /// otherwise.
    fn name(&self) -> String {
        self.spec().label()
    }

    /// Compresses a borrowed single-precision view (zero-copy entry).
    fn compress_f32_view(&self, data: ArrayView<'_, f32>, bound: ErrorBound) -> Result<Vec<u8>>;
    /// Compresses a borrowed double-precision view (zero-copy entry).
    fn compress_f64_view(&self, data: ArrayView<'_, f64>, bound: ErrorBound) -> Result<Vec<u8>>;
    /// Compresses a single-precision array.
    fn compress_f32(&self, data: &NdArray<f32>, bound: ErrorBound) -> Result<Vec<u8>> {
        self.compress_f32_view(data.view(), bound)
    }
    /// Compresses a double-precision array.
    fn compress_f64(&self, data: &NdArray<f64>, bound: ErrorBound) -> Result<Vec<u8>> {
        self.compress_f64_view(data.view(), bound)
    }
    /// Decompresses a single-precision stream.
    fn decompress_f32(&self, stream: &[u8]) -> Result<NdArray<f32>>;
    /// Decompresses a double-precision stream.
    fn decompress_f64(&self, stream: &[u8]) -> Result<NdArray<f64>>;
    /// Partially decompresses the sub-region `origin..origin+extent` of a
    /// single-precision stream, when the chain's array stage supports
    /// partial decode (SZx flat blocks, ZFP fixed blocks). `Ok(None)`
    /// means "no partial path" — callers fall back to
    /// [`Self::decompress_f32`]. Results are bit-identical to slicing
    /// the full decode.
    fn decompress_f32_region(
        &self,
        stream: &[u8],
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f32>>> {
        let _ = (stream, origin, extent);
        Ok(None)
    }
    /// Double-precision counterpart of [`Self::decompress_f32_region`].
    fn decompress_f64_region(
        &self,
        stream: &[u8],
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f64>>> {
        let _ = (stream, origin, extent);
        Ok(None)
    }
}

/// Generic compression entry point: dispatches on the element type.
pub fn compress<T: Element>(
    c: &dyn Compressor,
    data: &NdArray<T>,
    bound: ErrorBound,
) -> Result<Vec<u8>> {
    compress_view(c, data.view(), bound)
}

/// Generic zero-copy compression of a borrowed view, dispatching on the
/// element type via the sealed [`Element`] identity casts (`Any` cannot
/// downcast non-`'static` borrows).
pub fn compress_view<T: Element>(
    c: &dyn Compressor,
    data: ArrayView<'_, T>,
    bound: ErrorBound,
) -> Result<Vec<u8>> {
    if let Some(s) = T::slice_as_f32(data.as_slice()) {
        c.compress_f32_view(ArrayView::new(data.shape(), s), bound)
    } else if let Some(s) = T::slice_as_f64(data.as_slice()) {
        c.compress_f64_view(ArrayView::new(data.shape(), s), bound)
    } else {
        // Element is sealed to f32/f64; a third impl is a workspace bug.
        Err(CodecError::Internal { context: "sealed Element dispatch in compress_view" })
    }
}

/// Generic decompression entry point: dispatches on the element type.
///
/// Adopts the decoder's buffer through the [`Element`] identity casts
/// instead of cloning it, so generic decompression (the per-chunk hot
/// path of the parallel decoder and the chunked store) costs no extra
/// full-array copy.
pub fn decompress<T: Element>(c: &dyn Compressor, stream: &[u8]) -> Result<NdArray<T>> {
    // Element is sealed to f32 (4 bytes) and f64 (8 bytes); any other
    // combination is a workspace bug surfaced as a typed error.
    if T::BYTES == 4 {
        let arr = c.decompress_f32(stream)?;
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f32(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f32 decompress)" });
        };
        Ok(NdArray::from_vec(shape, data))
    } else {
        let arr = c.decompress_f64(stream)?;
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f64(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f64 decompress)" });
        };
        Ok(NdArray::from_vec(shape, data))
    }
}

/// Generic partial decompression entry point: dispatches on the element
/// type. `Ok(None)` means the chain has no partial-decode path and the
/// caller should [`decompress`] the whole stream instead.
pub fn decompress_region<T: Element>(
    c: &dyn Compressor,
    stream: &[u8],
    origin: &[usize],
    extent: &[usize],
) -> Result<Option<NdArray<T>>> {
    if T::BYTES == 4 {
        let Some(arr) = c.decompress_f32_region(stream, origin, extent)? else {
            return Ok(None);
        };
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f32(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f32 region)" });
        };
        Ok(Some(NdArray::from_vec(shape, data)))
    } else {
        let Some(arr) = c.decompress_f64_region(stream, origin, extent)? else {
            return Ok(None);
        };
        let shape = arr.shape();
        let Ok(data) = T::vec_from_f64(arr.into_vec()) else {
            return Err(CodecError::Internal { context: "sealed Element dispatch (f64 region)" });
        };
        Ok(Some(NdArray::from_vec(shape, data)))
    }
}

/// Compresses either precision of a [`Dataset`].
pub fn compress_dataset(
    c: &dyn Compressor,
    data: &Dataset,
    bound: ErrorBound,
) -> Result<Vec<u8>> {
    match data {
        Dataset::F32(a) => c.compress_f32(a, bound),
        Dataset::F64(a) => c.compress_f64(a, bound),
    }
}

/// Decompresses any `EBLC` stream (v1 or v2) into a [`Dataset`],
/// rebuilding the decoder chain from the header's spec.
pub fn decompress_any(stream: &[u8]) -> Result<Dataset> {
    let (h, _) = header::read_stream(stream)?;
    let codec = h.chain.build()?;
    if h.dtype == 0 {
        Ok(Dataset::F32(codec.decompress_f32(stream)?))
    } else {
        Ok(Dataset::F64(codec.decompress_f64(stream)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for id in CompressorId::ALL {
            assert_eq!(CompressorId::from_u8(id as u8).unwrap(), id);
        }
        assert!(CompressorId::from_u8(0).is_err());
        assert!(CompressorId::from_u8(99).is_err());
    }

    #[test]
    fn names_match_paper_legends() {
        let names: Vec<&str> = CompressorId::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["SZ2", "SZ3", "ZFP", "QoZ", "SZx"]);
    }

    #[test]
    fn instances_carry_preset_specs() {
        for id in CompressorId::ALL {
            let c = id.instance();
            assert_eq!(c.spec(), ChainSpec::preset(id));
            assert_eq!(c.name(), id.name());
        }
    }

    #[test]
    fn relative_bound_resolution() {
        let abs = ErrorBound::Relative(1e-3).to_absolute(100.0).unwrap();
        assert!((abs - 0.1).abs() < 1e-15);
    }

    #[test]
    fn constant_data_bound_is_positive() {
        let abs = ErrorBound::Relative(1e-3).to_absolute(0.0).unwrap();
        assert!(abs > 0.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(ErrorBound::Relative(0.0).to_absolute(1.0).is_err());
        assert!(ErrorBound::Relative(-1.0).to_absolute(1.0).is_err());
        assert!(ErrorBound::Relative(2.0).to_absolute(1.0).is_err());
        assert!(ErrorBound::Relative(f64::NAN).to_absolute(1.0).is_err());
        assert!(ErrorBound::Absolute(0.0).to_absolute(1.0).is_err());
        assert!(ErrorBound::Absolute(f64::INFINITY).to_absolute(1.0).is_err());
    }

    #[test]
    fn absolute_bound_passthrough() {
        assert_eq!(ErrorBound::Absolute(0.5).to_absolute(123.0).unwrap(), 0.5);
    }
}
