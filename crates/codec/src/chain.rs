//! Composable codec chains: serializable stage pipelines behind the
//! [`Compressor`] trait.
//!
//! # Stage taxonomy
//!
//! A chain is **one array stage followed by zero or more byte stages**:
//!
//! ```text
//! samples ──(array stage: predict/quantize/transform → bytes)──▶ payload
//!         ──(byte stage₁)──▶ … ──(byte stageₙ)──▶ stream payload
//! ```
//!
//! * **Array stages** are the lossy front ends — the SZ2 hybrid
//!   Lorenzo/regression predictor, the SZ3/QoZ interpolation pyramids,
//!   the ZFP block transform, the SZx fixed-point blocks. They own the
//!   error bound: whatever bytes follow, the ε contract is decided here.
//! * **Byte stages** are lossless byte→byte transforms — the LZ backend
//!   ("Zstd stage"), the Blosc byte shuffle, FPC/fpzip-style float
//!   coders — applied in order on encode, unwound in reverse on decode.
//!
//! The five paper codecs are *presets* of this algebra
//! ([`ChainSpec::preset`]): `SZ2 = sz2+lz`, `SZ3 = sz3+lz`,
//! `QoZ = qoz+lz`, `ZFP = zfp`, `SZx = szx` — byte-compatible with the
//! monolithic pipelines they replaced. Custom chains (`sz3+shuffle4+lz`,
//! `szx+fpc4`, …) open the scenario space the ROADMAP asks for: swap the
//! lossless backend, stack filters, or register different stage
//! constructors in a [`CodecRegistry`].
//!
//! A [`ChainSpec`] is the serializable description: it travels in the
//! v2 `EBLC` stream header and in `EBCS` store manifests (which may hold
//! a different chain per chunk), and parses from the CLI grammar
//! `array[+byte…]` via [`ChainSpec::parse`].

use crate::error::{CodecError, Result};
use crate::header::{read_stream, write_stream, Header};
use crate::stage::{
    build_byte_stage, decode_array, decode_array_region, encode_array, ArrayStage, ByteStage,
    ByteStageSpec,
};
use crate::traits::{Compressor, CompressorId, ErrorBound};
use eblcio_data::{ArrayView, Element, NdArray};
use eblcio_obs::{Histogram, Stopwatch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Upper bound on byte stages per chain (wire format sanity cap).
pub const MAX_BYTE_STAGES: usize = 8;

/// Serializable description of a codec chain: which array stage, then
/// which byte stages in encode order.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ChainSpec {
    /// The lossy front end.
    pub array: CompressorId,
    /// Byte stages in encode order (decode unwinds them back to front).
    pub bytes: Vec<ByteStageSpec>,
}

impl ChainSpec {
    /// The preset chain that reproduces one of the five paper codecs
    /// byte-for-byte: the SZ family runs its payload through the LZ
    /// backend, ZFP and SZx emit raw coded bytes.
    pub fn preset(id: CompressorId) -> Self {
        let bytes = match id {
            CompressorId::Sz2 | CompressorId::Sz3 | CompressorId::Qoz => {
                vec![ByteStageSpec::Lz]
            }
            CompressorId::Zfp | CompressorId::Szx => Vec::new(),
        };
        Self { array: id, bytes }
    }

    /// All five paper presets, in legend order.
    pub fn presets() -> Vec<Self> {
        CompressorId::ALL.iter().map(|&id| Self::preset(id)).collect()
    }

    /// `Some(id)` when this spec is exactly the preset for `id`.
    pub fn preset_id(&self) -> Option<CompressorId> {
        (*self == Self::preset(self.array)).then_some(self.array)
    }

    /// Display label: the paper legend name for presets (`SZ3`), the
    /// `+`-joined stage grammar otherwise (`sz3+shuffle4+lz`).
    pub fn label(&self) -> String {
        if let Some(id) = self.preset_id() {
            return id.name().to_string();
        }
        let mut out = self.array.name().to_ascii_lowercase();
        for b in &self.bytes {
            out.push('+');
            out.push_str(&b.label());
        }
        out
    }

    /// Parses the CLI grammar: `sz3` (a bare codec name is its preset),
    /// `array+raw` (the bare array stage, no byte stages), or
    /// `array+byte+byte…` listing explicit stages (`sz3+shuffle4+lz`).
    /// `raw` is only legal as the sole trailing segment — mixing it
    /// with byte stages is ambiguous and rejected.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let lower = s.to_ascii_lowercase();
        let mut parts = lower.split('+');
        let head = parts.next().unwrap_or_default();
        let array = match head {
            "sz2" => CompressorId::Sz2,
            "sz3" => CompressorId::Sz3,
            "zfp" => CompressorId::Zfp,
            "qoz" => CompressorId::Qoz,
            "szx" => CompressorId::Szx,
            other => return Err(format!("unknown array stage '{other}'")),
        };
        let rest: Vec<&str> = parts.collect();
        if rest.is_empty() {
            return Ok(Self::preset(array));
        }
        if rest.contains(&"raw") {
            return if rest == ["raw"] {
                Ok(Self { array, bytes: Vec::new() })
            } else {
                Err(format!("chain '{s}': 'raw' must be the only segment after the array stage"))
            };
        }
        let mut bytes = Vec::new();
        for seg in rest {
            bytes.push(ByteStageSpec::parse(seg)?);
        }
        if bytes.len() > MAX_BYTE_STAGES {
            return Err(format!("chain '{s}': more than {MAX_BYTE_STAGES} byte stages"));
        }
        Ok(Self { array, bytes })
    }

    /// Appends the wire encoding: `array u8 | n u8 | n × (id u8, param u8)`.
    ///
    /// # Panics
    /// Panics if the spec holds more than [`MAX_BYTE_STAGES`] byte
    /// stages — such a spec cannot be decoded and must be rejected
    /// where it is built ([`CodecRegistry::build`], [`CodecChain::new`]),
    /// not silently truncated onto the wire.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.array as u8);
        assert!(
            self.bytes.len() <= MAX_BYTE_STAGES,
            "chain spec with {} byte stages is not wire-representable",
            self.bytes.len()
        );
        out.push(self.bytes.len() as u8);
        for b in &self.bytes {
            out.push(b.wire_id());
            out.push(b.wire_param());
        }
    }

    /// Reads the wire encoding back.
    pub fn decode(r: &mut crate::util::ByteReader<'_>) -> Result<Self> {
        let array = CompressorId::from_u8(r.u8("chain array stage")?)?;
        let n = r.u8("chain byte stage count")? as usize;
        if n > MAX_BYTE_STAGES {
            return Err(CodecError::Corrupt { context: "chain byte stage count" });
        }
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u8("chain byte stage id")?;
            let param = r.u8("chain byte stage param")?;
            bytes.push(ByteStageSpec::from_wire(id, param)?);
        }
        Ok(Self { array, bytes })
    }

    /// Builds the chain through the global registry.
    pub fn build(&self) -> Result<CodecChain> {
        CodecRegistry::global().build(self)
    }

    /// Builds a boxed [`Compressor`] through the global registry.
    pub fn build_boxed(&self) -> Result<Box<dyn Compressor>> {
        Ok(Box::new(self.build()?))
    }
}

impl std::fmt::Display for ChainSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Per-stage telemetry handles, resolved from the process-global
/// [`eblcio_obs`] registry once at chain construction so the
/// per-chunk cost is a stopwatch read and a relaxed histogram add.
/// Names follow `eblcio_codec_<stage>_{encode,decode}_{ns,bytes}`,
/// where `<stage>` is the stage's grammar label (`sz3`, `lz`,
/// `shuffle4`, …) — so one store mixing chains still separates its
/// stage costs.
struct StageMetrics {
    encode_ns: Arc<Histogram>,
    decode_ns: Arc<Histogram>,
    /// Stage *output* sizes on encode (post-transform payload bytes).
    encode_bytes: Arc<Histogram>,
    /// Stage *output* sizes on decode (recovered payload/array bytes).
    decode_bytes: Arc<Histogram>,
}

impl StageMetrics {
    fn for_stage(label: &str) -> Self {
        let g = eblcio_obs::global();
        Self {
            encode_ns: g.histogram(&format!("eblcio_codec_{label}_encode_ns")),
            decode_ns: g.histogram(&format!("eblcio_codec_{label}_decode_ns")),
            encode_bytes: g.histogram(&format!("eblcio_codec_{label}_encode_bytes")),
            decode_bytes: g.histogram(&format!("eblcio_codec_{label}_decode_bytes")),
        }
    }
}

struct ChainMetrics {
    array: StageMetrics,
    /// Parallel to [`CodecChain::bytes`], encode order.
    bytes: Vec<StageMetrics>,
}

impl ChainMetrics {
    fn for_spec(spec: &ChainSpec) -> Self {
        Self {
            array: StageMetrics::for_stage(&spec.array.name().to_ascii_lowercase()),
            bytes: spec.bytes.iter().map(|b| StageMetrics::for_stage(&b.label())).collect(),
        }
    }
}

/// A built chain: one array stage plus its byte stages, usable anywhere
/// a [`Compressor`] is.
pub struct CodecChain {
    spec: ChainSpec,
    array: Box<dyn ArrayStage>,
    bytes: Vec<Box<dyn ByteStage>>,
    metrics: ChainMetrics,
}

impl CodecChain {
    /// Assembles a chain from parts; the spec is derived from them.
    ///
    /// # Panics
    /// Panics if more than [`MAX_BYTE_STAGES`] byte stages are given
    /// (the resulting spec could not travel in a stream header).
    pub fn new(array: Box<dyn ArrayStage>, bytes: Vec<Box<dyn ByteStage>>) -> Self {
        assert!(
            bytes.len() <= MAX_BYTE_STAGES,
            "a chain holds at most {MAX_BYTE_STAGES} byte stages"
        );
        let spec = ChainSpec {
            array: array.id(),
            bytes: bytes.iter().map(|b| b.spec()).collect(),
        };
        let metrics = ChainMetrics::for_spec(&spec);
        Self { spec, array, bytes, metrics }
    }

    /// Wraps an array stage in its preset byte stages — how the five
    /// paper codecs reassemble their historical pipelines around a
    /// (possibly parameterized) stage instance.
    pub fn around(array: Box<dyn ArrayStage>) -> Self {
        let bytes = ChainSpec::preset(array.id())
            .bytes
            .into_iter()
            .map(build_byte_stage)
            .collect();
        Self::new(array, bytes)
    }

    /// The serializable description of this chain.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    fn compress_generic<T: Element>(
        &self,
        data: ArrayView<'_, T>,
        bound: ErrorBound,
    ) -> Result<Vec<u8>> {
        crate::codecs::common::validate_input(data)?;
        let abs = bound.to_absolute(data.value_range())?;
        let sw = Stopwatch::start();
        let (mut payload, abs_recorded) = encode_array(self.array.as_ref(), data, abs)?;
        self.metrics.array.encode_ns.record(sw.elapsed_ns());
        self.metrics.array.encode_bytes.record(payload.len() as u64);
        for (s, m) in self.bytes.iter().zip(&self.metrics.bytes) {
            let sw = Stopwatch::start();
            payload = s.forward(&payload);
            m.encode_ns.record(sw.elapsed_ns());
            m.encode_bytes.record(payload.len() as u64);
        }
        let header = Header {
            chain: self.spec.clone(),
            dtype: Header::dtype_of::<T>(),
            shape: data.shape(),
            abs_bound: abs_recorded,
        };
        Ok(write_stream(&header, &payload))
    }

    /// Parses the stream envelope (chain + dtype checks) and hands the
    /// unwound array-stage payload to `f`. Byte stages are inverted
    /// through the thread's reusable scratch buffer, which is taken
    /// *out* of the arena (not held borrowed) because the array stage
    /// inside `f` wants the arena too.
    fn with_decoded_payload<T: Element, R>(
        &self,
        stream: &[u8],
        f: impl FnOnce(&[u8], &Header) -> Result<R>,
    ) -> Result<R> {
        let (h, payload) = read_stream(stream)?;
        if h.chain != self.spec {
            return Err(CodecError::ChainMismatch {
                expected: self.spec.label(),
                got: h.chain.label(),
            });
        }
        h.expect_dtype::<T>()?;
        if self.bytes.is_empty() {
            return f(payload, &h);
        }
        let mut cur = crate::scratch::take_bytes();
        let mut next = Vec::new();
        let mut first = true;
        for (s, m) in self.bytes.iter().zip(&self.metrics.bytes).rev() {
            let sw = Stopwatch::start();
            let step = if first {
                s.inverse_into(payload, &mut cur)
            } else {
                let r = s.inverse_into(&cur, &mut next);
                if r.is_ok() {
                    std::mem::swap(&mut cur, &mut next);
                }
                r
            };
            m.decode_ns.record(sw.elapsed_ns());
            first = false;
            if let Err(e) = step {
                crate::scratch::put_bytes(cur);
                return Err(e);
            }
            m.decode_bytes.record(cur.len() as u64);
        }
        let out = f(&cur, &h);
        crate::scratch::put_bytes(cur);
        out
    }

    fn decompress_generic<T: Element>(&self, stream: &[u8]) -> Result<NdArray<T>> {
        self.with_decoded_payload::<T, _>(stream, |bytes, h| {
            let sw = Stopwatch::start();
            let out = decode_array(self.array.as_ref(), bytes, h.shape, h.abs_bound);
            self.metrics.array.decode_ns.record(sw.elapsed_ns());
            if let Ok(arr) = &out {
                self.metrics.array.decode_bytes.record(arr.nbytes() as u64);
            }
            out
        })
    }

    fn decompress_region_generic<T: Element>(
        &self,
        stream: &[u8],
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<T>>> {
        if !self.array.supports_partial_decode() {
            return Ok(None);
        }
        self.with_decoded_payload::<T, _>(stream, |bytes, h| {
            let sw = Stopwatch::start();
            let out =
                decode_array_region(self.array.as_ref(), bytes, h.shape, h.abs_bound, origin, extent);
            self.metrics.array.decode_ns.record(sw.elapsed_ns());
            if let Ok(Some(arr)) = &out {
                self.metrics.array.decode_bytes.record(arr.nbytes() as u64);
            }
            out
        })
    }
}

impl std::fmt::Debug for CodecChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecChain").field("spec", &self.spec).finish()
    }
}

impl Compressor for CodecChain {
    fn spec(&self) -> ChainSpec {
        self.spec.clone()
    }
    fn compress_f32_view(&self, data: ArrayView<'_, f32>, bound: ErrorBound) -> Result<Vec<u8>> {
        self.compress_generic(data, bound)
    }
    fn compress_f64_view(&self, data: ArrayView<'_, f64>, bound: ErrorBound) -> Result<Vec<u8>> {
        self.compress_generic(data, bound)
    }
    fn decompress_f32(&self, stream: &[u8]) -> Result<NdArray<f32>> {
        self.decompress_generic(stream)
    }
    fn decompress_f64(&self, stream: &[u8]) -> Result<NdArray<f64>> {
        self.decompress_generic(stream)
    }
    fn decompress_f32_region(
        &self,
        stream: &[u8],
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f32>>> {
        self.decompress_region_generic(stream, origin, extent)
    }
    fn decompress_f64_region(
        &self,
        stream: &[u8],
        origin: &[usize],
        extent: &[usize],
    ) -> Result<Option<NdArray<f64>>> {
        self.decompress_region_generic(stream, origin, extent)
    }
}

/// Constructor for an array stage.
pub type ArrayStageFactory = Box<dyn Fn() -> Box<dyn ArrayStage> + Send + Sync>;

/// Maps chain specs to stage constructors — the data-driven replacement
/// for the hardcoded `CompressorId::instance()` match.
///
/// The global registry ([`CodecRegistry::global`]) holds the builtin
/// default constructors; a local registry can override any of them
/// (e.g. build every SZ3 stage linear-only, or an SZ2 stage with custom
/// block dims) and hand out chains with the exact same wire specs.
pub struct CodecRegistry {
    arrays: HashMap<u8, ArrayStageFactory>,
}

impl CodecRegistry {
    /// A registry with the five builtin array stages at their defaults.
    pub fn builtin() -> Self {
        let mut r = Self { arrays: HashMap::new() };
        r.register_array(CompressorId::Sz2, || {
            Box::new(crate::codecs::sz2::Sz2::default())
        });
        r.register_array(CompressorId::Sz3, || {
            Box::new(crate::codecs::sz3::Sz3::default())
        });
        r.register_array(CompressorId::Zfp, || {
            Box::new(crate::codecs::zfp::Zfp::default())
        });
        r.register_array(CompressorId::Qoz, || {
            Box::new(crate::codecs::qoz::Qoz::default())
        });
        r.register_array(CompressorId::Szx, || Box::new(crate::codecs::szx::Szx));
        r
    }

    /// Registers (or overrides) the constructor for an array stage id.
    pub fn register_array(
        &mut self,
        id: CompressorId,
        factory: impl Fn() -> Box<dyn ArrayStage> + Send + Sync + 'static,
    ) {
        self.arrays.insert(id as u8, Box::new(factory));
    }

    /// Builds the chain a spec describes.
    pub fn build(&self, spec: &ChainSpec) -> Result<CodecChain> {
        if spec.bytes.len() > MAX_BYTE_STAGES {
            return Err(CodecError::InvalidChain {
                reason: "more byte stages than the wire format can carry",
            });
        }
        let factory = self
            .arrays
            .get(&(spec.array as u8))
            .ok_or(CodecError::UnknownCodec(spec.array as u8))?;
        let bytes = spec.bytes.iter().map(|&b| build_byte_stage(b)).collect();
        let chain = CodecChain::new(factory(), bytes);
        debug_assert_eq!(&chain.spec, spec);
        Ok(chain)
    }

    /// The process-wide registry with the builtin stages.
    pub fn global() -> &'static CodecRegistry {
        static GLOBAL: OnceLock<CodecRegistry> = OnceLock::new();
        GLOBAL.get_or_init(CodecRegistry::builtin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblcio_data::{max_rel_error, NdArray, Shape};

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d2(40, 30), |i| {
            (i[0] as f32 * 0.2).sin() * 30.0 + (i[1] as f32 * 0.15).cos() * 12.0
        })
    }

    #[test]
    fn preset_specs_match_paper_pipelines() {
        assert_eq!(
            ChainSpec::preset(CompressorId::Sz3).bytes,
            vec![ByteStageSpec::Lz]
        );
        assert!(ChainSpec::preset(CompressorId::Zfp).bytes.is_empty());
        assert!(ChainSpec::preset(CompressorId::Szx).bytes.is_empty());
        for id in CompressorId::ALL {
            let p = ChainSpec::preset(id);
            assert_eq!(p.preset_id(), Some(id));
            assert_eq!(p.label(), id.name());
        }
    }

    #[test]
    fn parse_grammar() {
        assert_eq!(
            ChainSpec::parse("sz3").unwrap(),
            ChainSpec::preset(CompressorId::Sz3)
        );
        assert_eq!(
            ChainSpec::parse("SZ3+Shuffle4+LZ").unwrap(),
            ChainSpec {
                array: CompressorId::Sz3,
                bytes: vec![ByteStageSpec::Shuffle { element_size: 4 }, ByteStageSpec::Lz],
            }
        );
        let bare = ChainSpec::parse("sz3+raw").unwrap();
        assert!(bare.bytes.is_empty());
        assert_eq!(bare.preset_id(), None);
        assert!(ChainSpec::parse("lzma").is_err());
        assert!(ChainSpec::parse("sz3+zstd").is_err());
        // 'raw' composed with byte stages is ambiguous, not silently
        // dropped.
        assert!(ChainSpec::parse("sz3+raw+lz").is_err());
        assert!(ChainSpec::parse("sz3+lz+raw").is_err());
        // Labels round-trip through the parser.
        let spec = ChainSpec::parse("szx+fpc4+lz").unwrap();
        assert_eq!(ChainSpec::parse(&spec.label()).unwrap(), spec);
    }

    #[test]
    fn wire_roundtrip() {
        for spec in [
            ChainSpec::preset(CompressorId::Qoz),
            ChainSpec::parse("sz2+shuffle8+lz").unwrap(),
            ChainSpec::parse("szx+raw").unwrap(),
        ] {
            let mut buf = Vec::new();
            spec.encode_into(&mut buf);
            let mut r = crate::util::ByteReader::new(&buf);
            assert_eq!(ChainSpec::decode(&mut r).unwrap(), spec);
            assert_eq!(r.remaining(), 0);
        }
        // Truncations and junk are rejected.
        let mut buf = Vec::new();
        ChainSpec::parse("sz3+shuffle4+lz").unwrap().encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut r = crate::util::ByteReader::new(&buf[..cut]);
            assert!(ChainSpec::decode(&mut r).is_err(), "cut {cut}");
        }
        let mut r = crate::util::ByteReader::new(&[0u8, 0]);
        assert!(ChainSpec::decode(&mut r).is_err());
    }

    #[test]
    fn custom_chains_roundtrip_within_bound() {
        let data = field();
        for s in [
            "sz3+shuffle4+lz",
            "sz3+raw",
            "szx+lz",
            "szx+fpc4",
            "zfp+lz",
            "sz2+fpzip4",
            "qoz+shuffle4+lz",
        ] {
            let chain = ChainSpec::parse(s).unwrap().build().unwrap();
            let stream = chain
                .compress_f32(&data, ErrorBound::Relative(1e-3))
                .unwrap();
            let back = chain.decompress_f32(&stream).unwrap();
            assert!(
                max_rel_error(&data, &back) <= 1e-3 * 1.0000001,
                "{s}: bound broken"
            );
        }
    }

    #[test]
    fn chain_mismatch_is_typed() {
        let data = field();
        let sz3 = ChainSpec::preset(CompressorId::Sz3).build().unwrap();
        let custom = ChainSpec::parse("sz3+shuffle4+lz").unwrap().build().unwrap();
        let stream = sz3.compress_f32(&data, ErrorBound::Relative(1e-2)).unwrap();
        match custom.decompress_f32(&stream) {
            Err(CodecError::ChainMismatch { expected, got }) => {
                assert_eq!(expected, "sz3+shuffle4+lz");
                assert_eq!(got, "SZ3");
            }
            other => panic!("expected ChainMismatch, got {other:?}"),
        }
    }

    #[test]
    fn registry_override_changes_construction_not_spec() {
        let mut reg = CodecRegistry::builtin();
        reg.register_array(CompressorId::Sz3, || {
            Box::new(crate::codecs::sz3::Sz3::linear_only())
        });
        let spec = ChainSpec::preset(CompressorId::Sz3);
        let linear = reg.build(&spec).unwrap();
        assert_eq!(linear.spec(), &spec);
        // Streams from the override decode through the default build:
        // the stage parameterization is self-describing.
        let data = field();
        let stream = linear
            .compress_f32(&data, ErrorBound::Relative(1e-3))
            .unwrap();
        let back = spec.build().unwrap().decompress_f32(&stream).unwrap();
        assert!(max_rel_error(&data, &back) <= 1e-3 * 1.0000001);
    }

    #[test]
    fn partial_decode_through_byte_stages_and_fallback() {
        let data = field();
        // SZx behind an LZ stage: the byte stage is fully inverted, then
        // the array stage decodes only the requested region.
        let chain = ChainSpec::parse("szx+lz").unwrap().build().unwrap();
        let stream = chain.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        let full = chain.decompress_f32(&stream).unwrap();
        let part = chain
            .decompress_f32_region(&stream, &[10, 5], &[7, 11])
            .unwrap()
            .expect("szx+lz supports partial decode");
        for i in 0..7 {
            for j in 0..11 {
                assert_eq!(
                    part.as_slice()[i * 11 + j].to_bits(),
                    full.as_slice()[(10 + i) * 30 + 5 + j].to_bits()
                );
            }
        }
        // Interpolation codecs have no partial path: callers get None
        // and fall back to the whole-chunk decode.
        let sz3 = ChainSpec::preset(CompressorId::Sz3).build().unwrap();
        let stream = sz3.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        assert!(sz3
            .decompress_f32_region(&stream, &[10, 5], &[7, 11])
            .unwrap()
            .is_none());
    }

    /// Every stage of a chain reports encode *and* decode time into
    /// the global registry under its grammar label — one roundtrip
    /// through `sz3+shuffle4+lz` must tick all three stages' clocks.
    #[test]
    fn stage_metrics_reach_the_global_registry() {
        let data = field();
        let chain = ChainSpec::parse("sz3+shuffle4+lz").unwrap().build().unwrap();
        let g = eblcio_obs::global();
        let before: Vec<u64> = ["sz3", "shuffle4", "lz"]
            .iter()
            .map(|s| g.histogram(&format!("eblcio_codec_{s}_decode_ns")).count())
            .collect();
        let stream = chain.compress_f32(&data, ErrorBound::Relative(1e-3)).unwrap();
        chain.decompress_f32(&stream).unwrap();
        for (i, s) in ["sz3", "shuffle4", "lz"].iter().enumerate() {
            assert!(
                g.histogram(&format!("eblcio_codec_{s}_encode_ns")).count() >= 1,
                "{s} encode untimed"
            );
            assert!(
                g.histogram(&format!("eblcio_codec_{s}_decode_ns")).count() > before[i],
                "{s} decode untimed"
            );
        }
    }

    #[test]
    fn lz_backend_helps_szx_raw_blocks() {
        // The scenario the chain architecture exists for: when SZx's
        // dynamic range forces verbatim blocks, composing an LZ backend
        // (impossible with the monolith) recovers the redundancy.
        let mut v = vec![0.0f32; 64 * 64];
        v[0] = 1e30;
        let data = NdArray::from_vec(Shape::d2(64, 64), v);
        let bound = ErrorBound::Absolute(1e-25);
        let plain = ChainSpec::preset(CompressorId::Szx)
            .build()
            .unwrap()
            .compress_f32(&data, bound)
            .unwrap();
        let chained = ChainSpec::parse("szx+lz")
            .unwrap()
            .build()
            .unwrap()
            .compress_f32(&data, bound)
            .unwrap();
        assert!(
            chained.len() * 4 < plain.len(),
            "szx+lz {} vs szx {}",
            chained.len(),
            plain.len()
        );
    }
}
