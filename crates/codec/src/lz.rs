//! LZ77 lossless backend.
//!
//! The SZ-family pipelines finish with a dictionary coder (Zstd in the
//! paper's builds). This module implements a self-contained greedy LZ77
//! with hash-chain match finding and LZ4-style token framing:
//!
//! ```text
//! [raw len varint] [token]*
//! token = [lit_len:4 | match_len:4] [ext lit len varint?] [literals…]
//!         [offset varint] [ext match len varint?]
//! ```
//!
//! A final token may have `match_len = 0` (literals only). Offsets are
//! limited to [`WINDOW`]; matches shorter than [`MIN_MATCH`] are never
//! emitted, so decoding is unambiguous.

use crate::error::{CodecError, Result};
use crate::util::{put_varint, ByteReader};

/// Sliding-window size (64 KiB).
pub const WINDOW: usize = 1 << 16;
/// Minimum emitted match length.
pub const MIN_MATCH: usize = 4;
/// Nibble value meaning "length continues in a varint".
const NIBBLE_EXT: u64 = 15;

const HASH_BITS: u32 = 16;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` losslessly.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    // head[h] = most recent position with hash h; prev[i & mask] = chain.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    let n = input.len();

    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut chain = 0;
        while cand != usize::MAX && i - cand < WINDOW && chain < 32 {
            let maxl = n - i;
            let mut l = 0;
            while l < maxl && input[cand + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_off = i - cand;
            }
            cand = prev[cand % WINDOW];
            chain += 1;
        }

        if best_len >= MIN_MATCH {
            emit_token(&mut out, &input[lit_start..i], best_off, best_len);
            // Insert hash entries across the matched region (sparsely for
            // long matches to bound cost).
            let step = if best_len > 64 { 4 } else { 1 };
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let hj = hash4(&input[j..]);
                prev[j % WINDOW] = head[hj];
                head[hj] = j;
                j += step;
            }
            i += best_len;
            lit_start = i;
        } else {
            prev[i % WINDOW] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    // Trailing literals.
    if lit_start < n {
        emit_token(&mut out, &input[lit_start..n], 0, 0);
    } else if lit_start == n && n == 0 {
        // unreachable: handled above
    }
    out
}

fn emit_token(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    debug_assert!(match_len == 0 || match_len >= MIN_MATCH);
    let lit_n = literals.len() as u64;
    let m_n = if match_len == 0 { 0 } else { (match_len - MIN_MATCH + 1) as u64 };
    let lit_nib = lit_n.min(NIBBLE_EXT);
    let m_nib = m_n.min(NIBBLE_EXT);
    out.push(((lit_nib << 4) | m_nib) as u8);
    if lit_nib == NIBBLE_EXT {
        put_varint(out, lit_n - NIBBLE_EXT);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        put_varint(out, offset as u64);
        if m_nib == NIBBLE_EXT {
            put_varint(out, m_n - NIBBLE_EXT);
        }
    }
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(buf, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer (cleared first), so the
/// chain decode loop can reuse one allocation across chunks.
pub fn decompress_into(buf: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let mut r = ByteReader::new(buf);
    let raw_len = r.varint("lz raw length")? as usize;
    if raw_len > 1 << 40 {
        return Err(CodecError::Corrupt { context: "lz raw length" });
    }
    out.clear();
    out.reserve(raw_len);
    while out.len() < raw_len {
        let tok = r.u8("lz token")?;
        let lit_nib = u64::from(tok >> 4);
        let m_nib = u64::from(tok & 0x0f);
        let lit_n = if lit_nib == NIBBLE_EXT {
            lit_nib + r.varint("lz literal length")?
        } else {
            lit_nib
        } as usize;
        if out.len() + lit_n > raw_len {
            return Err(CodecError::Corrupt { context: "lz literal overrun" });
        }
        out.extend_from_slice(r.take(lit_n, "lz literals")?);
        if m_nib > 0 || out.len() < raw_len {
            // A match follows unless this was the final literal-only token.
            if m_nib == 0 {
                // lit-only token in the middle is only legal at the end.
                if out.len() == raw_len {
                    break;
                }
                return Err(CodecError::Corrupt { context: "lz empty match" });
            }
            let offset = r.varint("lz offset")? as usize;
            let m_extra = if m_nib == NIBBLE_EXT {
                r.varint("lz match length")?
            } else {
                0
            };
            let match_len = (m_nib + m_extra - 1) as usize + MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(CodecError::Corrupt { context: "lz offset" });
            }
            if out.len() + match_len > raw_len {
                return Err(CodecError::Corrupt { context: "lz match overrun" });
            }
            // Byte-at-a-time copy: supports overlapping matches (RLE).
            let start = out.len() - offset;
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::Corrupt { context: "lz output length" });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = std::iter::repeat_n(b"abcdefgh".as_slice(), 1000)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn rle_overlapping_match() {
        let data = vec![0x41u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Xorshift noise.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress(&data);
        // Expansion is bounded by token overhead.
        assert!(c.len() < data.len() + data.len() / 8 + 64);
        roundtrip(&data);
    }

    #[test]
    fn long_literal_and_long_match_extensions() {
        // > 15 literals then > 18 match bytes exercises both varint
        // extensions.
        let mut data: Vec<u8> = (0..100u8).collect();
        data.extend(std::iter::repeat_n(7u8, 500));
        roundtrip(&data);
    }

    #[test]
    fn matches_beyond_window_not_used() {
        // A repeated block separated by > WINDOW noise still round-trips.
        let mut data = b"needle-needle-needle".to_vec();
        let mut x = 99u32;
        for _ in 0..WINDOW + 100 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        data.extend_from_slice(b"needle-needle-needle");
        roundtrip(&data);
    }

    #[test]
    fn truncation_detected() {
        let data: Vec<u8> = std::iter::repeat_n(b"xyzw".as_slice(), 100)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        for cut in 1..c.len() {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_offset_detected() {
        let data = vec![5u8; 100];
        let mut c = compress(&data);
        // Find the offset varint and blow it up: brute-force flip bytes
        // and require error or exact roundtrip (never wrong data).
        for i in 0..c.len() {
            let orig = c[i];
            c[i] = orig.wrapping_add(0x55);
            if let Ok(d) = decompress(&c) {
                assert_ne!(d.len(), 0); // decoded something structurally valid
            }
            c[i] = orig;
        }
    }

    #[test]
    fn float_like_data() {
        let floats: Vec<u8> = (0..10_000)
            .flat_map(|i| ((i as f32) * 0.001).sin().to_le_bytes())
            .collect();
        roundtrip(&floats);
    }
}
