//! MSB-first bit-level I/O used by the Huffman coder, the ZFP bitplane
//! coder, and the SZx bit packer.

use crate::error::{CodecError, Result};

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default, Debug)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits pending in `acc` (0–7), stored in the high bits.
    acc: u8,
    used: u32,
    nbits: u64,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with a pre-reserved byte capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            ..Self::default()
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.nbits
    }

    /// Writes a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc |= u8::from(bit) << (7 - self.used);
        self.used += 1;
        self.nbits += 1;
        if self.used == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.used = 0;
        }
    }

    /// Writes the low `n` bits of `v`, most significant first (`n ≤ 64`).
    #[inline]
    pub fn put_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Writes `v` in unary: `v` one-bits then a zero-bit.
    pub fn put_unary(&mut self, v: u32) {
        for _ in 0..v {
            self.put_bit(true);
        }
        self.put_bit(false);
    }

    /// Pads to a byte boundary with zero bits and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_position(&self) -> u64 {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Reads one bit.
    #[inline]
    pub fn get_bit(&mut self, context: &'static str) -> Result<bool> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(CodecError::TruncatedStream { context });
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first (`n ≤ 64`).
    #[inline]
    pub fn get_bits(&mut self, n: u32, context: &'static str) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.remaining_bits() < u64::from(n) {
            return Err(CodecError::TruncatedStream { context });
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.get_bit(context)?);
        }
        Ok(v)
    }

    /// Reads a unary-coded value (count of one-bits before the zero).
    pub fn get_unary(&mut self, context: &'static str) -> Result<u32> {
        let mut v = 0;
        while self.get_bit(context)? {
            v += 1;
            if v > 1 << 24 {
                return Err(CodecError::Corrupt { context });
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit("t").unwrap(), b);
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xdead_beef, 32);
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4, "t").unwrap(), 0b1011);
        assert_eq!(r.get_bits(32, "t").unwrap(), 0xdead_beef);
        assert_eq!(r.get_bits(64, "t").unwrap(), u64::MAX);
        assert_eq!(r.get_bits(1, "t").unwrap(), 0);
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_bits(0, 7);
        assert_eq!(w.finish(), vec![0b1000_0000]);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 2, 7, 31] {
            w.put_unary(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in [0u32, 1, 2, 7, 31] {
            assert_eq!(r.get_unary("t").unwrap(), v);
        }
    }

    #[test]
    fn reader_detects_truncation() {
        let mut w = BitWriter::new();
        w.put_bits(0x3ff, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // The padded byte still contains readable (zero) padding bits, so
        // only reads beyond 16 bits fail.
        assert!(r.get_bits(16, "t").is_ok());
        assert!(r.get_bit("t").is_err());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.put_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }
}
