//! MSB-first bit-level I/O used by the Huffman coder, the ZFP bitplane
//! coder, and the SZx bit packer.

use crate::error::{CodecError, Result};

/// Accumulates bits MSB-first into a byte vector.
#[derive(Default, Debug)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits pending in `acc` (0–7), stored in the high bits.
    acc: u8,
    used: u32,
    nbits: u64,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with a pre-reserved byte capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            ..Self::default()
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.nbits
    }

    /// Writes a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc |= u8::from(bit) << (7 - self.used);
        self.used += 1;
        self.nbits += 1;
        if self.used == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.used = 0;
        }
    }

    /// Writes the low `n` bits of `v`, most significant first (`n ≤ 64`).
    #[inline]
    pub fn put_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Writes `v` in unary: `v` one-bits then a zero-bit.
    pub fn put_unary(&mut self, v: u32) {
        for _ in 0..v {
            self.put_bit(true);
        }
        self.put_bit(false);
    }

    /// Pads to a byte boundary with zero bits and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_position(&self) -> u64 {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Reads one bit.
    #[inline]
    pub fn get_bit(&mut self, context: &'static str) -> Result<bool> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return Err(CodecError::TruncatedStream { context });
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first (`n ≤ 64`).
    ///
    /// Word-based: the value is assembled from at most `⌈n/8⌉ + 1` byte
    /// loads instead of `n` single-bit reads, which is what lets the
    /// SZx bit-unpack and ZFP plane loops run at memory speed. Bit-exact
    /// with the per-bit formulation (same MSB-first order, same upfront
    /// truncation check against the padded byte length).
    #[inline]
    pub fn get_bits(&mut self, n: u32, context: &'static str) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.remaining_bits() < u64::from(n) {
            return Err(CodecError::TruncatedStream { context });
        }
        if n == 0 {
            return Ok(0);
        }
        let mut byte = (self.pos / 8) as usize;
        let bit_in_byte = (self.pos % 8) as u32;
        self.pos += u64::from(n);
        // Unread low bits of the first (possibly partial) byte.
        let avail = 8 - bit_in_byte;
        let head = u64::from(self.bytes[byte]) & ((1u64 << avail) - 1);
        if n <= avail {
            return Ok(head >> (avail - n));
        }
        let mut v = head;
        let mut need = n - avail;
        byte += 1;
        while need >= 8 {
            v = (v << 8) | u64::from(self.bytes[byte]);
            byte += 1;
            need -= 8;
        }
        if need > 0 {
            v = (v << need) | (u64::from(self.bytes[byte]) >> (8 - need));
        }
        Ok(v)
    }

    /// Advances the cursor by `n` bits without materializing them —
    /// the partial-chunk decoders use this to step over blocks whose
    /// samples fall outside the requested region.
    #[inline]
    pub fn skip_bits(&mut self, n: u64, context: &'static str) -> Result<()> {
        if self.remaining_bits() < n {
            return Err(CodecError::TruncatedStream { context });
        }
        self.pos += n;
        Ok(())
    }

    /// Reads a unary-coded value (count of one-bits before the zero).
    pub fn get_unary(&mut self, context: &'static str) -> Result<u32> {
        let mut v = 0;
        while self.get_bit(context)? {
            v += 1;
            if v > 1 << 24 {
                return Err(CodecError::Corrupt { context });
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len() as u64);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit("t").unwrap(), b);
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xdead_beef, 32);
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4, "t").unwrap(), 0b1011);
        assert_eq!(r.get_bits(32, "t").unwrap(), 0xdead_beef);
        assert_eq!(r.get_bits(64, "t").unwrap(), u64::MAX);
        assert_eq!(r.get_bits(1, "t").unwrap(), 0);
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        w.put_bits(0, 7);
        assert_eq!(w.finish(), vec![0b1000_0000]);
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 2, 7, 31] {
            w.put_unary(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in [0u32, 1, 2, 7, 31] {
            assert_eq!(r.get_unary("t").unwrap(), v);
        }
    }

    #[test]
    fn reader_detects_truncation() {
        let mut w = BitWriter::new();
        w.put_bits(0x3ff, 10);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // The padded byte still contains readable (zero) padding bits, so
        // only reads beyond 16 bits fail.
        assert!(r.get_bits(16, "t").is_ok());
        assert!(r.get_bit("t").is_err());
    }

    #[test]
    fn word_get_bits_matches_per_bit_reads() {
        // Pseudo-random payload; every (offset, width) pair must agree
        // with the single-bit formulation, including the readable zero
        // padding of the final byte.
        let bytes: Vec<u8> = (0..13u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9).rotate_left(11) & 0xff) as u8)
            .collect();
        for start in 0..24u64 {
            for n in 0..=64u32 {
                let mut fast = BitReader::new(&bytes);
                fast.pos = start;
                let mut slow = BitReader::new(&bytes);
                slow.pos = start;
                let got = fast.get_bits(n, "t");
                let want = if slow.remaining_bits() < u64::from(n) {
                    Err(CodecError::TruncatedStream { context: "t" })
                } else {
                    let mut v = 0u64;
                    for _ in 0..n {
                        v = (v << 1) | u64::from(slow.get_bit("t").unwrap());
                    }
                    Ok(v)
                };
                assert_eq!(got, want, "start {start} n {n}");
                if want.is_ok() {
                    assert_eq!(fast.bit_position(), start + u64::from(n));
                }
            }
        }
    }

    #[test]
    fn skip_bits_advances_and_bounds_checks() {
        let bytes = [0xabu8, 0xcd];
        let mut r = BitReader::new(&bytes);
        r.skip_bits(5, "t").unwrap();
        assert_eq!(r.get_bits(3, "t").unwrap(), 0b011);
        assert_eq!(r.get_bits(8, "t").unwrap(), 0xcd);
        assert!(r.skip_bits(1, "t").is_err());
        assert!(r.skip_bits(0, "t").is_ok());
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.put_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }
}
