//! Shared container framing: the shape/dtype/bound fields and CRC
//! trailer plumbing that every self-describing container in the
//! workspace uses — the `EBLC` stream header, the `EBLP` parallel
//! container, and `eblcio_store`'s `EBCS` manifest all speak through
//! these helpers instead of re-parsing the byte grammar by hand.

use crate::error::{CodecError, Result};
use crate::util::{crc32, put_varint, ByteReader};
use eblcio_data::shape::MAX_RANK;
use eblcio_data::Shape;

/// Largest accepted per-axis extent (2^40 samples ≈ 4 TiB of f32 on one
/// axis); anything larger in a header is treated as corruption.
pub const MAX_DIM: u64 = 1 << 40;

/// Checks a 4-byte container magic.
pub fn expect_magic(r: &mut ByteReader<'_>, magic: &[u8; 4]) -> Result<()> {
    if r.take(4, "magic")? == magic {
        Ok(())
    } else {
        Err(CodecError::BadMagic)
    }
}

/// Appends `rank u8 | rank × varint` for a shape.
pub fn put_shape(out: &mut Vec<u8>, shape: Shape) {
    out.push(shape.rank() as u8);
    for &d in shape.dims() {
        put_varint(out, d as u64);
    }
}

/// Reads a shape written by [`put_shape`], validating rank and extents.
pub fn read_shape(r: &mut ByteReader<'_>) -> Result<Shape> {
    let rank = r.u8("rank")? as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(CodecError::Corrupt { context: "rank" });
    }
    let mut dims = [0usize; MAX_RANK];
    for d in dims.iter_mut().take(rank) {
        let v = r.varint("dimension")?;
        if v == 0 || v > MAX_DIM {
            return Err(CodecError::Corrupt { context: "dimension" });
        }
        *d = v as usize;
    }
    Ok(Shape::new(&dims[..rank]))
}

/// Reads and validates the dtype tag (0 = f32, 1 = f64).
pub fn read_dtype(r: &mut ByteReader<'_>) -> Result<u8> {
    let dtype = r.u8("dtype")?;
    if dtype > 1 {
        return Err(CodecError::Corrupt { context: "dtype tag" });
    }
    Ok(dtype)
}

/// Appends an absolute error bound as a little-endian f64 bit pattern.
pub fn put_abs_bound(out: &mut Vec<u8>, abs: f64) {
    out.extend_from_slice(&abs.to_bits().to_le_bytes());
}

/// Reads an absolute bound. Encoders only ever record finite
/// non-negative bounds (zero is legal for modes that report an achieved
/// error of exactly zero); `require_positive` tightens that for
/// containers whose writers resolve ε before writing.
pub fn read_abs_bound(r: &mut ByteReader<'_>, require_positive: bool) -> Result<f64> {
    let abs = r.f64("abs bound")?;
    let ok = abs.is_finite() && if require_positive { abs > 0.0 } else { abs >= 0.0 };
    if ok {
        Ok(abs)
    } else {
        Err(CodecError::Corrupt { context: "abs bound" })
    }
}

/// Appends the CRC32 of everything already in `out` — the manifest-style
/// trailer that lets a reader verify all header bytes before trusting
/// any of them.
pub fn put_crc_trailer(out: &mut Vec<u8>) {
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Verifies a [`put_crc_trailer`] checksum: the four bytes at the
/// reader's position must be the CRC32 of every byte before them.
pub fn check_crc_trailer(r: &mut ByteReader<'_>, stream: &[u8]) -> Result<()> {
    let covered = r.position();
    let stored = r.u32("header crc")?;
    if stored == crc32(&stream[..covered]) {
        Ok(())
    } else {
        Err(CodecError::ChecksumMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_roundtrip() {
        for shape in [Shape::d1(7), Shape::d2(1, 900), Shape::d3(26, 1800, 3600), Shape::d4(2, 3, 4, 5)] {
            let mut buf = Vec::new();
            put_shape(&mut buf, shape);
            let mut r = ByteReader::new(&buf);
            assert_eq!(read_shape(&mut r).unwrap(), shape);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn bad_shapes_rejected() {
        // Zero rank.
        let mut r = ByteReader::new(&[0u8]);
        assert!(read_shape(&mut r).is_err());
        // Rank above MAX_RANK.
        let mut r = ByteReader::new(&[9u8, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(read_shape(&mut r).is_err());
        // Zero dimension.
        let mut r = ByteReader::new(&[1u8, 0]);
        assert!(read_shape(&mut r).is_err());
        // Oversized dimension.
        let mut buf = vec![1u8];
        put_varint(&mut buf, MAX_DIM + 1);
        let mut r = ByteReader::new(&buf);
        assert!(read_shape(&mut r).is_err());
    }

    #[test]
    fn crc_trailer_roundtrip_and_detection() {
        let mut buf = b"header bytes".to_vec();
        put_crc_trailer(&mut buf);
        let mut r = ByteReader::new(&buf);
        r.take(12, "body").unwrap();
        assert!(check_crc_trailer(&mut r, &buf).is_ok());
        assert_eq!(r.remaining(), 0);

        let mut bad = buf.clone();
        bad[3] ^= 0x40;
        let mut r = ByteReader::new(&bad);
        r.take(12, "body").unwrap();
        assert_eq!(
            check_crc_trailer(&mut r, &bad).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn bound_validation() {
        for (bits, strict_ok, loose_ok) in [
            (1e-3f64, true, true),
            (0.0, false, true),
            (-1.0, false, false),
            (f64::NAN, false, false),
            (f64::INFINITY, false, false),
        ] {
            let mut buf = Vec::new();
            put_abs_bound(&mut buf, bits);
            let mut r = ByteReader::new(&buf);
            assert_eq!(read_abs_bound(&mut r, true).is_ok(), strict_ok, "{bits}");
            let mut r = ByteReader::new(&buf);
            assert_eq!(read_abs_bound(&mut r, false).is_ok(), loose_ok, "{bits}");
        }
    }
}
