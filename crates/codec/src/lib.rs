//! # eblcio-codec
//!
//! From-scratch Rust implementations of the five error-bounded lossy
//! compressors (EBLC) the paper characterizes — SZ2, SZ3, ZFP, QoZ, SZx —
//! plus the four lossless baselines of its Figure 1, and the shared
//! machinery they are built from:
//!
//! * [`bitstream`] — MSB-first bit-level I/O,
//! * [`huffman`] — canonical Huffman coding of quantization codes,
//! * [`lz`] — an LZ77+Huffman lossless backend (the "Zstd stage" of
//!   SZ-family pipelines),
//! * [`quantizer`] — error-controlled linear quantization,
//! * [`predict`] — Lorenzo and block linear-regression predictors (SZ2),
//! * [`interp`] — multi-level spline interpolation predictors (SZ3/QoZ),
//! * [`transform`] — the ZFP block decorrelating transform + embedded
//!   bitplane coder,
//! * [`codecs`] — the five EBLC pipelines as chain array stages,
//! * [`stage`] / [`chain`] — the composable codec-chain architecture:
//!   array stages + byte stages, serializable [`ChainSpec`]s, and the
//!   [`CodecRegistry`] that builds them (the five paper codecs are the
//!   preset chains, behind one [`Compressor`] trait),
//! * [`framing`] — shared container framing (shape/dtype/bound fields,
//!   CRC trailers) used by `EBLC`, `EBLP`, and the store's `EBCS`,
//! * [`lossless`] — zstd/blosc/fpzip/FPC-style lossless baselines,
//! * [`parallel`] — the "OpenMP mode": thread-chunked compression used
//!   for the paper's strong-scaling study (Fig. 10).
//!
//! Every codec guarantees the paper's Eq. 1 value-range relative error
//! bound, enforced by construction and verified by property tests.

#![forbid(unsafe_code)]

pub mod bitstream;
pub mod chain;
pub mod codecs;
pub mod error;
pub mod estimate;
pub mod framing;
pub mod header;
pub mod huffman;
pub mod interp;
pub mod lossless;
pub mod lz;
pub mod parallel;
pub mod predict;
pub mod quantizer;
pub mod scratch;
pub mod stage;
pub mod traits;
pub mod transform;
pub mod util;

pub use chain::{ChainSpec, CodecChain, CodecRegistry};
pub use codecs::{qoz::Qoz, sz2::Sz2, sz3::Sz3, szx::Szx, zfp::Zfp};
pub use error::{CodecError, Result};
pub use parallel::{
    compress_parallel, decompress_parallel, parallel_stream_info, ParallelStreamInfo,
};
pub use scratch::{with_scratch, DecodeScratch};
pub use stage::{ArrayStage, ByteStage, ByteStageSpec};
pub use traits::{
    compress, compress_dataset, compress_view, decompress, decompress_any, decompress_region,
    Compressor, CompressorId, ErrorBound,
};
