//! Multi-level spline interpolation (the SZ3/QoZ predictor).
//!
//! SZ3 (Zhao et al., ICDE'21) predicts samples by dynamic spline
//! interpolation on a level-by-level refined grid: a coarse *anchor*
//! lattice is stored first, then each level halves the stride, predicting
//! the new points from already-reconstructed neighbours along one axis at
//! a time — cubic where four neighbours exist, linear at boundaries.
//!
//! This module provides the deterministic *walk* shared verbatim by the
//! encoder and the decoder: the sequence of (target, interpolation
//! sources) pairs, in a fixed order, such that every source is
//! reconstructed before it is used and every non-anchor sample is visited
//! exactly once.

use eblcio_data::Shape;

/// How one target sample is predicted from flat reconstruction offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interp {
    /// 4-point cubic midpoint interpolation: weights (−1, 9, 9, −1)/16.
    Cubic([usize; 4]),
    /// 2-point linear midpoint interpolation.
    Linear([usize; 2]),
    /// Nearest known neighbour (upper boundary).
    Copy(usize),
}

impl Interp {
    /// Evaluates the prediction against a reconstruction buffer.
    #[inline]
    pub fn eval(&self, recon: &[f64]) -> f64 {
        match *self {
            Interp::Cubic([a, b, c, d]) => {
                (-recon[a] + 9.0 * recon[b] + 9.0 * recon[c] - recon[d]) / 16.0
            }
            Interp::Linear([a, b]) => 0.5 * (recon[a] + recon[b]),
            Interp::Copy(a) => recon[a],
        }
    }
}

/// One prediction task produced by the walk.
#[derive(Clone, Copy, Debug)]
pub struct Task {
    /// Flat offset of the sample being predicted.
    pub target: usize,
    /// Its interpolation stencil.
    pub pred: Interp,
    /// Interpolation level (1 = finest); QoZ varies the error bound by
    /// this.
    pub level: u32,
}

/// Number of interpolation levels for a shape: `⌈log2(max dim)⌉`.
pub fn max_level(shape: Shape) -> u32 {
    let m = shape.dims().iter().copied().max().unwrap_or(1);
    usize::BITS - (m - 1).leading_zeros()
}

/// Flat offsets of the anchor lattice (all coordinates ≡ 0 mod 2^L), in
/// raster order.
pub fn anchor_offsets(shape: Shape) -> Vec<usize> {
    let stride = 1usize << max_level(shape);
    let rank = shape.rank();
    let strides = shape.strides();
    let mut counts = [1usize; 4];
    for (d, count) in counts.iter_mut().enumerate().take(rank) {
        *count = shape.dim(d).div_ceil(stride);
    }
    let total: usize = counts[..rank].iter().product();
    let mut out = Vec::with_capacity(total);
    let mut idx = [0usize; 4];
    for _ in 0..total {
        let off: usize = (0..rank).map(|d| idx[d] * stride * strides[d]).sum();
        out.push(off);
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

/// Drives the full multi-level walk, invoking `visit` once per non-anchor
/// sample in a deterministic order. See the module docs for the schedule.
pub fn walk(shape: Shape, mut visit: impl FnMut(Task)) {
    let rank = shape.rank();
    let strides = shape.strides();
    let levels = max_level(shape);

    for level in (1..=levels).rev() {
        let s = 1usize << level;
        let h = s / 2;
        for axis in 0..rank {
            let dim_a = shape.dim(axis);
            if h >= dim_a {
                continue; // no interpolation targets along this axis
            }
            // Iterate the lattice of "other" coordinates: axes < axis at
            // stride h, axes > axis at stride s, and the target axis at
            // h, h+s, h+2s, …
            let mut counts = [1usize; 4];
            for (d, count) in counts.iter_mut().enumerate().take(rank) {
                if d == axis {
                    *count = (dim_a - h).div_ceil(s);
                } else if d < axis {
                    *count = shape.dim(d).div_ceil(h);
                } else {
                    *count = shape.dim(d).div_ceil(s);
                }
            }
            // Flat-offset delta of one odometer tick per dim: the walk
            // advances `off` by pure integer adds instead of recomputing
            // a coordinate dot product for every task — the decode inner
            // loop is then add/compare only, which keeps it pipelined.
            let mut steps = [0usize; 4];
            for (d, sp) in steps.iter_mut().enumerate().take(rank) {
                *sp = if d < axis { h } else { s } * strides[d];
            }
            let total: usize = counts[..rank].iter().product();
            let axis_stride = strides[axis];
            let mut idx = [0usize; 4];
            let mut off = h * axis_stride;
            let mut t = h;
            for _ in 0..total {
                let pred = if t >= 3 * h && t + 3 * h < dim_a {
                    Interp::Cubic([
                        off - 3 * h * axis_stride,
                        off - h * axis_stride,
                        off + h * axis_stride,
                        off + 3 * h * axis_stride,
                    ])
                } else if t + h < dim_a {
                    Interp::Linear([off - h * axis_stride, off + h * axis_stride])
                } else {
                    Interp::Copy(off - h * axis_stride)
                };
                visit(Task {
                    target: off,
                    pred,
                    level,
                });
                // Incremental odometer: adjust `off` (and the target-axis
                // coordinate `t`) as digits tick and wrap.
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    if idx[d] < counts[d] {
                        off += steps[d];
                        if d == axis {
                            t += s;
                        }
                        break;
                    }
                    idx[d] = 0;
                    off -= steps[d] * (counts[d] - 1);
                    if d == axis {
                        t = h;
                    }
                }
            }
        }
    }
}

/// The frozen pre-optimization walk: recomputes every target offset as a
/// coordinate dot product instead of ticking it incrementally. This is
/// the walk the shipped decoder used before the hot-path pass, kept
/// verbatim as the baseline arm of the decode-bandwidth gate (via
/// `interp_decode_reference`) and as the oracle for [`walk`] — the two
/// must emit identical task sequences.
pub(crate) fn walk_reference(shape: Shape, mut visit: impl FnMut(Task)) {
    let rank = shape.rank();
    let strides = shape.strides();
    for level in (1..=max_level(shape)).rev() {
        let s = 1usize << level;
        let h = s / 2;
        for axis in 0..rank {
            let dim_a = shape.dim(axis);
            if h >= dim_a {
                continue;
            }
            let mut counts = [1usize; 4];
            for (d, count) in counts.iter_mut().enumerate().take(rank) {
                if d == axis {
                    *count = (dim_a - h).div_ceil(s);
                } else if d < axis {
                    *count = shape.dim(d).div_ceil(h);
                } else {
                    *count = shape.dim(d).div_ceil(s);
                }
            }
            let total: usize = counts[..rank].iter().product();
            let axis_stride = strides[axis];
            let mut idx = [0usize; 4];
            for _ in 0..total {
                let mut t = 0usize;
                let mut off = 0usize;
                for d in 0..rank {
                    let coord = if d == axis {
                        let c = h + idx[d] * s;
                        t = c;
                        c
                    } else if d < axis {
                        idx[d] * h
                    } else {
                        idx[d] * s
                    };
                    off += coord * strides[d];
                }
                let pred = if t >= 3 * h && t + 3 * h < dim_a {
                    Interp::Cubic([
                        off - 3 * h * axis_stride,
                        off - h * axis_stride,
                        off + h * axis_stride,
                        off + 3 * h * axis_stride,
                    ])
                } else if t + h < dim_a {
                    Interp::Linear([off - h * axis_stride, off + h * axis_stride])
                } else {
                    Interp::Copy(off - h * axis_stride)
                };
                visit(Task { target: off, pred, level });
                for d in (0..rank).rev() {
                    idx[d] += 1;
                    if idx[d] < counts[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(shape: Shape) {
        let mut seen = vec![0u8; shape.len()];
        for off in anchor_offsets(shape) {
            seen[off] += 1;
        }
        let n_anchor = anchor_offsets(shape).len();
        let mut order_ok = true;
        walk(shape, |task| {
            // Every source must already be reconstructed.
            let srcs: &[usize] = match &task.pred {
                Interp::Cubic(s) => s,
                Interp::Linear(s) => s,
                Interp::Copy(s) => std::slice::from_ref(s),
            };
            for &s in srcs {
                if seen[s] == 0 {
                    order_ok = false;
                }
            }
            seen[task.target] += 1;
        });
        assert!(order_ok, "a stencil source was used before definition");
        assert!(
            seen.iter().all(|&c| c == 1),
            "walk must cover every sample exactly once (anchors: {n_anchor}, shape {shape})"
        );
    }

    #[test]
    fn covers_various_shapes_exactly_once() {
        for shape in [
            Shape::d1(1),
            Shape::d1(2),
            Shape::d1(7),
            Shape::d1(64),
            Shape::d1(1000),
            Shape::d2(4, 4),
            Shape::d2(5, 9),
            Shape::d2(1, 17),
            Shape::d3(8, 8, 8),
            Shape::d3(3, 5, 7),
            Shape::d4(3, 4, 5, 2),
            Shape::d4(4, 4, 4, 4),
        ] {
            check_cover(shape);
        }
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level(Shape::d1(1)), 0);
        assert_eq!(max_level(Shape::d1(2)), 1);
        assert_eq!(max_level(Shape::d1(3)), 2);
        assert_eq!(max_level(Shape::d1(512)), 9);
        assert_eq!(max_level(Shape::d3(4, 16, 9)), 4);
    }

    #[test]
    fn anchor_lattice_is_coarse_grid() {
        let shape = Shape::d2(9, 9);
        // L = 4 → stride 16 → only (0,0).
        assert_eq!(anchor_offsets(shape), vec![0]);
        let shape = Shape::d1(64);
        // L = 6 → stride 64 → only 0.
        assert_eq!(anchor_offsets(shape), vec![0]);
    }

    #[test]
    fn interp_eval_exact_on_affine_lines() {
        // recon holds f(x) = 2 + 3x on a 1-D grid; both stencils must be
        // exact for affine data.
        let recon: Vec<f64> = (0..16).map(|x| 2.0 + 3.0 * x as f64).collect();
        let cubic = Interp::Cubic([0, 2, 4, 6]); // predicts x = 3
        assert!((cubic.eval(&recon) - (2.0 + 9.0)).abs() < 1e-12);
        let linear = Interp::Linear([2, 4]); // predicts x = 3
        assert!((linear.eval(&recon) - 11.0).abs() < 1e-12);
        let copy = Interp::Copy(5);
        assert_eq!(copy.eval(&recon), recon[5]);
    }

    #[test]
    fn cubic_eval_exact_on_cubic_polynomials() {
        // Midpoint 4-point interpolation is exact for cubics.
        let f = |x: f64| 1.0 - 2.0 * x + 0.5 * x * x + 0.125 * x * x * x;
        // Known points at x = 0, 2, 4, 6; target x = 3.
        let recon = [f(0.0), 0.0, f(2.0), 0.0, f(4.0), 0.0, f(6.0)];
        let cubic = Interp::Cubic([0, 2, 4, 6]);
        assert!((cubic.eval(&recon) - f(3.0)).abs() < 1e-12);
    }

    #[test]
    fn incremental_walk_matches_naive_recomputation() {
        for shape in [
            Shape::d1(1),
            Shape::d1(2),
            Shape::d1(7),
            Shape::d1(129),
            Shape::d2(5, 9),
            Shape::d2(1, 17),
            Shape::d2(16, 16),
            Shape::d3(3, 5, 7),
            Shape::d3(8, 8, 8),
            Shape::d4(3, 4, 5, 2),
        ] {
            let mut want: Vec<(usize, Interp, u32)> = Vec::new();
            walk_reference(shape, |t| want.push((t.target, t.pred, t.level)));
            let mut got: Vec<(usize, Interp, u32)> = Vec::new();
            walk(shape, |t| got.push((t.target, t.pred, t.level)));
            assert_eq!(got, want, "walk diverged on {shape}");
        }
    }

    #[test]
    fn walk_levels_are_descending() {
        let mut last = u32::MAX;
        walk(Shape::d2(16, 16), |t| {
            assert!(t.level <= last);
            last = t.level;
        });
    }
}
