//! Byte-level helpers shared by every codec: little-endian scalar I/O
//! with truncation checking, LEB128 varints, zig-zag mapping, and CRC32.

use crate::error::{CodecError, Result};

/// Cursor over a byte slice with checked reads.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::TruncatedStream { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self, context: &'static str) -> Result<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian f64.
    pub fn f64(&mut self, context: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a LEB128-encoded unsigned varint.
    pub fn varint(&mut self, context: &'static str) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(context)?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(CodecError::Corrupt { context });
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Appends a LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Zig-zag maps a signed value to unsigned (small magnitudes stay small).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// CRC-32 (IEEE 802.3 polynomial), used as the container checksum for
/// corruption detection in failure-injection tests.
pub fn crc32(data: &[u8]) -> u32 {
    // Small 16-entry nibble table: compact and fast enough for headers
    // and per-stream integrity checks.
    const TABLE: [u32; 16] = [
        0x0000_0000, 0x1db7_1064, 0x3b6e_20c8, 0x26d9_30ac, 0x76dc_4190, 0x6b6b_51f4,
        0x4db2_6158, 0x5005_713c, 0xedb8_8320, 0xf00f_9344, 0xd6d6_a3e8, 0xcb61_b38c,
        0x9b64_c2b0, 0x86d3_d2d4, 0xa00a_e278, 0xbdbd_f21c,
    ];
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0x0f) as usize] ^ (crc >> 4);
        crc = TABLE[((crc ^ (u32::from(b) >> 4)) & 0x0f) as usize] ^ (crc >> 4);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_reads_scalars() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0x1234u16.to_le_bytes());
        buf.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        buf.extend_from_slice(&42u64.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0x1234);
        assert_eq!(r.u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("d").unwrap(), 42);
        assert_eq!(r.f64("e").unwrap(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_reports_truncation() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(
            r.u32("field"),
            Err(CodecError::TruncatedStream { context: "field" })
        );
    }

    #[test]
    fn varint_roundtrip() {
        let cases = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v, "value {v}");
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0xffu8; 11];
        let mut r = ByteReader::new(&buf);
        assert!(r.varint("v").is_err());
    }

    #[test]
    fn zigzag_roundtrip_and_ordering() {
        for v in [-1_000_000i64, -2, -1, 0, 1, 2, 1_000_000, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn crc32_detects_change() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(crc32(b"hello world"), a);
        assert_eq!(crc32(b""), 0);
    }
}
