//! Canonical Huffman coding of quantization codes.
//!
//! The SZ-family pipelines (SZ2 §II-B, SZ3) entropy-code their quantized
//! prediction residuals with Huffman before the lossless backend. This
//! module implements a self-contained canonical-Huffman block format:
//!
//! ```text
//! [n_symbols varint] [table: (symbol delta varint, code len u8)*]
//! [n_values varint] [payload bit length varint] [payload bits…]
//! ```
//!
//! Code lengths are capped at [`MAX_CODE_LEN`]; if the optimal tree is
//! deeper (possible with extremely skewed counts), frequencies are
//! repeatedly halved until the tree fits — the classic pragmatic
//! length-limiting approach.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::{CodecError, Result};
use crate::util::{put_varint, ByteReader};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Maximum admissible code length in bits.
pub const MAX_CODE_LEN: u8 = 32;

/// Encodes a symbol sequence as a self-contained Huffman block.
pub fn encode_block(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    if symbols.is_empty() {
        put_varint(&mut out, 0); // n_symbols
        put_varint(&mut out, 0); // n_values
        put_varint(&mut out, 0); // payload bits
        return out;
    }

    // Frequency census. Quantization codes are dense small integers, so
    // use a flat table when the alphabet is small and fall back to a map
    // for sparse/huge symbols.
    let max_sym = symbols.iter().copied().max().unwrap_or(0);
    let mut freq: HashMap<u32, u64> = HashMap::new();
    if max_sym < 1 << 20 {
        let mut counts = vec![0u64; max_sym as usize + 1];
        for &s in symbols {
            counts[s as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 0 {
                freq.insert(s as u32, c);
            }
        }
    } else {
        for &s in symbols {
            *freq.entry(s).or_insert(0) += 1;
        }
    }
    let lengths = code_lengths(&freq);
    let canon = canonical_codes(&lengths);

    // Table: symbols sorted ascending, delta-coded.
    let mut table: Vec<(u32, u8)> = lengths.clone();
    table.sort_unstable_by_key(|&(s, _)| s);
    put_varint(&mut out, table.len() as u64);
    let mut prev = 0u32;
    for &(sym, len) in &table {
        put_varint(&mut out, u64::from(sym - prev));
        out.push(len);
        prev = sym;
    }

    // Payload.
    let mut bits = BitWriter::with_capacity(symbols.len() / 2);
    for &s in symbols {
        // eblcio-allow(panic-freedom): canon is built from the census of these exact symbols two lines up; encode_block stays infallible for the hot encode path
        let &(code, len) = canon.get(&s).expect("symbol in census");
        bits.put_bits(code, u32::from(len));
    }
    put_varint(&mut out, symbols.len() as u64);
    put_varint(&mut out, bits.bit_len());
    out.extend_from_slice(&bits.finish());
    out
}

/// Decodes a block produced by [`encode_block`].
///
/// Returns the symbols and the number of bytes consumed from `buf`.
/// This is the table-driven fast path; [`decode_block_reference`] keeps
/// the original bit-at-a-time walk as the equivalence oracle.
pub fn decode_block(buf: &[u8]) -> Result<(Vec<u32>, usize)> {
    let mut out = Vec::new();
    let mut lut = HuffLookup::default();
    let used = decode_block_into(buf, &mut out, &mut lut)?;
    Ok((out, used))
}

/// Parses the table header shared by both decode paths. Returns `None`
/// (after validating the two trailing zero varints) for an empty block.
fn parse_table(r: &mut ByteReader<'_>) -> Result<Option<Vec<(u32, u8)>>> {
    let n_table = r.varint("huffman table size")? as usize;
    if n_table == 0 {
        let n_values = r.varint("huffman value count")?;
        let n_bits = r.varint("huffman bit length")?;
        if n_values != 0 || n_bits != 0 {
            return Err(CodecError::Corrupt { context: "empty huffman block" });
        }
        return Ok(None);
    }
    if n_table > 1 << 28 {
        return Err(CodecError::Corrupt { context: "huffman table size" });
    }

    let mut table = Vec::with_capacity(n_table);
    let mut sym = 0u32;
    for i in 0..n_table {
        let delta = r.varint("huffman table symbol")?;
        if i > 0 && delta == 0 {
            // Symbols are strictly increasing after the first entry.
            return Err(CodecError::Corrupt { context: "huffman duplicate symbol" });
        }
        sym = sym
            .checked_add(u32::try_from(delta).map_err(|_| CodecError::Corrupt {
                context: "huffman symbol delta",
            })?)
            .ok_or(CodecError::Corrupt { context: "huffman symbol overflow" })?;
        let len = r.u8("huffman code length")?;
        if len == 0 || len > MAX_CODE_LEN {
            return Err(CodecError::Corrupt { context: "huffman code length" });
        }
        table.push((sym, len));
    }
    Ok(Some(table))
}

/// Decodes a block into a caller-owned buffer (cleared first), reusing
/// the caller's [`HuffLookup`] tables so steady-state chunk serving
/// builds no fresh decoder allocations per block. Returns the bytes
/// consumed from `buf`.
pub fn decode_block_into(buf: &[u8], out: &mut Vec<u32>, lut: &mut HuffLookup) -> Result<usize> {
    out.clear();
    let mut r = ByteReader::new(buf);
    let Some(table) = parse_table(&mut r)? else {
        return Ok(r.position());
    };
    lut.prepare(&table)?;
    let n_values = r.varint("huffman value count")? as usize;
    let n_bits = r.varint("huffman bit length")?;
    let n_bytes = n_bits.div_ceil(8) as usize;
    let payload = r.take(n_bytes, "huffman payload")?;
    let consumed = r.position();

    let mut bits = BatchBits::new(payload);
    out.reserve(n_values);
    for _ in 0..n_values {
        out.push(lut.decode_one(&mut bits)?);
    }
    Ok(consumed)
}

/// The original bit-at-a-time canonical decode, kept verbatim as the
/// oracle the fast path is proptested against (and as the baseline leg
/// of the decode-bandwidth benchmark).
pub fn decode_block_reference(buf: &[u8]) -> Result<(Vec<u32>, usize)> {
    let mut r = ByteReader::new(buf);
    let Some(table) = parse_table(&mut r)? else {
        return Ok((Vec::new(), r.position()));
    };
    let decoder = Decoder::new(&table)?;
    let n_values = r.varint("huffman value count")? as usize;
    let n_bits = r.varint("huffman bit length")?;
    let n_bytes = n_bits.div_ceil(8) as usize;
    let payload = r.take(n_bytes, "huffman payload")?;
    let consumed = r.position();

    let mut bits = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        out.push(decoder.decode_one(&mut bits)?);
    }
    Ok((out, consumed))
}

/// Builds optimal (length-limited) code lengths from a frequency census.
fn code_lengths(freq: &HashMap<u32, u64>) -> Vec<(u32, u8)> {
    // Single-symbol alphabets get a 1-bit code.
    if freq.len() == 1 {
        if let Some((&s, _)) = freq.iter().next() {
            return vec![(s, 1)];
        }
    }
    let mut scale = 0u32;
    loop {
        let lens = try_code_lengths(freq, scale);
        if lens.iter().all(|&(_, l)| l <= MAX_CODE_LEN) {
            return lens;
        }
        scale += 1; // halve frequencies and retry
    }
}

fn try_code_lengths(freq: &HashMap<u32, u64>, scale: u32) -> Vec<(u32, u8)> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u32),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap.
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<Node> = freq
        .iter()
        .map(|(&s, &f)| Node {
            weight: (f >> scale).max(1),
            id: s,
            kind: NodeKind::Leaf(s),
        })
        .collect();
    let mut next_id = u32::MAX;
    while let Some(a) = heap.pop() {
        let Some(b) = heap.pop() else {
            heap.push(a); // single node left: it is the root
            break;
        };
        next_id -= 1;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
    }
    // Empty census (empty input) builds no tree and gets no codes.
    let Some(root) = heap.pop() else { return Vec::new() };
    let mut out = Vec::with_capacity(freq.len());
    // Iterative DFS to avoid recursion depth limits on skewed trees.
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(s) => out.push((s, depth.max(1))),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth.saturating_add(1)));
                stack.push((*b, depth.saturating_add(1)));
            }
        }
    }
    out
}

/// Assigns canonical codes (shorter codes first, ties by symbol value).
fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, (u64, u8)> {
    let mut sorted: Vec<(u32, u8)> = lengths.to_vec();
    sorted.sort_unstable_by_key(|&(s, l)| (l, s));
    let mut map = HashMap::with_capacity(sorted.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(sym, len) in &sorted {
        code <<= len - prev_len;
        map.insert(sym, (code, len));
        code += 1;
        prev_len = len;
    }
    map
}

/// Canonical decoder: per-length first-code/first-index tables.
struct Decoder {
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    /// For each length 1..=MAX: (first code, first index, count).
    per_len: Vec<(u64, usize, usize)>,
}

impl Decoder {
    fn new(table: &[(u32, u8)]) -> Result<Self> {
        let mut sorted: Vec<(u32, u8)> = table.to_vec();
        sorted.sort_unstable_by_key(|&(s, l)| (l, s));
        let symbols: Vec<u32> = sorted.iter().map(|&(s, _)| s).collect();
        let mut per_len = vec![(0u64, 0usize, 0usize); MAX_CODE_LEN as usize + 1];
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (i, &(_, len)) in sorted.iter().enumerate() {
            if len != prev_len {
                code <<= len - prev_len;
                per_len[len as usize] = (code, i, 0);
                prev_len = len;
            }
            per_len[len as usize].2 += 1;
            code += 1;
            // Kraft violation ⇒ corrupt table.
            if len < 64 && code > (1u64 << len) {
                return Err(CodecError::Corrupt { context: "huffman kraft inequality" });
            }
        }
        Ok(Self { symbols, per_len })
    }

    fn decode_one(&self, bits: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u64;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | u64::from(bits.get_bit("huffman payload")?);
            let (first_code, first_idx, count) = self.per_len[len];
            if count > 0 && code >= first_code && code < first_code + count as u64 {
                return Ok(self.symbols[first_idx + (code - first_code) as usize]);
            }
        }
        Err(CodecError::Corrupt { context: "huffman code" })
    }
}

/// Width of the primary lookup window: every code no longer than this
/// decodes with a single table index instead of a per-length scan.
/// Quantization-code tables cluster around the zero bin, so in practice
/// nearly all symbols resolve through the primary table.
const PRIMARY_BITS: u32 = 12;

/// Reusable state of the table-driven canonical decoder: the per-length
/// range tables of the tree decoder plus a `PRIMARY_BITS`-wide
/// direct-lookup window. Held in
/// [`DecodeScratch`](crate::scratch::DecodeScratch) so repeated block
/// decodes on one thread reuse the allocations.
#[derive(Default)]
pub struct HuffLookup {
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    /// For each length 1..=MAX: (first code, first index, count).
    per_len: Vec<(u64, usize, usize)>,
    /// Decoded symbol per primary window (valid where `len != 0`).
    sym: Vec<u32>,
    /// Matched code length per primary window; 0 = longer than the
    /// window, resolved by the per-length scan.
    len: Vec<u8>,
    /// Actual window width: `min(PRIMARY_BITS, longest code)`.
    bits: u32,
    /// Sort scratch.
    sorted: Vec<(u32, u8)>,
}

impl HuffLookup {
    /// Rebuilds the tables for one block's code table. Performs the same
    /// canonical assignment and Kraft validation as [`Decoder::new`].
    fn prepare(&mut self, table: &[(u32, u8)]) -> Result<()> {
        self.sorted.clear();
        self.sorted.extend_from_slice(table);
        self.sorted.sort_unstable_by_key(|&(s, l)| (l, s));
        self.symbols.clear();
        self.symbols.extend(self.sorted.iter().map(|&(s, _)| s));
        self.per_len.clear();
        self.per_len.resize(MAX_CODE_LEN as usize + 1, (0u64, 0usize, 0usize));
        let mut code = 0u64;
        let mut prev_len = 0u8;
        let mut max_len = 0u8;
        for (i, &(_, len)) in self.sorted.iter().enumerate() {
            if len != prev_len {
                code <<= len - prev_len;
                self.per_len[len as usize] = (code, i, 0);
                prev_len = len;
            }
            self.per_len[len as usize].2 += 1;
            code += 1;
            max_len = len; // sorted ascending, so the last length is the max
            // Kraft violation ⇒ corrupt table.
            if len < 64 && code > (1u64 << len) {
                return Err(CodecError::Corrupt { context: "huffman kraft inequality" });
            }
        }

        // Primary window: fill shorter codes first and never overwrite,
        // matching the sequential smallest-length-first walk even for
        // adversarial tables.
        self.bits = u32::from(max_len).min(PRIMARY_BITS);
        let size = 1usize << self.bits;
        self.len.clear();
        self.len.resize(size, 0);
        self.sym.clear();
        self.sym.resize(size, 0);
        for len in 1..=self.bits {
            let (first, fidx, count) = self.per_len[len as usize];
            for k in 0..count {
                let code = first + k as u64;
                let lo = (code << (self.bits - len)) as usize;
                let hi = ((code + 1) << (self.bits - len)) as usize;
                let symv = self.symbols[fidx + k];
                for e in lo..hi.min(size) {
                    if self.len[e] == 0 {
                        self.len[e] = len as u8;
                        self.sym[e] = symv;
                    }
                }
            }
        }
        Ok(())
    }

    /// Decodes one symbol, bit-equivalent to [`Decoder::decode_one`]
    /// including its error behaviour (`TruncatedStream` when the payload
    /// runs dry mid-code, `Corrupt` after 32 unmatched bits).
    #[inline]
    fn decode_one(&self, bits: &mut BatchBits<'_>) -> Result<u32> {
        bits.refill();
        let w = bits.bitbuf;
        let idx = (w >> (64 - self.bits)) as usize;
        let len = u32::from(self.len[idx]);
        if len != 0 {
            if len > bits.bitcount {
                return Err(CodecError::TruncatedStream { context: "huffman payload" });
            }
            bits.consume(len);
            return Ok(self.sym[idx]);
        }
        // Long-code fallback: continue the per-length scan past the
        // primary window.
        for l in (self.bits + 1)..=u32::from(MAX_CODE_LEN) {
            let code = w >> (64 - l);
            let (first, fidx, count) = self.per_len[l as usize];
            if count > 0 && code >= first && code < first + count as u64 {
                if l > bits.bitcount {
                    return Err(CodecError::TruncatedStream { context: "huffman payload" });
                }
                bits.consume(l);
                return Ok(self.symbols[fidx + (code - first) as usize]);
            }
        }
        if bits.bitcount < u32::from(MAX_CODE_LEN) {
            Err(CodecError::TruncatedStream { context: "huffman payload" })
        } else {
            Err(CodecError::Corrupt { context: "huffman code" })
        }
    }
}

/// MSB-aligned 64-bit bit buffer over the payload slice: one refill
/// serves several short codes, replacing per-bit bounds checks with one
/// word load per ~4 symbols. Bits beyond the slice peek as zeros and
/// are never consumed (`bitcount` tracks real bits only).
struct BatchBits<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    /// Upcoming bits, MSB first; bits below `64 - bitcount` are zero.
    bitbuf: u64,
    /// Valid (real) bits currently in `bitbuf`.
    bitcount: u32,
}

impl<'a> BatchBits<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, byte_pos: 0, bitbuf: 0, bitcount: 0 }
    }

    /// Tops the buffer up to ≥ 56 valid bits (or to end of payload).
    #[inline]
    fn refill(&mut self) {
        if self.bitcount < 56 && self.byte_pos + 8 <= self.bytes.len() {
            if let Ok(arr) = <[u8; 8]>::try_from(&self.bytes[self.byte_pos..self.byte_pos + 8]) {
                let loaded = (64 - self.bitcount) / 8; // whole bytes that fit
                let keep = 64 - self.bitcount - 8 * loaded; // low bits to discard
                self.bitbuf |= (u64::from_be_bytes(arr) >> self.bitcount) & (u64::MAX << keep);
                self.byte_pos += loaded as usize;
                self.bitcount += 8 * loaded;
                return;
            }
        }
        while self.bitcount <= 56 && self.byte_pos < self.bytes.len() {
            self.bitbuf |= u64::from(self.bytes[self.byte_pos]) << (56 - self.bitcount);
            self.byte_pos += 1;
            self.bitcount += 8;
        }
    }

    /// Drops the top `n` valid bits (`n ≤ bitcount`).
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.bitcount);
        self.bitbuf <<= n;
        self.bitcount -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let enc = encode_block(symbols);
        let (dec, used) = decode_block(&enc).unwrap();
        assert_eq!(dec, symbols);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_roundtrip() {
        roundtrip(&[42]);
        roundtrip(&vec![7u32; 1000]);
    }

    #[test]
    fn two_symbol_roundtrip() {
        let s: Vec<u32> = (0..500).map(|i| if i % 3 == 0 { 10 } else { 20 }).collect();
        roundtrip(&s);
    }

    #[test]
    fn skewed_distribution_roundtrip_and_compresses() {
        // Geometric-ish distribution like quantization codes around the
        // zero bin.
        let mut s = Vec::new();
        for i in 0..20_000u32 {
            let v = match i % 100 {
                0..=69 => 512,      // dominant bin
                70..=89 => 511,
                90..=97 => 513,
                _ => 500 + (i % 7), // rare tail
            };
            s.push(v);
        }
        let enc = encode_block(&s);
        // Entropy ≈ 1.2 bits/symbol; raw is 32 bits.
        assert!(enc.len() < s.len() / 2, "encoded {} bytes", enc.len());
        roundtrip(&s);
    }

    #[test]
    fn wide_alphabet_roundtrip() {
        let s: Vec<u32> = (0..4096u64)
            .map(|i| ((i.wrapping_mul(2654435761) >> 20) & 0xfff) as u32)
            .collect();
        roundtrip(&s);
    }

    #[test]
    fn large_symbol_values() {
        roundtrip(&[u32::MAX, 0, u32::MAX - 1, 5, u32::MAX]);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = HashMap::new();
        for (i, f) in [50u64, 30, 10, 5, 3, 1, 1].iter().enumerate() {
            freq.insert(i as u32, *f);
        }
        let lens = code_lengths(&freq);
        let codes = canonical_codes(&lens);
        let entries: Vec<(u64, u8)> = codes.values().copied().collect();
        for (i, &(c1, l1)) in entries.iter().enumerate() {
            for &(c2, l2) in entries.iter().skip(i + 1) {
                let (short, slen, long, llen) = if l1 <= l2 {
                    (c1, l1, c2, l2)
                } else {
                    (c2, l2, c1, l1)
                };
                assert!(
                    long >> (llen - slen) != short,
                    "code {short:b}/{slen} is a prefix of {long:b}/{llen}"
                );
            }
        }
    }

    #[test]
    fn truncated_stream_is_detected() {
        let enc = encode_block(&[1, 2, 3, 1, 2, 1, 1]);
        for cut in 0..enc.len() {
            let r = decode_block(&enc[..cut]);
            assert!(r.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn kraft_violation_rejected() {
        // Hand-build a table claiming two symbols with 1-bit codes plus
        // one more: 3 × len-1 violates Kraft.
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        for (d, l) in [(0u64, 1u8), (1, 1), (1, 1)] {
            put_varint(&mut buf, d);
            buf.push(l);
        }
        put_varint(&mut buf, 1); // one value
        put_varint(&mut buf, 1); // one bit
        buf.push(0);
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn deterministic_encoding() {
        let s: Vec<u32> = (0..1000u32).map(|i| i % 17).collect();
        assert_eq!(encode_block(&s), encode_block(&s));
    }

    /// The fast path and the reference walk must agree on every byte of
    /// every block — including every truncation point, where the error
    /// *variant* must match too.
    #[test]
    fn fast_path_matches_reference_at_every_cut() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![42],
            vec![7; 400],
            (0..600u32).map(|i| i % 3).collect(),
            (0..4096u64)
                .map(|i| ((i.wrapping_mul(2654435761) >> 18) & 0x3fff) as u32)
                .collect(),
            vec![u32::MAX, 0, u32::MAX - 1, 5, u32::MAX],
        ];
        for s in &cases {
            let enc = encode_block(s);
            for cut in 0..=enc.len() {
                let fast = decode_block(&enc[..cut]);
                let reference = decode_block_reference(&enc[..cut]);
                assert_eq!(fast, reference, "cut {cut} of {} bytes", enc.len());
            }
            let (dec, used) = decode_block(&enc).unwrap();
            assert_eq!((dec.as_slice(), used), (s.as_slice(), enc.len()));
        }
    }

    /// Deep tables exercise the long-code fallback past the primary
    /// window: a Fibonacci-weighted census forces one length per symbol.
    #[test]
    fn long_codes_take_the_fallback_scan() {
        let mut s = Vec::new();
        let mut f = (1u64, 1u64);
        for sym in 0..24u32 {
            for _ in 0..f.0.min(100_000) {
                s.push(sym);
            }
            f = (f.1, f.0 + f.1);
        }
        let enc = encode_block(&s);
        let (fast, _) = decode_block(&enc).unwrap();
        let (reference, _) = decode_block_reference(&enc).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast, s);
    }

    #[test]
    fn decode_block_into_reuses_buffers() {
        let a = encode_block(&[1, 2, 3, 2, 1]);
        let b = encode_block(&(0..200u32).map(|i| i % 9).collect::<Vec<_>>());
        let mut out = Vec::new();
        let mut lut = HuffLookup::default();
        let used = decode_block_into(&a, &mut out, &mut lut).unwrap();
        assert_eq!((out.as_slice(), used), (&[1, 2, 3, 2, 1][..], a.len()));
        let used = decode_block_into(&b, &mut out, &mut lut).unwrap();
        assert_eq!(out, (0..200u32).map(|i| i % 9).collect::<Vec<_>>());
        assert_eq!(used, b.len());
        // Empty block clears the buffer rather than appending.
        let e = encode_block(&[]);
        decode_block_into(&e, &mut out, &mut lut).unwrap();
        assert!(out.is_empty());
    }
}
